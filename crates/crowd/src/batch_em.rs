//! Classical batch Expectation-Maximisation (Dempster et al. 1977).
//!
//! The reference estimator the online variant approximates: given the whole
//! crowdsourced data set `{(prior_t, answers_t)}`, it alternates posterior
//! computation under the current parameters (E-step) with the closed-form
//! maximiser of the expected complete-data log-likelihood (M-step)
//!
//! ```text
//! p_i = ( Σ_{t : i answered} (1 − α_t(y_{i,t})) ) / |{t : i answered}|
//! ```
//!
//! The paper explains why this cannot run on the live stream — it "operates
//! in batch mode, which is problematic for stream processing" — but it is
//! the yardstick: tests check that online estimates approach the batch ones.

use crate::error::CrowdError;
use crate::model::LabelSet;
use crate::online_em::OnlineEm;
use crate::schedule::GammaSchedule;

/// One recorded disagreement event for batch processing.
#[derive(Debug, Clone)]
pub struct RecordedEvent {
    /// Prior over the labels.
    pub prior: Vec<f64>,
    /// `(participant, label)` answers.
    pub answers: Vec<(usize, usize)>,
}

/// Result of a batch EM run.
#[derive(Debug, Clone)]
pub struct BatchEmResult {
    /// Final error-probability estimates.
    pub p_hat: Vec<f64>,
    /// Final per-event posteriors.
    pub posteriors: Vec<Vec<f64>>,
    /// Iterations executed until convergence (or the cap).
    pub iterations: usize,
    /// Whether the parameter change fell below the tolerance.
    pub converged: bool,
}

/// Batch EM estimator configuration.
#[derive(Debug, Clone)]
pub struct BatchEm {
    /// The label set.
    pub labels: LabelSet,
    /// Initial error probability for every participant.
    pub initial_p: f64,
    /// Maximum EM iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on `max_i |Δp_i|`.
    pub tolerance: f64,
}

impl BatchEm {
    /// The standard configuration used in tests and the Figure 5 harness.
    pub fn paper_default() -> BatchEm {
        BatchEm {
            labels: LabelSet::traffic_default(),
            initial_p: 0.25,
            max_iterations: 200,
            tolerance: 1e-8,
        }
    }

    /// Runs EM over the recorded events for `n_participants`.
    pub fn run(
        &self,
        events: &[RecordedEvent],
        n_participants: usize,
    ) -> Result<BatchEmResult, CrowdError> {
        // Reuse the online estimator's E-step with frozen parameters.
        let mut scratch = OnlineEm::new(
            n_participants,
            self.labels.clone(),
            self.initial_p,
            GammaSchedule::Constant(0.0),
        )?;

        let mut p_hat = scratch.estimates().to_vec();
        let mut posteriors: Vec<Vec<f64>> = Vec::new();
        let mut iterations = 0;
        let mut converged = false;

        while iterations < self.max_iterations {
            iterations += 1;
            // E-step: posteriors under current parameters.
            posteriors.clear();
            for ev in events {
                posteriors.push(scratch.posterior(&ev.prior, &ev.answers)?);
            }
            // M-step: average wrongness per participant.
            let mut wrong_sum = vec![0.0f64; n_participants];
            let mut counts = vec![0usize; n_participants];
            for (ev, post) in events.iter().zip(&posteriors) {
                for &(i, y) in &ev.answers {
                    wrong_sum[i] += 1.0 - post[y];
                    counts[i] += 1;
                }
            }
            let mut max_delta = 0.0f64;
            for i in 0..n_participants {
                if counts[i] == 0 {
                    continue; // never queried: estimate stays at the prior
                }
                let new_p = (wrong_sum[i] / counts[i] as f64).clamp(1e-6, 1.0 - 1e-6);
                max_delta = max_delta.max((new_p - p_hat[i]).abs());
                p_hat[i] = new_p;
            }
            // Freeze the new parameters into the scratch estimator.
            scratch = OnlineEm::with_estimates(self.labels.clone(), &p_hat);

            if max_delta < self.tolerance {
                converged = true;
                break;
            }
        }

        // Final posteriors under the converged parameters.
        posteriors.clear();
        for ev in events {
            posteriors.push(scratch.posterior(&ev.prior, &ev.answers)?);
        }

        Ok(BatchEmResult { p_hat, posteriors, iterations, converged })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SimulatedParticipant;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn synthesise(n_events: usize, seed: u64) -> (Vec<RecordedEvent>, Vec<SimulatedParticipant>) {
        let cohort = SimulatedParticipant::paper_cohort();
        let labels = LabelSet::traffic_default();
        let mut rng = StdRng::seed_from_u64(seed);
        let events = (0..n_events)
            .map(|t| {
                let truth = t % 4;
                let answers = cohort
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i, p.answer(truth, &labels, &mut rng).unwrap()))
                    .collect();
                RecordedEvent { prior: labels.uniform_prior(), answers }
            })
            .collect();
        (events, cohort)
    }

    #[test]
    fn batch_em_recovers_parameters() {
        let (events, cohort) = synthesise(800, 11);
        let result = BatchEm::paper_default().run(&events, cohort.len()).unwrap();
        assert!(result.converged, "EM should converge in {} iterations", result.iterations);
        for (i, p) in cohort.iter().enumerate() {
            let err = (result.p_hat[i] - p.p_err).abs();
            assert!(err < 0.06, "participant {i}: {} vs {}", result.p_hat[i], p.p_err);
        }
    }

    #[test]
    fn online_approaches_batch() {
        let (events, cohort) = synthesise(1000, 23);
        let batch = BatchEm::paper_default().run(&events, cohort.len()).unwrap();
        let mut online = OnlineEm::paper_default(cohort.len());
        for ev in &events {
            online.process(&ev.prior, &ev.answers).unwrap();
        }
        for i in 0..cohort.len() {
            let gap = (batch.p_hat[i] - online.estimates()[i]).abs();
            assert!(
                gap < 0.08,
                "participant {i}: batch {} online {}",
                batch.p_hat[i],
                online.estimates()[i]
            );
        }
    }

    #[test]
    fn unqueried_participants_keep_prior() {
        let labels = LabelSet::traffic_default();
        let events = vec![RecordedEvent { prior: labels.uniform_prior(), answers: vec![(0, 0)] }];
        let result = BatchEm::paper_default().run(&events, 3).unwrap();
        assert_eq!(result.p_hat[1], 0.25);
        assert_eq!(result.p_hat[2], 0.25);
    }

    #[test]
    fn empty_event_set_is_fine() {
        let result = BatchEm::paper_default().run(&[], 3).unwrap();
        assert_eq!(result.p_hat, vec![0.25; 3]);
        assert!(result.converged);
    }
}
