//! Error type for the crowdsourcing component.

use std::fmt;

/// Errors produced by the crowdsourcing component.
#[derive(Debug, Clone, PartialEq)]
pub enum CrowdError {
    /// A label index out of range of the label set.
    LabelOutOfRange {
        /// The offending label index.
        label: usize,
        /// Number of labels.
        n_labels: usize,
    },
    /// A participant/worker id that is not registered.
    UnknownWorker {
        /// The id.
        id: u64,
    },
    /// A prior distribution is invalid (wrong length, negative mass, zero sum).
    InvalidPrior {
        /// Description.
        detail: String,
    },
    /// A probability parameter outside `[0, 1]`.
    InvalidProbability {
        /// Parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The label set is too small (need at least two answers).
    DegenerateLabelSet,
    /// No worker satisfied the selection policy.
    NoEligibleWorkers {
        /// Description of the constraint that failed.
        detail: String,
    },
    /// A serialised estimator state could not be decoded, or does not fit
    /// the estimator it is being restored into.
    CorruptState {
        /// Description of the problem.
        detail: String,
    },
}

impl fmt::Display for CrowdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrowdError::LabelOutOfRange { label, n_labels } => {
                write!(f, "label {label} out of range ({n_labels} labels)")
            }
            CrowdError::UnknownWorker { id } => write!(f, "unknown worker {id}"),
            CrowdError::InvalidPrior { detail } => write!(f, "invalid prior: {detail}"),
            CrowdError::InvalidProbability { name, value } => {
                write!(f, "invalid probability {name} = {value}")
            }
            CrowdError::DegenerateLabelSet => write!(f, "label set needs at least two answers"),
            CrowdError::NoEligibleWorkers { detail } => {
                write!(f, "no eligible workers: {detail}")
            }
            CrowdError::CorruptState { detail } => {
                write!(f, "corrupt estimator state snapshot: {detail}")
            }
        }
    }
}

impl std::error::Error for CrowdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CrowdError::LabelOutOfRange { label: 7, n_labels: 4 }.to_string().contains('7'));
        assert!(CrowdError::UnknownWorker { id: 3 }.to_string().contains('3'));
    }
}
