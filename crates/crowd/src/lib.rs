//! # insight-crowd — crowdsourcing for sensor-disagreement resolution
//!
//! Implements Section 5 of the EDBT 2014 paper: when the complex event
//! processing component detects a `sourceDisagreement` between buses and
//! SCATS sensors, human *participants* near the location are queried about
//! the true state of traffic, and their (imperfect) answers are aggregated.
//!
//! Two halves:
//!
//! * **Estimation** ([`model`], [`online_em`], [`batch_em`]) — the
//!   crowdsourced model of §5.1: each source-disagreement event is an
//!   unobserved categorical variable; each participant `i` has an unknown
//!   error probability `p_i`; answers follow equations (6)–(7). The *online*
//!   Expectation-Maximisation algorithm (Algorithm 1, after Cappé & Moulines)
//!   processes one event at a time with a per-participant stochastic
//!   approximation step, which is what makes the component viable on an
//!   unbounded stream. A classical batch EM is included as the reference the
//!   online variant is validated against.
//! * **Query execution** ([`engine`], [`latency`], [`policy`], [`mapreduce`])
//!   — the §5.3 engine: a registry of mobile workers, GCM-style push
//!   notifications, MapReduce-style map/reduce task execution and the
//!   2G/3G/WiFi latency behaviour measured in Figure 6.

#![warn(missing_docs)]
// `!(x > 0.0)` guards are deliberate: they reject NaN along with the
// out-of-range values, which `x <= 0.0` would not.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod batch_em;
pub mod engine;
pub mod error;
pub mod latency;
pub mod mapreduce;
pub mod model;
pub mod online_em;
pub mod policy;
pub mod reward;
pub mod schedule;
pub mod stats;

pub use engine::{QueryExecutionEngine, Worker, WorkerId};
pub use error::CrowdError;
pub use latency::{ConnectionType, LatencyModel, StepLatency};
pub use model::{CrowdQuery, DisagreementEvent, LabelSet, SimulatedParticipant};
pub use online_em::{OnlineEm, PosteriorOutcome};
pub use policy::SelectionPolicy;
pub use schedule::GammaSchedule;
