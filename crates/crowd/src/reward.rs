//! Participant rewards.
//!
//! "Correctly estimating the quality of participants … is also important
//! for rewarding a participant. Indeed, a participant's quality may be a
//! factor in the computation of the reward he receives for his
//! contribution" (§7.2). This module implements the reward policies a
//! deployment would plug into the payout pipeline: per-answer rewards
//! scaled by estimated reliability, with an accuracy bonus once the
//! estimate is trustworthy.

use crate::error::CrowdError;

/// A reward policy mapping participation to payout units.
#[derive(Debug, Clone, PartialEq)]
pub enum RewardPolicy {
    /// A flat amount per answer, reliability-blind.
    FlatPerAnswer {
        /// Payout per answer.
        amount: f64,
    },
    /// `base + bonus · reliability` per answer, where reliability is
    /// `1 − p̂` (the estimated probability of answering correctly). The
    /// bonus only applies after `min_queries` answers, when the estimate
    /// has had a chance to converge (≈100 queries in Figure 5).
    ReliabilityScaled {
        /// Base payout per answer.
        base: f64,
        /// Maximum bonus per answer (at perfect reliability).
        bonus: f64,
        /// Answers required before the bonus applies.
        min_queries: usize,
    },
}

impl RewardPolicy {
    /// The paper-flavoured default: small base, reliability bonus after the
    /// estimate converges.
    pub fn default_scaled() -> RewardPolicy {
        RewardPolicy::ReliabilityScaled { base: 1.0, bonus: 2.0, min_queries: 100 }
    }

    /// The reward of one answer by a participant with estimated error
    /// probability `p_hat` who has been queried `queries` times.
    pub fn reward(&self, p_hat: f64, queries: usize) -> Result<f64, CrowdError> {
        if !(0.0..=1.0).contains(&p_hat) || !p_hat.is_finite() {
            return Err(CrowdError::InvalidProbability { name: "p_hat", value: p_hat });
        }
        Ok(match self {
            RewardPolicy::FlatPerAnswer { amount } => *amount,
            RewardPolicy::ReliabilityScaled { base, bonus, min_queries } => {
                if queries >= *min_queries {
                    base + bonus * (1.0 - p_hat)
                } else {
                    *base
                }
            }
        })
    }

    /// Total payouts for a cohort given the online-EM estimates and query
    /// counts (element-wise).
    pub fn settle(&self, estimates: &[f64], queries: &[usize]) -> Result<Vec<f64>, CrowdError> {
        estimates
            .iter()
            .zip(queries)
            .map(|(&p, &q)| self.reward(p, q).map(|r| r * q as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_policy_ignores_reliability() {
        let p = RewardPolicy::FlatPerAnswer { amount: 2.5 };
        assert_eq!(p.reward(0.05, 500).unwrap(), 2.5);
        assert_eq!(p.reward(0.9, 500).unwrap(), 2.5);
    }

    #[test]
    fn scaled_policy_pays_reliable_participants_more() {
        let p = RewardPolicy::default_scaled();
        let reliable = p.reward(0.05, 500).unwrap();
        let unreliable = p.reward(0.9, 500).unwrap();
        assert!(reliable > unreliable);
        assert!((reliable - (1.0 + 2.0 * 0.95)).abs() < 1e-12);
    }

    #[test]
    fn bonus_waits_for_convergence() {
        let p = RewardPolicy::default_scaled();
        assert_eq!(p.reward(0.05, 50).unwrap(), 1.0, "no bonus before min_queries");
        assert!(p.reward(0.05, 100).unwrap() > 1.0);
    }

    #[test]
    fn settle_multiplies_by_participation() {
        let p = RewardPolicy::FlatPerAnswer { amount: 1.0 };
        let totals = p.settle(&[0.1, 0.5], &[10, 3]).unwrap();
        assert_eq!(totals, vec![10.0, 3.0]);
    }

    #[test]
    fn rejects_invalid_estimates() {
        let p = RewardPolicy::default_scaled();
        assert!(p.reward(1.5, 10).is_err());
        assert!(p.reward(f64::NAN, 10).is_err());
    }
}
