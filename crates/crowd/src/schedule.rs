//! Stochastic-approximation step-size schedules `γ_t`.
//!
//! The online EM update (equation 12) mixes the old sufficient statistics
//! with the newest event using a step size `γ_t` that must satisfy
//! `Σ γ_t = ∞` and `Σ γ_t² < ∞` for convergence (Cappé & Moulines 2009).
//!
//! The paper states "we used γ_t = t/(t+1)" — a sequence that *increases*
//! towards 1 and violates the square-summability condition; the smooth
//! convergence shown in Figure 5 is consistent with the *running-mean*
//! schedule `γ_t = 1/(t+1)` instead, which we therefore use as the default
//! (the literal schedule is kept as [`GammaSchedule::PaperLiteral`] and
//! compared in the `ablation_gamma` bench; see EXPERIMENTS.md).

/// A step-size schedule; `t` counts how often the participant has been
/// queried so far, starting at 1.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum GammaSchedule {
    /// `γ_t = 1/(t+1)` — running mean; the default.
    #[default]
    RunningMean,
    /// `γ_t = t/(t+1)` — the schedule as literally printed in the paper.
    PaperLiteral,
    /// `γ_t = t^(−a)` with `0.5 < a ≤ 1` — the standard polynomial family.
    Polynomial(f64),
    /// Constant step size (tracks drifting participants; does not converge).
    Constant(f64),
}

impl GammaSchedule {
    /// The step size for the `t`-th update (`t ≥ 1`).
    pub fn gamma(&self, t: usize) -> f64 {
        let t = t.max(1) as f64;
        match self {
            GammaSchedule::RunningMean => 1.0 / (t + 1.0),
            GammaSchedule::PaperLiteral => t / (t + 1.0),
            GammaSchedule::Polynomial(a) => t.powf(-a),
            GammaSchedule::Constant(c) => *c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean_decreases_to_zero() {
        let s = GammaSchedule::RunningMean;
        assert!((s.gamma(1) - 0.5).abs() < 1e-12);
        assert!(s.gamma(10) < s.gamma(2));
        assert!(s.gamma(1_000_000) < 1e-5);
    }

    #[test]
    fn paper_literal_increases_to_one() {
        let s = GammaSchedule::PaperLiteral;
        assert!((s.gamma(1) - 0.5).abs() < 1e-12);
        assert!(s.gamma(100) > 0.99);
    }

    #[test]
    fn polynomial_and_constant() {
        let s = GammaSchedule::Polynomial(0.7);
        assert!((s.gamma(1) - 1.0).abs() < 1e-12);
        assert!(s.gamma(100) < s.gamma(10));
        assert_eq!(GammaSchedule::Constant(0.1).gamma(5), 0.1);
    }

    #[test]
    fn t_zero_is_clamped() {
        assert_eq!(GammaSchedule::RunningMean.gamma(0), GammaSchedule::RunningMean.gamma(1));
    }
}
