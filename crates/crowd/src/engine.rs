//! The crowdsourcing query execution engine (§5.3).
//!
//! Participants register with the engine from their mobile devices (the
//! paper's app connects to Google Cloud Messaging for push notifications and
//! identifies itself as a *map worker*); the engine selects workers per the
//! active policy, pushes the query, collects the answers of the map phase,
//! and reduces them. The simulation models each step's latency with the
//! means measured in Figure 6.

use crate::error::CrowdError;
use crate::latency::{ConnectionType, LatencyModel, StepLatency};
use crate::mapreduce::count_votes;
use crate::model::CrowdQuery;
use crate::policy::SelectionPolicy;
use rand::Rng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Identifier of a registered worker/participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerId(pub u64);

/// A registered mobile worker.
#[derive(Debug, Clone, PartialEq)]
pub struct Worker {
    /// The worker's id.
    pub id: WorkerId,
    /// Current longitude.
    pub lon: f64,
    /// Current latitude.
    pub lat: f64,
    /// Current connection type (may change, e.g. WiFi → 3G; GCM keeps the
    /// worker reachable either way).
    pub connection: ConnectionType,
    /// Expected local computation time, estimated from past tasks (ms).
    pub avg_comp_ms: f64,
}

/// Execution record of one worker's map task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskExecution {
    /// The worker.
    pub worker: WorkerId,
    /// Step latencies for this worker.
    pub latency: StepLatency,
    /// The answer (label index), or `None` when the worker missed the
    /// deadline / did not respond.
    pub answer: Option<usize>,
}

/// The full trace of one crowd query execution.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryExecution {
    /// Per-worker task traces.
    pub tasks: Vec<TaskExecution>,
    /// Vote counts per label, from the reduce phase.
    pub votes: Vec<(usize, usize)>,
    /// `(participant index into the selection, label)` pairs, ready for the
    /// online EM component.
    pub answers: Vec<(WorkerId, usize)>,
}

impl QueryExecution {
    /// Mean latency per step across the answering workers.
    pub fn mean_latency(&self) -> Option<StepLatency> {
        let answered: Vec<&TaskExecution> =
            self.tasks.iter().filter(|t| t.answer.is_some()).collect();
        if answered.is_empty() {
            return None;
        }
        let n = answered.len() as f64;
        Some(StepLatency {
            trigger_ms: answered.iter().map(|t| t.latency.trigger_ms).sum::<f64>() / n,
            push_ms: answered.iter().map(|t| t.latency.push_ms).sum::<f64>() / n,
            comm_ms: answered.iter().map(|t| t.latency.comm_ms).sum::<f64>() / n,
        })
    }
}

/// Cumulative execution counters, updated on every [`execute`] call.
///
/// Atomics only, so recording is lock-free; engine clones share the same
/// counters (the bridge layer snapshots them into the pipeline metrics).
///
/// [`execute`]: QueryExecutionEngine::execute
#[derive(Debug, Default)]
struct EngineCounters {
    queries: AtomicU64,
    tasks: AtomicU64,
    answers: AtomicU64,
    deadline_misses: AtomicU64,
    retries: AtomicU64,
    /// Summed simulated end-to-end latency of all tasks, microseconds.
    latency_us: AtomicU64,
}

/// Plain-data snapshot of the engine's cumulative execution counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineStats {
    /// Crowd queries executed.
    pub queries: u64,
    /// Map tasks dispatched (one per selected worker).
    pub tasks: u64,
    /// Tasks that produced an answer.
    pub answers: u64,
    /// Tasks dropped because the worker's latency exceeded the deadline.
    pub deadline_misses: u64,
    /// Deadline-missed tasks re-assigned to a faster worker under a retry
    /// budget (see [`QueryExecutionEngine::execute_with_retry`]).
    pub retries: u64,
    /// Mean simulated end-to-end task latency, milliseconds.
    pub mean_latency_ms: f64,
}

/// The engine: worker registry + latency model + policy application.
#[derive(Debug, Clone)]
pub struct QueryExecutionEngine {
    workers: HashMap<WorkerId, Worker>,
    latency: LatencyModel,
    counters: Arc<EngineCounters>,
}

impl Default for QueryExecutionEngine {
    fn default() -> QueryExecutionEngine {
        QueryExecutionEngine::new()
    }
}

impl QueryExecutionEngine {
    /// An engine with the default (paper-parameterised) latency model.
    pub fn new() -> QueryExecutionEngine {
        QueryExecutionEngine::with_latency(LatencyModel::default())
    }

    /// An engine with a custom latency model.
    pub fn with_latency(latency: LatencyModel) -> QueryExecutionEngine {
        QueryExecutionEngine {
            workers: HashMap::new(),
            latency,
            counters: Arc::new(EngineCounters::default()),
        }
    }

    /// Snapshot of the cumulative execution counters.
    pub fn stats(&self) -> EngineStats {
        let tasks = self.counters.tasks.load(Relaxed);
        let latency_us = self.counters.latency_us.load(Relaxed);
        EngineStats {
            queries: self.counters.queries.load(Relaxed),
            tasks,
            answers: self.counters.answers.load(Relaxed),
            deadline_misses: self.counters.deadline_misses.load(Relaxed),
            retries: self.counters.retries.load(Relaxed),
            mean_latency_ms: if tasks == 0 {
                0.0
            } else {
                latency_us as f64 / 1000.0 / tasks as f64
            },
        }
    }

    /// Registers (or re-registers) a worker — the mobile app's "connect to
    /// the Crowdsourcing Server and identify as a Map Worker" step.
    pub fn register(&mut self, worker: Worker) {
        self.workers.insert(worker.id, worker);
    }

    /// Unregisters a worker (app going offline).
    pub fn unregister(&mut self, id: WorkerId) -> Result<(), CrowdError> {
        self.workers.remove(&id).map(|_| ()).ok_or(CrowdError::UnknownWorker { id: id.0 })
    }

    /// Updates a worker's position/connection (e.g. WiFi → 3G handover).
    pub fn update_worker(
        &mut self,
        id: WorkerId,
        lon: f64,
        lat: f64,
        connection: ConnectionType,
    ) -> Result<(), CrowdError> {
        let w = self.workers.get_mut(&id).ok_or(CrowdError::UnknownWorker { id: id.0 })?;
        w.lon = lon;
        w.lat = lat;
        w.connection = connection;
        Ok(())
    }

    /// Records an observed task computation time for a worker, updating the
    /// expectation used by the deadline-feasibility policy — "the expected
    /// computation time of each individual participant … can be computed
    /// from the past executed tasks" (§5.3). Exponentially weighted moving
    /// average with factor 0.25.
    pub fn record_computation(&mut self, id: WorkerId, comp_ms: f64) -> Result<(), CrowdError> {
        if !(comp_ms >= 0.0) || !comp_ms.is_finite() {
            return Err(CrowdError::InvalidProbability { name: "comp_ms", value: comp_ms });
        }
        let w = self.workers.get_mut(&id).ok_or(CrowdError::UnknownWorker { id: id.0 })?;
        w.avg_comp_ms = 0.75 * w.avg_comp_ms + 0.25 * comp_ms;
        Ok(())
    }

    /// Registered (online) workers.
    pub fn online(&self) -> Vec<&Worker> {
        let mut v: Vec<&Worker> = self.workers.values().collect();
        v.sort_by_key(|w| w.id);
        v
    }

    /// Number of registered workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether no workers are registered.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The latency model in use.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Selects workers for a query per the policy.
    pub fn select(
        &self,
        policy: &SelectionPolicy,
        query: &CrowdQuery,
        reliability: Option<&HashMap<WorkerId, f64>>,
    ) -> Result<Vec<WorkerId>, CrowdError> {
        let selected =
            policy.select(&self.online(), query.lon, query.lat, reliability, &self.latency);
        if selected.is_empty() {
            return Err(CrowdError::NoEligibleWorkers {
                detail: format!("policy {policy:?} matched none of {} workers", self.workers.len()),
            });
        }
        Ok(selected)
    }

    /// Executes the map/reduce lifecycle of a query on the selected workers.
    ///
    /// `answer_of` simulates (or relays) each worker's map task: given the
    /// worker id it returns the chosen label, or `None` for no response.
    /// Workers whose end-to-end latency exceeds the query deadline (when
    /// set) are recorded as unanswered, matching the engine's "reply time
    /// interval has expired" behaviour.
    pub fn execute<R: Rng + ?Sized>(
        &self,
        query: &CrowdQuery,
        selected: &[WorkerId],
        answer_of: impl FnMut(WorkerId) -> Option<usize>,
        rng: &mut R,
    ) -> Result<QueryExecution, CrowdError> {
        self.execute_with_retry(query, selected, answer_of, rng, 0)
    }

    /// [`execute`](Self::execute) with a *retry budget*: a deadline-missed
    /// task is re-assigned once to the fastest not-yet-used worker (ranked
    /// by expected end-to-end latency + expected computation time) before a
    /// `deadline_miss` is counted, while the budget lasts. The miss is only
    /// recorded if the replacement also fails; each re-assignment is counted
    /// in [`EngineStats::retries`]. The missed task's trace stays in the
    /// execution (with `answer: None`) so latency accounting is unchanged.
    pub fn execute_with_retry<R: Rng + ?Sized>(
        &self,
        query: &CrowdQuery,
        selected: &[WorkerId],
        mut answer_of: impl FnMut(WorkerId) -> Option<usize>,
        rng: &mut R,
        retry_budget: u64,
    ) -> Result<QueryExecution, CrowdError> {
        self.counters.queries.fetch_add(1, Relaxed);
        let mut budget = retry_budget;
        let mut used: std::collections::HashSet<WorkerId> = selected.iter().copied().collect();
        let mut tasks = Vec::with_capacity(selected.len());
        let mut answers = Vec::new();
        for &id in selected {
            let (mut task, mut missed) = self.dispatch(query, id, &mut answer_of, rng)?;
            if missed && budget > 0 {
                if let Some(next) = self.next_fastest(&used) {
                    budget -= 1;
                    used.insert(next);
                    self.counters.retries.fetch_add(1, Relaxed);
                    tasks.push(task); // keep the missed task's trace
                    (task, missed) = self.dispatch(query, next, &mut answer_of, rng)?;
                }
            }
            if missed {
                self.counters.deadline_misses.fetch_add(1, Relaxed);
            }
            if let Some(label) = task.answer {
                answers.push((task.worker, label));
            }
            tasks.push(task);
        }
        let votes = count_votes(answers.iter().map(|&(_, l)| l));
        Ok(QueryExecution { tasks, votes, answers })
    }

    /// Pushes one map task to `id`; returns its trace and whether the
    /// worker would have answered but missed the deadline.
    fn dispatch<R: Rng + ?Sized>(
        &self,
        query: &CrowdQuery,
        id: WorkerId,
        answer_of: &mut impl FnMut(WorkerId) -> Option<usize>,
        rng: &mut R,
    ) -> Result<(TaskExecution, bool), CrowdError> {
        let worker = self.workers.get(&id).ok_or(CrowdError::UnknownWorker { id: id.0 })?;
        let latency = self.latency.sample(worker.connection, rng);
        self.counters.tasks.fetch_add(1, Relaxed);
        self.counters.latency_us.fetch_add((latency.total_ms() * 1000.0) as u64, Relaxed);
        let mut answer = answer_of(id);
        let mut missed = false;
        if let Some(deadline) = query.deadline_ms {
            if latency.total_ms() + worker.avg_comp_ms > deadline {
                missed = answer.is_some();
                answer = None;
            }
        }
        if let Some(label) = answer {
            if label >= query.answers.len() {
                return Err(CrowdError::LabelOutOfRange { label, n_labels: query.answers.len() });
            }
            self.counters.answers.fetch_add(1, Relaxed);
        }
        Ok((TaskExecution { worker: id, latency, answer }, missed))
    }

    /// The not-yet-used registered worker with the lowest expected
    /// end-to-end latency (network expectation + learned computation time);
    /// ties break on worker id for determinism.
    fn next_fastest(&self, used: &std::collections::HashSet<WorkerId>) -> Option<WorkerId> {
        self.workers
            .values()
            .filter(|w| !used.contains(&w.id))
            .map(|w| (self.latency.expected_total_ms(w.connection) + w.avg_comp_ms, w.id))
            .min_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.1.cmp(&b.1))
            })
            .map(|(_, id)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine_with_fleet() -> QueryExecutionEngine {
        let mut e = QueryExecutionEngine::new();
        for (i, c) in [ConnectionType::WiFi, ConnectionType::ThreeG, ConnectionType::TwoG]
            .into_iter()
            .enumerate()
        {
            e.register(Worker {
                id: WorkerId(i as u64),
                lon: -6.26 + i as f64 * 0.01,
                lat: 53.35,
                connection: c,
                avg_comp_ms: 100.0,
            });
        }
        e
    }

    fn query() -> CrowdQuery {
        CrowdQuery {
            question: "Congestion?".into(),
            answers: vec!["yes".into(), "no".into()],
            lon: -6.26,
            lat: 53.35,
            deadline_ms: None,
        }
    }

    #[test]
    fn registry_lifecycle() {
        let mut e = engine_with_fleet();
        assert_eq!(e.len(), 3);
        e.update_worker(WorkerId(0), -6.0, 53.0, ConnectionType::TwoG).unwrap();
        assert_eq!(e.online()[0].connection, ConnectionType::TwoG);
        e.unregister(WorkerId(0)).unwrap();
        assert_eq!(e.len(), 2);
        assert!(e.unregister(WorkerId(0)).is_err());
        assert!(e.update_worker(WorkerId(99), 0.0, 0.0, ConnectionType::WiFi).is_err());
    }

    #[test]
    fn select_applies_policy_and_errors_when_empty() {
        let e = engine_with_fleet();
        let ids = e.select(&SelectionPolicy::NearestK(2), &query(), None).unwrap();
        assert_eq!(ids.len(), 2);
        let empty = QueryExecutionEngine::new();
        assert!(empty.select(&SelectionPolicy::All, &query(), None).is_err());
    }

    #[test]
    fn execute_collects_answers_and_votes() {
        let e = engine_with_fleet();
        let mut rng = StdRng::seed_from_u64(3);
        let selected: Vec<WorkerId> = e.online().iter().map(|w| w.id).collect();
        let exec =
            e.execute(&query(), &selected, |id| Some((id.0 % 2) as usize), &mut rng).unwrap();
        assert_eq!(exec.tasks.len(), 3);
        assert_eq!(exec.answers.len(), 3);
        // ids 0,2 answer label 0; id 1 answers label 1.
        assert_eq!(exec.votes, vec![(0, 2), (1, 1)]);
        let mean = exec.mean_latency().unwrap();
        assert!(mean.total_ms() > 0.0);
    }

    #[test]
    fn deadline_drops_slow_workers() {
        let e = engine_with_fleet();
        let mut rng = StdRng::seed_from_u64(3);
        let selected: Vec<WorkerId> = e.online().iter().map(|w| w.id).collect();
        let mut q = query();
        // 2G ≈ 45+467+423+100comp ≈ 1035ms; WiFi/3G ≈ 500ms.
        q.deadline_ms = Some(800.0);
        let exec = e.execute(&q, &selected, |_| Some(0), &mut rng).unwrap();
        let unanswered: Vec<WorkerId> =
            exec.tasks.iter().filter(|t| t.answer.is_none()).map(|t| t.worker).collect();
        assert_eq!(unanswered, vec![WorkerId(2)], "the 2G worker misses the deadline");
        assert_eq!(exec.answers.len(), 2);
    }

    #[test]
    fn execute_validates_labels_and_workers() {
        let e = engine_with_fleet();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(e.execute(&query(), &[WorkerId(77)], |_| Some(0), &mut rng).is_err());
        let selected = vec![WorkerId(0)];
        assert!(e.execute(&query(), &selected, |_| Some(9), &mut rng).is_err());
    }

    #[test]
    fn computation_time_learning_converges_and_affects_deadlines() {
        let mut e = engine_with_fleet();
        // Worker 0 (WiFi) starts at 100 ms expectation; observed tasks take
        // 2000 ms — the EWMA should approach that.
        for _ in 0..30 {
            e.record_computation(WorkerId(0), 2000.0).unwrap();
        }
        let w0 = e.online().iter().find(|w| w.id == WorkerId(0)).unwrap().avg_comp_ms;
        assert!(w0 > 1900.0, "EWMA converged to observations: {w0}");
        // With a tight deadline the slow worker is now infeasible while the
        // other WiFi-class worker would not be.
        let policy = crate::policy::SelectionPolicy::DeadlineFeasible { deadline_ms: 800.0, k: 10 };
        let ids = e.select(&policy, &query(), None).unwrap();
        assert!(!ids.contains(&WorkerId(0)), "slow worker excluded");
        // Validation.
        assert!(e.record_computation(WorkerId(99), 10.0).is_err());
        assert!(e.record_computation(WorkerId(1), f64::NAN).is_err());
        assert!(e.record_computation(WorkerId(1), -5.0).is_err());
    }

    #[test]
    fn stats_accumulate_across_executions() {
        let e = engine_with_fleet();
        let mut rng = StdRng::seed_from_u64(3);
        let selected: Vec<WorkerId> = e.online().iter().map(|w| w.id).collect();
        assert_eq!(e.stats(), EngineStats::default());
        e.execute(&query(), &selected, |_| Some(0), &mut rng).unwrap();
        let mut q = query();
        q.deadline_ms = Some(800.0); // the 2G worker cannot make this
        e.execute(&q, &selected, |_| Some(0), &mut rng).unwrap();
        let stats = e.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.tasks, 6);
        assert_eq!(stats.deadline_misses, 1);
        assert_eq!(stats.answers, 5);
        assert!(stats.mean_latency_ms > 0.0);
    }

    #[test]
    fn retry_budget_reassigns_deadline_misses() {
        let mut q = query();
        q.deadline_ms = Some(800.0); // 2G ≈ 1035 ms > deadline; WiFi/3G fit

        // Without a budget the 2G worker's miss is simply counted.
        let e = engine_with_fleet();
        let mut rng = StdRng::seed_from_u64(3);
        let exec = e.execute_with_retry(&q, &[WorkerId(2)], |_| Some(0), &mut rng, 0).unwrap();
        assert!(exec.answers.is_empty());
        let s = e.stats();
        assert_eq!((s.tasks, s.deadline_misses, s.retries), (1, 1, 0));

        // With a budget the task is re-assigned to the fastest unused
        // worker and no miss is recorded. Per the paper's Figure 6 means the
        // 3G worker (169 + 171 ms) edges out WiFi (184 + 182 ms).
        let e = engine_with_fleet();
        let mut rng = StdRng::seed_from_u64(3);
        let exec = e.execute_with_retry(&q, &[WorkerId(2)], |_| Some(0), &mut rng, 1).unwrap();
        assert_eq!(exec.tasks.len(), 2, "the missed task's trace is kept");
        assert_eq!(exec.tasks[0].worker, WorkerId(2));
        assert_eq!(exec.tasks[0].answer, None);
        assert_eq!(exec.tasks[1].worker, WorkerId(1), "next-fastest is the 3G worker");
        assert_eq!(exec.answers, vec![(WorkerId(1), 0)]);
        let s = e.stats();
        assert_eq!((s.queries, s.tasks, s.answers, s.deadline_misses, s.retries), (1, 2, 1, 0, 1));
    }

    #[test]
    fn retry_budget_counts_miss_when_replacement_also_fails() {
        // A fleet of only 2G workers: the replacement misses too, so the
        // miss is recorded exactly once alongside the retry.
        let mut e = QueryExecutionEngine::new();
        for i in 0..2u64 {
            e.register(Worker {
                id: WorkerId(i),
                lon: -6.26,
                lat: 53.35,
                connection: ConnectionType::TwoG,
                avg_comp_ms: 100.0,
            });
        }
        let mut rng = StdRng::seed_from_u64(3);
        let mut q = query();
        q.deadline_ms = Some(800.0);
        let exec = e.execute_with_retry(&q, &[WorkerId(0)], |_| Some(0), &mut rng, 5).unwrap();
        assert!(exec.answers.is_empty());
        let s = e.stats();
        assert_eq!((s.tasks, s.deadline_misses, s.retries), (2, 1, 1));
    }

    #[test]
    fn retry_budget_without_spare_workers_counts_miss() {
        let mut e = QueryExecutionEngine::new();
        e.register(Worker {
            id: WorkerId(0),
            lon: -6.26,
            lat: 53.35,
            connection: ConnectionType::TwoG,
            avg_comp_ms: 100.0,
        });
        let mut rng = StdRng::seed_from_u64(3);
        let mut q = query();
        q.deadline_ms = Some(800.0);
        e.execute_with_retry(&q, &[WorkerId(0)], |_| Some(0), &mut rng, 3).unwrap();
        let s = e.stats();
        assert_eq!((s.tasks, s.deadline_misses, s.retries), (1, 1, 0));
    }

    #[test]
    fn no_answers_mean_latency_none() {
        let e = engine_with_fleet();
        let mut rng = StdRng::seed_from_u64(3);
        let exec = e.execute(&query(), &[WorkerId(0)], |_| None, &mut rng).unwrap();
        assert!(exec.mean_latency().is_none());
        assert!(exec.votes.is_empty());
    }
}
