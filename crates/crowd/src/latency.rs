//! The mobile-network latency model behind Figure 6.
//!
//! The paper measures three steps of the query execution engine per
//! connection type:
//!
//! | step | 2G | 3G | WiFi |
//! |---|---|---|---|
//! | trigger task (server-side) | 38–55 ms, network-independent | | |
//! | send push notification | 467 ms | 169 ms | 184 ms |
//! | communication (retrieve task + send answer) | 423 ms | 171 ms | 182 ms |
//!
//! The simulator samples each step around those means with multiplicative
//! jitter, reproducing the measured shape: 2G roughly 2.5× slower than
//! 3G/WiFi on the two communication steps, end-to-end below one second.

use rand::Rng;

/// Mobile connection type of a worker's device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConnectionType {
    /// 2G (GPRS/EDGE).
    TwoG,
    /// 3G (UMTS/HSPA).
    ThreeG,
    /// WiFi.
    WiFi,
}

impl ConnectionType {
    /// All connection types, in the paper's presentation order.
    pub const ALL: [ConnectionType; 3] =
        [ConnectionType::TwoG, ConnectionType::ThreeG, ConnectionType::WiFi];

    /// Display name matching the paper's figure labels.
    pub fn name(&self) -> &'static str {
        match self {
            ConnectionType::TwoG => "2G",
            ConnectionType::ThreeG => "3G",
            ConnectionType::WiFi => "WiFi",
        }
    }
}

/// Latencies of the three engine steps for one task execution, in
/// milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepLatency {
    /// Worker selection + task assignment inside the engine.
    pub trigger_ms: f64,
    /// Push notification via the GCM-style service.
    pub push_ms: f64,
    /// Task retrieval + answer transmission.
    pub comm_ms: f64,
}

impl StepLatency {
    /// End-to-end latency (excluding human thinking time, which the paper
    /// excludes as well).
    pub fn total_ms(&self) -> f64 {
        self.trigger_ms + self.push_ms + self.comm_ms
    }
}

/// Parameterised sampler for step latencies.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Trigger-step range (uniform), network independent.
    pub trigger_range_ms: (f64, f64),
    /// Mean push latency per connection type `(2G, 3G, WiFi)`.
    pub push_mean_ms: (f64, f64, f64),
    /// Mean communication latency per connection type `(2G, 3G, WiFi)`.
    pub comm_mean_ms: (f64, f64, f64),
    /// Multiplicative jitter: each sample is `mean · U(1−j, 1+j)`.
    pub jitter: f64,
}

impl Default for LatencyModel {
    fn default() -> LatencyModel {
        LatencyModel {
            trigger_range_ms: (38.0, 55.0),
            push_mean_ms: (467.0, 169.0, 184.0),
            comm_mean_ms: (423.0, 171.0, 182.0),
            jitter: 0.15,
        }
    }
}

impl LatencyModel {
    fn pick(tuple: (f64, f64, f64), c: ConnectionType) -> f64 {
        match c {
            ConnectionType::TwoG => tuple.0,
            ConnectionType::ThreeG => tuple.1,
            ConnectionType::WiFi => tuple.2,
        }
    }

    /// Mean push latency for a connection type.
    pub fn push_mean(&self, c: ConnectionType) -> f64 {
        Self::pick(self.push_mean_ms, c)
    }

    /// Mean communication latency for a connection type.
    pub fn comm_mean(&self, c: ConnectionType) -> f64 {
        Self::pick(self.comm_mean_ms, c)
    }

    /// Expected (mean) end-to-end network latency for a connection type:
    /// trigger-range midpoint + mean push + mean communication. Used to rank
    /// workers by speed without sampling.
    pub fn expected_total_ms(&self, c: ConnectionType) -> f64 {
        let trigger = (self.trigger_range_ms.0 + self.trigger_range_ms.1) / 2.0;
        trigger + self.push_mean(c) + self.comm_mean(c)
    }

    /// Samples the three steps for one task execution.
    pub fn sample<R: Rng + ?Sized>(&self, connection: ConnectionType, rng: &mut R) -> StepLatency {
        let jitter = |mean: f64, rng: &mut R| -> f64 {
            mean * rng.random_range(1.0 - self.jitter..1.0 + self.jitter)
        };
        StepLatency {
            trigger_ms: rng.random_range(self.trigger_range_ms.0..=self.trigger_range_ms.1),
            push_ms: jitter(self.push_mean(connection), rng),
            comm_ms: jitter(self.comm_mean(connection), rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn names() {
        assert_eq!(ConnectionType::TwoG.name(), "2G");
        assert_eq!(ConnectionType::ALL.len(), 3);
    }

    #[test]
    fn samples_track_paper_means() {
        let model = LatencyModel::default();
        let mut rng = StdRng::seed_from_u64(5);
        for c in ConnectionType::ALL {
            let n = 2000;
            let mut push_sum = 0.0;
            let mut comm_sum = 0.0;
            let mut trig_sum = 0.0;
            for _ in 0..n {
                let s = model.sample(c, &mut rng);
                push_sum += s.push_ms;
                comm_sum += s.comm_ms;
                trig_sum += s.trigger_ms;
                assert!(s.total_ms() < 1200.0, "end-to-end below ~1s even on 2G");
            }
            let push_avg = push_sum / n as f64;
            let comm_avg = comm_sum / n as f64;
            let trig_avg = trig_sum / n as f64;
            assert!((push_avg - model.push_mean(c)).abs() / model.push_mean(c) < 0.05);
            assert!((comm_avg - model.comm_mean(c)).abs() / model.comm_mean(c) < 0.05);
            assert!((38.0..=55.0).contains(&trig_avg));
        }
    }

    #[test]
    fn two_g_is_slowest_shape() {
        let model = LatencyModel::default();
        assert!(
            model.push_mean(ConnectionType::TwoG) > 2.0 * model.push_mean(ConnectionType::ThreeG)
        );
        assert!(
            model.comm_mean(ConnectionType::TwoG) > 2.0 * model.comm_mean(ConnectionType::WiFi)
        );
    }

    #[test]
    fn total_sums_steps() {
        let s = StepLatency { trigger_ms: 40.0, push_ms: 170.0, comm_ms: 180.0 };
        assert!((s.total_ms() - 390.0).abs() < 1e-12);
    }
}
