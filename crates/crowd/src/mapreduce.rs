//! The MapReduce task abstraction of §5.3.
//!
//! "To maximize parallelism, the crowdsourcing component employs the
//! MapReduce programming model to communicate the queries to the selected
//! participants and enable them to do local processing." A *map* task runs
//! on each worker and returns an intermediate key/value; *reduce* merges all
//! intermediates sharing a key into final values.
//!
//! For the congestion question the map task is simply "display the question,
//! return the selected answer" and reduce counts votes, but the abstraction
//! supports richer tasks — the paper mentions aggregating smartphone sensor
//! extractions the same way.

use std::collections::BTreeMap;

/// One intermediate `(key, value)` pair produced by a map task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Intermediate<K, V> {
    /// Grouping key.
    pub key: K,
    /// The mapped value.
    pub value: V,
}

/// Runs the reduce phase: groups intermediates by key (in key order) and
/// applies `reduce` to each group.
pub fn reduce_by_key<K: Ord + Clone, V, O>(
    intermediates: Vec<Intermediate<K, V>>,
    mut reduce: impl FnMut(&K, Vec<V>) -> O,
) -> Vec<(K, O)> {
    let mut groups: BTreeMap<K, Vec<V>> = BTreeMap::new();
    for i in intermediates {
        groups.entry(i.key).or_default().push(i.value);
    }
    groups
        .into_iter()
        .map(|(k, vs)| {
            let out = reduce(&k, vs);
            (k, out)
        })
        .collect()
}

/// The vote-counting reduce used for crowd queries: counts answers per
/// label, returning `(label, votes)` pairs in label order.
pub fn count_votes(answers: impl IntoIterator<Item = usize>) -> Vec<(usize, usize)> {
    let intermediates: Vec<Intermediate<usize, ()>> =
        answers.into_iter().map(|a| Intermediate { key: a, value: () }).collect();
    reduce_by_key(intermediates, |_, vs| vs.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_groups_by_key() {
        let ints = vec![
            Intermediate { key: "b", value: 2 },
            Intermediate { key: "a", value: 1 },
            Intermediate { key: "b", value: 3 },
        ];
        let out = reduce_by_key(ints, |_, vs| vs.into_iter().sum::<i32>());
        assert_eq!(out, vec![("a", 1), ("b", 5)]);
    }

    #[test]
    fn count_votes_counts() {
        let votes = count_votes([0, 2, 0, 0, 1]);
        assert_eq!(votes, vec![(0, 3), (1, 1), (2, 1)]);
        assert!(count_votes([]).is_empty());
    }
}
