//! Algorithm 1: online Expectation-Maximisation over disagreement events.
//!
//! For each event the posterior over labels is computed from the prior and
//! the participants' answers under the current reliability estimates
//! (sufficient statistics, lines 3–8 of Algorithm 1); the most likely label
//! is emitted as the `crowd` event (line 10); and each answering
//! participant's error-probability estimate is updated with a per-participant
//! stochastic-approximation step (lines 11–14):
//!
//! ```text
//! p_i ← (1 − γ_{t_i}) p_i + γ_{t_i} (1 − α(y_{i,t}) / Σ_x α(x))
//! ```
//!
//! The event and its answers can be forgotten once processed — the property
//! that lets the component run on an unbounded stream.

use crate::error::CrowdError;
use crate::model::LabelSet;
use crate::schedule::GammaSchedule;

/// Estimates are clamped to this distance from {0, 1} so that a single
/// perfectly (un)reliable stretch cannot zero out future posteriors.
const P_CLAMP: f64 = 1e-6;

/// The outcome of processing one disagreement event.
#[derive(Debug, Clone, PartialEq)]
pub struct PosteriorOutcome {
    /// Normalised posterior `P(Xₜ | answers)` over the labels.
    pub posterior: Vec<f64>,
    /// The most likely label (the content of the emitted `crowd` event).
    pub map_label: usize,
    /// The posterior mass of `map_label` (peakedness; the paper reports the
    /// fraction of events where this exceeds 0.99).
    pub confidence: f64,
}

/// Online EM state: per-participant error-probability estimates.
#[derive(Debug, Clone)]
pub struct OnlineEm {
    labels: LabelSet,
    p_hat: Vec<f64>,
    queries: Vec<usize>,
    schedule: GammaSchedule,
}

impl OnlineEm {
    /// Creates the estimator for `n_participants`, all initialised to
    /// `initial_p` (the paper biases towards trustful participants with
    /// 0.25).
    pub fn new(
        n_participants: usize,
        labels: LabelSet,
        initial_p: f64,
        schedule: GammaSchedule,
    ) -> Result<OnlineEm, CrowdError> {
        if !(0.0..=1.0).contains(&initial_p) || !initial_p.is_finite() {
            return Err(CrowdError::InvalidProbability { name: "initial_p", value: initial_p });
        }
        Ok(OnlineEm {
            labels,
            p_hat: vec![initial_p.clamp(P_CLAMP, 1.0 - P_CLAMP); n_participants],
            queries: vec![0; n_participants],
            schedule,
        })
    }

    /// Creates an estimator with explicit per-participant estimates
    /// (frozen: `Constant(0)` schedule). Used by the batch EM reference to
    /// evaluate posteriors under fixed parameters.
    pub fn with_estimates(labels: LabelSet, p: &[f64]) -> OnlineEm {
        OnlineEm {
            labels,
            p_hat: p.iter().map(|v| v.clamp(P_CLAMP, 1.0 - P_CLAMP)).collect(),
            queries: vec![0; p.len()],
            schedule: GammaSchedule::Constant(0.0),
        }
    }

    /// The paper's configuration: 10 participants, 4 labels, `p_i = 0.25`.
    pub fn paper_default(n_participants: usize) -> OnlineEm {
        OnlineEm::new(n_participants, LabelSet::traffic_default(), 0.25, GammaSchedule::default())
            .expect("static parameters")
    }

    /// Current error-probability estimates.
    pub fn estimates(&self) -> &[f64] {
        &self.p_hat
    }

    /// How often participant `i` has been queried.
    pub fn queries_of(&self, i: usize) -> Option<usize> {
        self.queries.get(i).copied()
    }

    /// The label set.
    pub fn labels(&self) -> &LabelSet {
        &self.labels
    }

    /// Computes the posterior for one event without updating any estimate
    /// (the pure E-step; used by the batch reference and by tests).
    pub fn posterior(
        &self,
        prior: &[f64],
        answers: &[(usize, usize)],
    ) -> Result<Vec<f64>, CrowdError> {
        self.labels.validate_prior(prior)?;
        let n_labels = self.labels.len();
        for &(i, y) in answers {
            if i >= self.p_hat.len() {
                return Err(CrowdError::UnknownWorker { id: i as u64 });
            }
            if y >= n_labels {
                return Err(CrowdError::LabelOutOfRange { label: y, n_labels });
            }
        }
        let mut alpha: Vec<f64> = prior.to_vec();
        for &(i, y) in answers {
            let p = self.p_hat[i];
            let wrong = p / (n_labels as f64 - 1.0);
            for (x, a) in alpha.iter_mut().enumerate() {
                *a *= if x == y { 1.0 - p } else { wrong };
            }
        }
        let sum: f64 = alpha.iter().sum();
        if sum > 0.0 && sum.is_finite() {
            for a in &mut alpha {
                *a /= sum;
            }
        } else {
            // All mass vanished numerically: fall back to the normalised prior.
            let psum: f64 = prior.iter().sum();
            alpha = prior.iter().map(|p| p / psum).collect();
        }
        Ok(alpha)
    }

    /// Exports the mutable estimator state — per-participant estimates and
    /// query counts — as a line-based text blob for checkpointing.
    ///
    /// The label set and γ schedule are *configuration*, not state: import
    /// the blob into an estimator built with the same configuration. Unlike
    /// [`OnlineEm::with_estimates`] (which freezes the schedule for batch
    /// evaluation), an export/import round trip keeps the
    /// stochastic-approximation steps adapting exactly where they left off,
    /// because the per-participant query counts that index γ are restored
    /// too.
    pub fn export_state(&self) -> String {
        let mut out = String::from("crowd-em v1\n");
        for (p, q) in self.p_hat.iter().zip(&self.queries) {
            out.push_str(&format!("{:016x} {q}\n", p.to_bits()));
        }
        out
    }

    /// Restores state captured by [`OnlineEm::export_state`]. The snapshot
    /// must cover exactly this estimator's participant count.
    pub fn import_state(&mut self, state: &str) -> Result<(), CrowdError> {
        let corrupt = |detail: String| CrowdError::CorruptState { detail };
        let mut lines = state.lines();
        match lines.next() {
            Some("crowd-em v1") => {}
            other => {
                return Err(corrupt(format!("unsupported header `{}`", other.unwrap_or_default())))
            }
        }
        let mut p_hat = Vec::with_capacity(self.p_hat.len());
        let mut queries = Vec::with_capacity(self.queries.len());
        for (ln, line) in lines.filter(|l| !l.is_empty()).enumerate() {
            let (bits, count) = line
                .split_once(' ')
                .ok_or_else(|| corrupt(format!("line {}: `{line}`", ln + 2)))?;
            let p = u64::from_str_radix(bits, 16)
                .map(f64::from_bits)
                .map_err(|_| corrupt(format!("line {}: bad estimate `{bits}`", ln + 2)))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(CrowdError::InvalidProbability { name: "p_hat", value: p });
            }
            p_hat.push(p);
            queries.push(
                count
                    .parse::<usize>()
                    .map_err(|_| corrupt(format!("line {}: bad query count `{count}`", ln + 2)))?,
            );
        }
        if p_hat.len() != self.p_hat.len() {
            return Err(corrupt(format!(
                "snapshot covers {} participants, estimator has {}",
                p_hat.len(),
                self.p_hat.len()
            )));
        }
        self.p_hat = p_hat;
        self.queries = queries;
        Ok(())
    }

    /// Processes one disagreement event: answers are `(participant, label)`
    /// pairs. Returns the posterior outcome and updates the reliability
    /// estimates of every answering participant.
    pub fn process(
        &mut self,
        prior: &[f64],
        answers: &[(usize, usize)],
    ) -> Result<PosteriorOutcome, CrowdError> {
        let posterior = self.posterior(prior, answers)?;
        let (map_label, &confidence) = posterior
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("label set is non-empty");

        for &(i, y) in answers {
            let t = self.queries[i] + 1;
            let gamma = self.schedule.gamma(t);
            // 1 − α(y_{i,t}): posterior probability that the answer was wrong.
            let wrongness = 1.0 - posterior[y];
            self.p_hat[i] =
                ((1.0 - gamma) * self.p_hat[i] + gamma * wrongness).clamp(P_CLAMP, 1.0 - P_CLAMP);
            self.queries[i] = t;
        }

        Ok(PosteriorOutcome { posterior, map_label, confidence })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SimulatedParticipant;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniform4() -> Vec<f64> {
        vec![0.25; 4]
    }

    #[test]
    fn posterior_favours_majority() {
        let em = OnlineEm::paper_default(3);
        // Two participants say 0, one says 2.
        let post = em.posterior(&uniform4(), &[(0, 0), (1, 0), (2, 2)]).unwrap();
        let map = post.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        assert_eq!(map, 0);
        assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prior_shifts_posterior() {
        let em = OnlineEm::paper_default(1);
        // A strong prior on label 3 overrides a single answer for label 1.
        let prior = vec![0.01, 0.01, 0.01, 0.97];
        let post = em.posterior(&prior, &[(0, 1)]).unwrap();
        let map = post.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        assert_eq!(map, 3);
    }

    #[test]
    fn validates_inputs() {
        let mut em = OnlineEm::paper_default(2);
        assert!(em.process(&[0.5, 0.5], &[]).is_err(), "prior of wrong length");
        assert!(em.process(&uniform4(), &[(5, 0)]).is_err(), "unknown participant");
        assert!(em.process(&uniform4(), &[(0, 9)]).is_err(), "label out of range");
        assert!(
            OnlineEm::new(1, LabelSet::traffic_default(), 1.5, GammaSchedule::default()).is_err()
        );
    }

    #[test]
    fn estimates_converge_to_true_error_rates() {
        // The §7.2 protocol: 10 participants with known error probabilities,
        // all answering every event; estimates must converge.
        let cohort = SimulatedParticipant::paper_cohort();
        let labels = LabelSet::traffic_default();
        let mut em = OnlineEm::paper_default(cohort.len());
        let mut rng = StdRng::seed_from_u64(42);

        for t in 0..1500u64 {
            let truth = (t % 4) as usize;
            let answers: Vec<(usize, usize)> = cohort
                .iter()
                .enumerate()
                .map(|(i, p)| (i, p.answer(truth, &labels, &mut rng).unwrap()))
                .collect();
            em.process(&uniform4(), &answers).unwrap();
        }

        for (i, p) in cohort.iter().enumerate() {
            let err = (em.estimates()[i] - p.p_err).abs();
            assert!(
                err < 0.08,
                "participant {i}: estimate {} vs true {} (|Δ|={err})",
                em.estimates()[i],
                p.p_err
            );
        }
        // Ordering of the reliable vs unreliable participants is recovered.
        assert!(em.estimates()[0] < em.estimates()[7]);
        assert!(em.estimates()[7] < em.estimates()[9]);
    }

    #[test]
    fn posteriors_become_peaked_with_reliable_crowd() {
        let cohort = SimulatedParticipant::paper_cohort();
        let labels = LabelSet::traffic_default();
        let mut em = OnlineEm::paper_default(cohort.len());
        let mut rng = StdRng::seed_from_u64(7);
        let mut peaked = 0usize;
        let total = 600usize;
        for t in 0..total {
            let truth = t % 4;
            let answers: Vec<(usize, usize)> = cohort
                .iter()
                .enumerate()
                .map(|(i, p)| (i, p.answer(truth, &labels, &mut rng).unwrap()))
                .collect();
            let out = em.process(&uniform4(), &answers).unwrap();
            if out.confidence > 0.99 {
                peaked += 1;
            }
        }
        // The paper reports ~94%; any clearly dominant fraction validates
        // the mechanism.
        assert!(
            peaked as f64 / total as f64 > 0.85,
            "peaked fraction {}",
            peaked as f64 / total as f64
        );
    }

    #[test]
    fn partial_participation_updates_only_answerers() {
        let mut em = OnlineEm::paper_default(3);
        let before = em.estimates().to_vec();
        em.process(&uniform4(), &[(0, 0), (2, 0)]).unwrap();
        assert_eq!(em.estimates()[1], before[1], "non-answering participant untouched");
        assert_eq!(em.queries_of(0), Some(1));
        assert_eq!(em.queries_of(1), Some(0));
        assert_eq!(em.queries_of(9), None);
    }

    #[test]
    fn estimates_stay_in_open_unit_interval() {
        let labels = LabelSet::traffic_default();
        let mut em = OnlineEm::new(1, labels, 0.25, GammaSchedule::Constant(1.0)).unwrap();
        // Constant γ=1 copies the wrongness estimate directly; after a
        // perfectly confident event it must still stay clamped inside (0,1).
        for _ in 0..50 {
            em.process(&[0.997, 0.001, 0.001, 0.001], &[(0, 0)]).unwrap();
        }
        let p = em.estimates()[0];
        assert!(p > 0.0 && p < 1.0);
    }

    #[test]
    fn export_import_resumes_adaptation_exactly() {
        let cohort = SimulatedParticipant::paper_cohort();
        let labels = LabelSet::traffic_default();
        let mut live = OnlineEm::paper_default(cohort.len());
        let mut rng = StdRng::seed_from_u64(11);
        let events: Vec<Vec<(usize, usize)>> = (0..400u64)
            .map(|t| {
                cohort
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i, p.answer((t % 4) as usize, &labels, &mut rng).unwrap()))
                    .collect()
            })
            .collect();
        for ev in &events[..200] {
            live.process(&uniform4(), ev).unwrap();
        }
        let snapshot = live.export_state();

        // A rebuilt estimator restored from the snapshot continues the
        // γ-schedule exactly where the live one left off.
        let mut restored = OnlineEm::paper_default(cohort.len());
        restored.import_state(&snapshot).unwrap();
        assert_eq!(restored.estimates(), live.estimates());
        assert_eq!(restored.queries_of(0), live.queries_of(0));
        assert_eq!(restored.export_state(), snapshot, "round trip is lossless");
        for ev in &events[200..] {
            let a = live.process(&uniform4(), ev).unwrap();
            let b = restored.process(&uniform4(), ev).unwrap();
            assert_eq!(a, b, "post-restore outcomes diverged");
        }
        assert_eq!(restored.estimates(), live.estimates());
    }

    #[test]
    fn import_rejects_corrupt_and_mismatched_snapshots() {
        let mut em = OnlineEm::paper_default(3);
        let before = em.estimates().to_vec();
        for bad in [
            "",
            "crowd-em v0\n",
            "crowd-em v1\nzz 1\n",
            "crowd-em v1\n0000000000000000\n",
            "crowd-em v1\n3fd0000000000000 x\n",
        ] {
            assert!(
                matches!(em.import_state(bad), Err(CrowdError::CorruptState { .. })),
                "accepted {bad:?}"
            );
        }
        // Wrong participant count.
        let other = OnlineEm::paper_default(5).export_state();
        assert!(em.import_state(&other).is_err());
        // Out-of-range estimate.
        let nan = format!(
            "crowd-em v1\n{:016x} 1\n{:016x} 1\n{:016x} 1\n",
            2.0f64.to_bits(),
            0.5f64.to_bits(),
            0.5f64.to_bits()
        );
        assert!(matches!(em.import_state(&nan), Err(CrowdError::InvalidProbability { .. })));
        assert_eq!(em.estimates(), before, "failed imports leave state untouched");
    }

    #[test]
    fn map_label_resolves_congestion_question() {
        // 3 of 4 reliable participants say "Traffic congestion" (label 0):
        // the crowd event must carry positive congestion.
        let mut em = OnlineEm::paper_default(4);
        let out = em.process(&uniform4(), &[(0, 0), (1, 0), (2, 0), (3, 1)]).unwrap();
        assert_eq!(out.map_label, 0);
        assert!(out.confidence > 0.5);
    }
}
