//! Proactive traffic control recommendations.
//!
//! The paper's motivating application (§1): "an urban monitoring system
//! that identifies traffic congestions (in-the-make) and (proactively)
//! changes traffic light priorities and speed limits to reduce ripple
//! effects." The monitoring system of the paper stops at detection; this
//! module implements the decision layer on top of the recognised CEs:
//!
//! * a congested SCATS intersection ⇒ extend its green-phase priority;
//! * a rising density trend on a sensor ⇒ reduce the speed limit on the
//!   approach feeding it (slowing inflow before the jam forms);
//! * a `delayIncrease` CE (congestion in the making) ⇒ advisory rerouting
//!   around the segment.
//!
//! Actions carry a per-target cooldown so the controller does not flap.

use insight_rtec::term::Term;
use insight_traffic::TrafficRecognition;
use std::collections::HashMap;
use std::fmt;

/// A recommended control action.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlAction {
    /// Extend green-phase priority at a congested intersection.
    SignalPriority {
        /// Intersection longitude.
        lon: f64,
        /// Intersection latitude.
        lat: f64,
        /// Recommended green extension in seconds.
        green_extension_s: i64,
    },
    /// Temporarily reduce the speed limit feeding a sensor with rising
    /// density.
    SpeedLimit {
        /// Intersection id.
        intersection: i64,
        /// Approach index.
        approach: i64,
        /// Recommended limit in km/h.
        limit_kmh: i64,
    },
    /// Advise rerouting around a segment with a sharp delay increase.
    RerouteAdvisory {
        /// Segment end longitude.
        lon: f64,
        /// Segment end latitude.
        lat: f64,
        /// The bus that evidenced the delay.
        bus: i64,
    },
}

impl ControlAction {
    fn target_key(&self) -> (u8, i64, i64) {
        match self {
            ControlAction::SignalPriority { lon, lat, .. } => {
                (0, (lon * 1e6) as i64, (lat * 1e6) as i64)
            }
            ControlAction::SpeedLimit { intersection, approach, .. } => {
                (1, *intersection, *approach)
            }
            ControlAction::RerouteAdvisory { lon, lat, .. } => {
                (2, (lon * 1e6) as i64, (lat * 1e6) as i64)
            }
        }
    }
}

impl fmt::Display for ControlAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlAction::SignalPriority { lon, lat, green_extension_s } => write!(
                f,
                "extend green phase by {green_extension_s}s at ({lon:.5}, {lat:.5})"
            ),
            ControlAction::SpeedLimit { intersection, approach, limit_kmh } => write!(
                f,
                "reduce speed limit to {limit_kmh} km/h on approach {approach} of intersection {intersection}"
            ),
            ControlAction::RerouteAdvisory { lon, lat, bus } => write!(
                f,
                "advise rerouting near ({lon:.5}, {lat:.5}) — delay spike on bus {bus}"
            ),
        }
    }
}

/// Controller configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerConfig {
    /// Green extension recommended per congested intersection (seconds).
    pub green_extension_s: i64,
    /// Reduced limit recommended on rising-density approaches (km/h).
    pub reduced_limit_kmh: i64,
    /// Minimum seconds between repeated actions on the same target.
    pub cooldown_s: i64,
}

impl Default for ControllerConfig {
    fn default() -> ControllerConfig {
        ControllerConfig { green_extension_s: 15, reduced_limit_kmh: 30, cooldown_s: 900 }
    }
}

/// The proactive controller: turns recognised CEs into control actions.
#[derive(Debug, Clone)]
pub struct ProactiveController {
    config: ControllerConfig,
    last_fired: HashMap<(u8, i64, i64), i64>,
}

impl ProactiveController {
    /// A controller with the given configuration.
    pub fn new(config: ControllerConfig) -> ProactiveController {
        ProactiveController { config, last_fired: HashMap::new() }
    }

    /// Derives actions from one recognition result at query time `now`.
    /// Targets in cooldown are skipped.
    pub fn decide(&mut self, recognition: &TrafficRecognition, now: i64) -> Vec<ControlAction> {
        let mut actions = Vec::new();

        // Congested intersections (open intervals only: the condition is
        // current) -> signal priority.
        for ((lon, lat), ivs) in recognition.congested_intersections() {
            if ivs.contains(now.saturating_sub(1)) || ivs.iter().any(|iv| iv.is_open()) {
                actions.push(ControlAction::SignalPriority {
                    lon,
                    lat,
                    green_extension_s: self.config.green_extension_s,
                });
            }
        }

        // Rising density trends -> speed limits.
        for e in recognition.trend_events() {
            let is_density = e.kind
                == insight_rtec::term::Symbol::new(insight_traffic::rules::ce::DENSITY_TREND);
            if !is_density || e.args.get(3) != Some(&Term::sym("up")) {
                continue;
            }
            if let (Some(int), Some(a)) = (e.args[0].as_i64(), e.args[1].as_i64()) {
                actions.push(ControlAction::SpeedLimit {
                    intersection: int,
                    approach: a,
                    limit_kmh: self.config.reduced_limit_kmh,
                });
            }
        }

        // Delay increases (congestion in the making) -> reroute advisories.
        for e in recognition.delay_increases() {
            if let (Some(bus), Some(lon), Some(lat)) =
                (e.args[0].as_i64(), e.args[3].as_f64(), e.args[4].as_f64())
            {
                actions.push(ControlAction::RerouteAdvisory { lon, lat, bus });
            }
        }

        // Cooldown filter.
        actions.retain(|a| {
            let key = a.target_key();
            match self.last_fired.get(&key) {
                Some(&t) if now - t < self.config.cooldown_s => false,
                _ => {
                    self.last_fired.insert(key, now);
                    true
                }
            }
        });
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insight_rtec::engine::Engine;
    use insight_rtec::event::Event;
    use insight_rtec::window::WindowConfig;
    use insight_traffic::rules::{build_ruleset, rel};
    use insight_traffic::TrafficRulesConfig;

    const LON: f64 = -6.26;
    const LAT: f64 = 53.35;

    fn recognition_with_congestion_and_trend() -> TrafficRecognition {
        let config = TrafficRulesConfig::static_mode();
        let rs = build_ruleset(&config).unwrap();
        let mut e = Engine::new(rs, WindowConfig::new(10_000, 10_000).unwrap());
        e.register_builtin("close", insight_traffic::geo::close_builtin(250.0)).unwrap();
        e.set_relation(
            rel::SCATS_INTERSECTION,
            vec![vec![Term::int(1), Term::float(LON), Term::float(LAT)]],
        )
        .unwrap();
        e.set_relation(rel::AREA, vec![vec![Term::float(LON), Term::float(LAT)]]).unwrap();
        // Ongoing congestion + a rising density trend (30 -> 95 veh/km).
        e.add_event(Event::new(
            "traffic",
            [Term::int(1), Term::int(0), Term::int(5), Term::float(30.0), Term::float(1700.0)],
            360,
        ))
        .unwrap();
        e.add_event(Event::new(
            "traffic",
            [Term::int(1), Term::int(0), Term::int(5), Term::float(95.0), Term::float(900.0)],
            720,
        ))
        .unwrap();
        TrafficRecognition { raw: e.query(10_000).unwrap() }
    }

    #[test]
    fn congestion_and_trend_produce_actions() {
        let rec = recognition_with_congestion_and_trend();
        let mut ctl = ProactiveController::new(ControllerConfig::default());
        let actions = ctl.decide(&rec, 10_000);
        assert!(
            actions.iter().any(|a| matches!(a, ControlAction::SignalPriority { .. })),
            "ongoing congestion triggers signal priority: {actions:?}"
        );
        assert!(
            actions.iter().any(|a| matches!(
                a,
                ControlAction::SpeedLimit { intersection: 1, approach: 0, .. }
            )),
            "rising density triggers a speed limit: {actions:?}"
        );
    }

    #[test]
    fn cooldown_suppresses_repeats() {
        let rec = recognition_with_congestion_and_trend();
        let mut ctl = ProactiveController::new(ControllerConfig::default());
        let first = ctl.decide(&rec, 10_000);
        assert!(!first.is_empty());
        let repeat = ctl.decide(&rec, 10_100);
        assert!(repeat.is_empty(), "inside cooldown: {repeat:?}");
        let later = ctl.decide(&rec, 10_000 + 1000);
        assert_eq!(later.len(), first.len(), "cooldown expired");
    }

    #[test]
    fn actions_display_readably() {
        let a = ControlAction::SignalPriority { lon: LON, lat: LAT, green_extension_s: 15 };
        assert!(a.to_string().contains("green phase"));
        let a = ControlAction::SpeedLimit { intersection: 1, approach: 0, limit_kmh: 30 };
        assert!(a.to_string().contains("30 km/h"));
        let a = ControlAction::RerouteAdvisory { lon: LON, lat: LAT, bus: 7 };
        assert!(a.to_string().contains("rerouting"));
    }
}
