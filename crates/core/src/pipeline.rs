//! The Streams topology of §3.
//!
//! Reproduces the paper's stream processing component layout:
//!
//! * **input handling processes** — all bus SDEs form one stream; SCATS SDEs
//!   are referenced by four streams, one per region of Dublin city;
//! * **event processing processes** — the CE definitions are wrapped by a
//!   processor embedding the RTEC engine in the Streams environment; derived
//!   CEs are emitted to a queue;
//! * a collector process forwards the recognition summaries to a sink.
//!
//! The RTEC processor buffers SDE items, and whenever the arrival time
//! crosses the next query time it runs recognition and emits one summary
//! item per window (CE counts + the disagreement locations to be
//! crowdsourced).

use crate::items::{item_to_sde, sde_to_item};
use insight_datagen::regions::Region;
use insight_datagen::scenario::Scenario;
use insight_rtec::window::WindowConfig;
use insight_streams::chaos::{ChaosConfig, ChaosSource, ChaosStats};
use insight_streams::error::StreamsError;
use insight_streams::fault::FaultPolicy;
use insight_streams::item::DataItem;
use insight_streams::metrics::{Counter, Histogram, MetricsRegistry};
use insight_streams::processor::{Context, Processor};
use insight_streams::sink::CollectSink;
use insight_streams::source::VecSource;
use insight_streams::topology::{Input, Output, Topology};
use insight_traffic::recognizer::{IntersectionInfo, TrafficRecognizer};
use insight_traffic::TrafficRulesConfig;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Embeds a [`TrafficRecognizer`] as a Streams processor ("we integrated
/// RTEC by a dedicated processor in Streams", §3).
///
/// # Schedule-independence
///
/// The processor's input queue merges two producers — the broadcast bus
/// stream and the region's SCATS stream — whose interleaving is up to the
/// thread scheduler. To make recognition output a pure function of the two
/// *per-producer* subsequences (which the queues preserve in FIFO order)
/// rather than of their merge, query `Qi` fires only once the **arrival
/// watermark of each input class** (bus, SCATS) has strictly passed `Qi`:
/// each producer emits in nondecreasing arrival order, so a watermark beyond
/// `Qi` proves every SDE with `arrival ≤ Qi` of that class has been
/// ingested. Region filtering of the broadcast bus stream happens *inside*
/// the processor — after the watermark update — so foreign-region bus SDEs
/// still advance the bus watermark. Queries whose gate never opens
/// in-stream (e.g. a region without SCATS sensors) are flushed at
/// end-of-stream, where the knowledge is complete by definition. The
/// deterministic replay scheduler
/// ([`insight_streams::replay::ReplayRuntime`]) relies on exactly this
/// property to assert byte-identical recognitions across interleavings.
pub struct RtecProcessor {
    recognizer: TrafficRecognizer,
    next_query: i64,
    step: i64,
    last_query: i64,
    region: Region,
    /// Highest arrival time seen on the bus input class (`i64::MIN` before
    /// the first bus SDE).
    bus_watermark: i64,
    /// Highest arrival time seen on the SCATS input class.
    scats_watermark: i64,
    /// Highest arrival time seen on any input item, bounding the queries
    /// flushed at end-of-stream.
    max_arrival: i64,
    pending: VecDeque<DataItem>,
    /// Per-window RTEC query latency, fetched lazily from the runtime's
    /// metrics service (absent when the processor runs outside a runtime).
    window_ns: Option<Arc<Histogram>>,
    /// Items that failed SDE schema validation and were skipped.
    malformed: Option<Arc<Counter>>,
    /// Incremental-evaluation effort: strata actually re-evaluated and
    /// fluent groundings recomputed, summed over queries (clean cache hits
    /// add nothing, so these expose how much work delta-awareness saved).
    eval_counters: Option<(Arc<Counter>, Arc<Counter>)>,
}

impl RtecProcessor {
    /// Wraps a recogniser; queries run at `first_query, first_query + step, …`.
    pub fn new(
        recognizer: TrafficRecognizer,
        first_query: i64,
        step: i64,
        region: Region,
    ) -> RtecProcessor {
        RtecProcessor {
            recognizer,
            next_query: first_query,
            step,
            last_query: i64::MIN,
            region,
            bus_watermark: i64::MIN,
            scats_watermark: i64::MIN,
            max_arrival: i64::MIN,
            pending: VecDeque::new(),
            window_ns: None,
            malformed: None,
            eval_counters: None,
        }
    }

    fn window_histogram(&mut self, ctx: &Context) -> Option<Arc<Histogram>> {
        if self.window_ns.is_none() {
            if let Ok(registry) = ctx.services().get::<MetricsRegistry>("metrics") {
                self.window_ns =
                    Some(registry.histogram(&format!("rtec.{}.window_ns", self.region)));
            }
        }
        self.window_ns.clone()
    }

    fn malformed_counter(&mut self, ctx: &Context) -> Option<Arc<Counter>> {
        if self.malformed.is_none() {
            if let Ok(registry) = ctx.services().get::<MetricsRegistry>("metrics") {
                self.malformed =
                    Some(registry.counter(&format!("rtec.{}.malformed_sdes", self.region)));
            }
        }
        self.malformed.clone()
    }

    fn evaluation_counters(&mut self, ctx: &Context) -> Option<(Arc<Counter>, Arc<Counter>)> {
        if self.eval_counters.is_none() {
            if let Ok(registry) = ctx.services().get::<MetricsRegistry>("metrics") {
                self.eval_counters = Some((
                    registry.counter(&format!("rtec.{}.strata_evaluated", self.region)),
                    registry.counter(&format!("rtec.{}.groundings_recomputed", self.region)),
                ));
            }
        }
        self.eval_counters.clone()
    }

    fn run_query(&mut self, q: i64, ctx: &Context) -> Result<(), StreamsError> {
        let result = self.recognizer.query(q).map_err(|e| StreamsError::ProcessorFailed {
            process: format!("rtec-{}", self.region),
            processor: None,
            message: e.to_string(),
        })?;
        let query_ns = result.raw.timing.total.as_nanos().min(i64::MAX as u128) as i64;
        if let Some(hist) = self.window_histogram(ctx) {
            hist.record_ns(query_ns as u64);
        }
        if let Some((strata, groundings)) = self.evaluation_counters(ctx) {
            strata.add(result.raw.timing.strata_evaluated as u64);
            groundings.add(result.raw.timing.groundings_recomputed as u64);
        }
        let mut item = DataItem::new()
            .with("kind", "recognition")
            .with("region", self.region.to_string())
            .with("query_time", q)
            .with("recognition_ns", query_ns)
            .with("sde_count", result.sde_count() as i64)
            .with("congested_intersections", result.congested_intersections().len() as i64)
            .with("bus_congestions", result.bus_congestions().len() as i64)
            .with("noisy_buses", result.noisy_buses().len() as i64)
            .with("delay_increases", result.delay_increases().len() as i64);
        let open = result.open_disagreements();
        item.set("open_disagreements", open.len() as i64);
        if let Some(&(lon, lat)) = open.first() {
            item.set("disagreement_lon", lon);
            item.set("disagreement_lat", lat);
        }
        self.pending.push_back(item);
        self.last_query = q;
        Ok(())
    }
}

impl Processor for RtecProcessor {
    fn process(
        &mut self,
        item: DataItem,
        ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        match item_to_sde(&item) {
            Some(sde) => {
                // Watermarks advance on *every* well-formed SDE, including
                // foreign-region bus SDEs that are filtered out below — they
                // still prove how far their producer has progressed.
                if sde.is_bus() {
                    self.bus_watermark = self.bus_watermark.max(sde.arrival);
                } else {
                    self.scats_watermark = self.scats_watermark.max(sde.arrival);
                }
                self.max_arrival = self.max_arrival.max(sde.arrival);
                if sde.region() == self.region {
                    self.recognizer.ingest(&sde).map_err(|e| StreamsError::ProcessorFailed {
                        process: format!("rtec-{}", self.region),
                        processor: None,
                        message: e.to_string(),
                    })?;
                }
                // Fire every query both classes have strictly passed; SDEs
                // already ingested with later arrivals are invisible to
                // those queries, so ingestion order never leaks into the
                // result.
                while self.bus_watermark.min(self.scats_watermark) > self.next_query {
                    let q = self.next_query;
                    self.run_query(q, ctx)?;
                    self.next_query += self.step;
                }
            }
            // Graceful degradation: a malformed SDE (schema violation,
            // corrupted field) is skipped and counted rather than failing
            // the recognition stage. It carries no trustworthy arrival time,
            // so it does not advance the watermarks either.
            None => {
                if let Some(counter) = self.malformed_counter(ctx) {
                    counter.inc();
                }
            }
        }
        Ok(self.pending.pop_front())
    }

    fn finish(&mut self, ctx: &mut Context) -> Result<Vec<DataItem>, StreamsError> {
        // End-of-stream: the knowledge is complete, so every query the
        // watermark gate still held back fires now, up to the last grid
        // point the stream reached...
        while self.next_query <= self.max_arrival {
            let q = self.next_query;
            self.run_query(q, ctx)?;
            self.next_query += self.step;
        }
        // ...plus one final query covering the tail of the stream.
        let q = self.next_query;
        if q > self.last_query {
            self.run_query(q, ctx)?;
        }
        Ok(self.pending.drain(..).collect())
    }
}

/// Embeds the crowdsourcing component as a Streams processor: recognition
/// summaries carrying an open source disagreement trigger a crowd query
/// (the §3 "crowdsourcing processes" — query generation + response
/// merging); the summary is annotated with the crowd verdict and forwarded.
///
/// The *feedback* edge of Figure 1 (crowd events re-entering RTEC) cannot
/// be a queue in a terminating dataflow graph — it would form a cycle; the
/// closed loop lives in [`crate::system::InsightSystem`]. `truth_of`
/// supplies the simulated participants' ground truth, as in the paper's
/// own crowdsourcing evaluation.
///
/// # Schedule-independence
///
/// [`crate::crowdbridge::CrowdBridge::resolve`] is stateful — participant
/// selection and simulated answers depend on the *order* of resolve calls —
/// while the `recognitions` queue merges one producer per region in
/// scheduler-determined order. To keep crowd verdicts a pure function of
/// the region streams, summaries carrying a disagreement are buffered and
/// resolved in canonical `(query_time, region)` order, releasing an entry
/// only once every declared region's **query-time watermark** has reached
/// its query time (each region emits summaries in strictly increasing query
/// time, so the watermark proves no earlier-keyed summary can still
/// arrive). Whatever the gate still holds at end-of-stream is resolved, in
/// the same canonical order, in `finish`. Summaries without a disagreement
/// never touch the bridge and pass through immediately.
pub struct CrowdProcessor<F> {
    bridge: crate::crowdbridge::CrowdBridge,
    truth_of: F,
    /// The regions expected to produce summaries; the resolve gate waits
    /// for all of them. Empty ⇒ every resolution happens at end-of-stream.
    regions: Vec<String>,
    /// Per-region highest `query_time` seen so far.
    watermarks: HashMap<String, i64>,
    /// Disagreement summaries awaiting ordered resolution, keyed by
    /// `(query_time, region)`.
    held: BTreeMap<(i64, String), Vec<DataItem>>,
    /// Items ready to leave the stage (one per `process` call).
    pending: VecDeque<DataItem>,
    /// Latency of each `resolve` call; lazily fetched from the metrics service.
    resolve_ns: Option<Arc<Histogram>>,
    resolutions: Option<Arc<Counter>>,
    fallbacks: Option<Arc<Counter>>,
}

impl<F> CrowdProcessor<F>
where
    F: Fn(f64, f64, i64) -> bool + Send,
{
    /// Wraps a crowd bridge and a ground-truth oracle. Without
    /// [`CrowdProcessor::with_regions`] every disagreement resolves at
    /// end-of-stream.
    pub fn new(bridge: crate::crowdbridge::CrowdBridge, truth_of: F) -> CrowdProcessor<F> {
        CrowdProcessor {
            bridge,
            truth_of,
            regions: Vec::new(),
            watermarks: HashMap::new(),
            held: BTreeMap::new(),
            pending: VecDeque::new(),
            resolve_ns: None,
            resolutions: None,
            fallbacks: None,
        }
    }

    /// Declares the upstream regions whose watermarks gate in-stream
    /// resolution.
    pub fn with_regions<I, S>(mut self, regions: I) -> CrowdProcessor<F>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.regions = regions.into_iter().map(Into::into).collect();
        self
    }

    /// The lowest per-region watermark — summaries keyed at or below it are
    /// complete. `None` while some declared region has not reported yet.
    fn safe_frontier(&self) -> Option<i64> {
        if self.regions.is_empty() {
            return None;
        }
        self.regions
            .iter()
            .map(|r| self.watermarks.get(r).copied())
            .try_fold(i64::MAX, |acc, wm| wm.map(|w| acc.min(w)))
    }

    /// Resolves and releases every held summary whose key the watermark
    /// frontier has passed.
    fn release_ready(&mut self, ctx: &Context) {
        let Some(frontier) = self.safe_frontier() else { return };
        while let Some(entry) = self.held.first_entry() {
            if entry.key().0 > frontier {
                break;
            }
            for item in entry.remove() {
                let resolved = self.resolve(item, ctx);
                self.pending.push_back(resolved);
            }
        }
    }

    fn instruments(&mut self, ctx: &Context) -> Option<(Arc<Histogram>, Arc<Counter>)> {
        if self.resolve_ns.is_none() {
            if let Ok(registry) = ctx.services().get::<MetricsRegistry>("metrics") {
                self.resolve_ns = Some(registry.histogram("crowd.resolve_ns"));
                self.resolutions = Some(registry.counter("crowd.resolutions"));
                self.fallbacks = Some(registry.counter("crowd.fallbacks"));
            }
        }
        self.resolve_ns.clone().zip(self.resolutions.clone())
    }

    /// One crowd resolution, annotating the summary with the verdict.
    fn resolve(&mut self, mut item: DataItem, ctx: &Context) -> DataItem {
        let (Some(lon), Some(lat), Some(q)) = (
            item.get_f64("disagreement_lon"),
            item.get_f64("disagreement_lat"),
            item.get_i64("query_time"),
        ) else {
            return item;
        };
        let truth = (self.truth_of)(lon, lat, q);
        let resolve_started = Instant::now();
        match self.bridge.resolve(lon, lat, truth, None) {
            Ok(resolution) => {
                if let Some((hist, count)) = self.instruments(ctx) {
                    hist.record(resolve_started.elapsed());
                    count.inc();
                }
                item.set("crowd_verdict_congested", resolution.congested);
                item.set("crowd_confidence", resolution.confidence);
                item.set("crowd_answers", resolution.answers as i64);
            }
            // Graceful degradation: when the crowd engine cannot
            // resolve the disagreement (no eligible workers, engine
            // error), fall back to the sensor-only summary instead of
            // failing the stage — the paper's pipeline keeps reporting
            // from SCATS/bus data alone.
            Err(_) => {
                self.instruments(ctx);
                if let Some(fallbacks) = &self.fallbacks {
                    fallbacks.inc();
                }
                item.set("crowd_fallback", true);
            }
        }
        item
    }
}

impl<F> Processor for CrowdProcessor<F>
where
    F: Fn(f64, f64, i64) -> bool + Send,
{
    fn process(
        &mut self,
        item: DataItem,
        ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        match (item.get_str("region").map(str::to_string), item.get_i64("query_time")) {
            (Some(region), Some(q)) => {
                let wm = self.watermarks.entry(region.clone()).or_insert(i64::MIN);
                *wm = (*wm).max(q);
                if item.contains("disagreement_lon") {
                    self.held.entry((q, region)).or_default().push(item);
                } else {
                    // No disagreement: nothing touches the bridge state, so
                    // the summary can pass through unordered.
                    self.pending.push_back(item);
                }
            }
            _ => self.pending.push_back(item),
        }
        self.release_ready(ctx);
        Ok(self.pending.pop_front())
    }

    fn finish(&mut self, ctx: &mut Context) -> Result<Vec<DataItem>, StreamsError> {
        // Resolve whatever the watermark gate still holds, in the same
        // canonical (query_time, region) order the in-stream path uses.
        let held = std::mem::take(&mut self.held);
        for (_, items) in held {
            for item in items {
                let resolved = self.resolve(item, ctx);
                self.pending.push_back(resolved);
            }
        }
        // Publish the engine's cumulative counters once the stream ends;
        // the engine aggregates internally, so a final copy is exact.
        if let Ok(registry) = ctx.services().get::<MetricsRegistry>("metrics") {
            let stats = self.bridge.engine_stats();
            registry.counter("crowd.queries").add(stats.queries);
            registry.counter("crowd.tasks").add(stats.tasks);
            registry.counter("crowd.answers").add(stats.answers);
            registry.counter("crowd.deadline_misses").add(stats.deadline_misses);
        }
        Ok(self.pending.drain(..).collect())
    }
}

/// Builds the full §3 topology over a generated scenario and returns it
/// together with the sink collecting the recognition summaries.
///
/// `window` controls the RTEC working memory/step of every region engine.
pub fn build_pipeline(
    scenario: &Scenario,
    rules: TrafficRulesConfig,
    window: WindowConfig,
) -> Result<(Topology, CollectSink), StreamsError> {
    let (topology, sink, _) = build_pipeline_inner(scenario, rules, window, None)?;
    Ok((topology, sink))
}

/// Per-source chaos counters returned by [`build_chaos_pipeline`], keyed by
/// source name.
pub type SourceChaosStats = Vec<(String, Arc<ChaosStats>)>;

/// [`build_pipeline`] with deterministic fault injection and supervision:
/// every source is wrapped in a [`ChaosSource`] (seeded per source from
/// `chaos.seed`), the RTEC processes run under `Skip` so corrupted or
/// erroring items are dropped instead of aborting the region, and the
/// crowdsourcing process dead-letters failed summaries for post-mortem
/// (read them via [`Topology::dead_letters`] before `Runtime::new`).
///
/// Also returns one [`ChaosStats`] handle per wrapped source so callers can
/// report how much chaos was actually injected.
pub fn build_chaos_pipeline(
    scenario: &Scenario,
    rules: TrafficRulesConfig,
    window: WindowConfig,
    chaos: ChaosConfig,
) -> Result<(Topology, CollectSink, SourceChaosStats), StreamsError> {
    build_pipeline_inner(scenario, rules, window, Some(chaos))
}

/// Adds `items` as a source named `name`, wrapped in a [`ChaosSource`] when
/// chaos is enabled (the per-source seed is salted so streams fault
/// independently).
fn add_source(
    topology: &mut Topology,
    name: &str,
    items: Vec<DataItem>,
    chaos: &Option<ChaosConfig>,
    salt: u64,
    stats: &mut SourceChaosStats,
) {
    let source = VecSource::new(items);
    match chaos {
        Some(cfg) => {
            let cfg = ChaosConfig { seed: cfg.seed.wrapping_add(salt), ..cfg.clone() };
            let chaotic = ChaosSource::new(source, cfg);
            stats.push((name.to_string(), chaotic.stats()));
            topology.add_source(name, chaotic);
        }
        None => {
            topology.add_source(name, source);
        }
    }
}

fn build_pipeline_inner(
    scenario: &Scenario,
    rules: TrafficRulesConfig,
    window: WindowConfig,
    chaos: Option<ChaosConfig>,
) -> Result<(Topology, CollectSink, SourceChaosStats), StreamsError> {
    let mut topology = Topology::new();
    let mut chaos_stats: SourceChaosStats = Vec::new();
    let (start, _) = scenario.window();
    let first_query = start + window.step();

    // Input handling: one bus stream, four SCATS region streams.
    let bus_items: Vec<DataItem> =
        scenario.sdes.iter().filter(|s| s.is_bus()).map(sde_to_item).collect();
    add_source(&mut topology, "bus", bus_items, &chaos, 0, &mut chaos_stats);
    for (i, region) in Region::ALL.into_iter().enumerate() {
        let items: Vec<DataItem> = scenario
            .sdes
            .iter()
            .filter(|s| !s.is_bus() && s.region() == region)
            .map(sde_to_item)
            .collect();
        add_source(
            &mut topology,
            &format!("scats-{region}"),
            items,
            &chaos,
            1 + i as u64,
            &mut chaos_stats,
        );
    }

    // Per-region queues fed by the bus splitter and the region's SCATS stream.
    for region in Region::ALL {
        topology.add_queue(&format!("sde-{region}"), 4096);
    }
    let mut splitter = topology.process("bus-split").input(Input::Stream("bus".into()));
    for region in Region::ALL {
        splitter = splitter.output(Output::Queue(format!("sde-{region}")));
    }
    // The splitter broadcasts; each region's RTEC processor ignores items
    // of other regions via a filtering pre-processor.
    splitter.done();
    for region in Region::ALL {
        topology
            .process(&format!("scats-feed-{region}"))
            .input(Input::Stream(format!("scats-{region}")))
            .output(Output::Queue(format!("sde-{region}")))
            .done();
    }

    // Event processing processes: one RTEC engine per region.
    let sink = CollectSink::shared();
    topology.add_queue("recognitions", 4096);
    for region in Region::ALL {
        let infos: Vec<IntersectionInfo> = scenario
            .scats
            .intersections()
            .iter()
            .filter(|i| i.region == region)
            .map(|i| IntersectionInfo { id: i.id as i64, lon: i.lon, lat: i.lat })
            .collect();
        let recognizer =
            TrafficRecognizer::new(rules.clone(), window, &infos, &[]).map_err(|e| {
                StreamsError::ProcessorFailed {
                    process: format!("rtec-{region}"),
                    processor: None,
                    message: e.to_string(),
                }
            })?;
        let mut builder = topology
            .process(&format!("rtec-{region}"))
            .input(Input::Queue(format!("sde-{region}")));
        if chaos.is_some() {
            // Under injected faults a corrupted SDE must cost one item, not
            // the whole region engine.
            builder = builder.fault_policy(FaultPolicy::Skip { max_consecutive: usize::MAX });
        }
        // Region filtering of the broadcast bus stream happens inside the
        // RTEC processor, which needs to observe foreign-region arrivals to
        // advance its bus watermark (see [`RtecProcessor`]).
        builder
            .processor(RtecProcessor::new(recognizer, first_query, window.step(), region))
            .output(Output::Queue("recognitions".into()))
            .done();
    }

    // Crowdsourcing processes: annotate summaries that carry an open
    // disagreement with a crowd verdict, then collect.
    let bridge = {
        let (x0, y0, x1, y1) = scenario.network.bbox();
        crate::crowdbridge::CrowdBridge::new(
            &crate::crowdbridge::CrowdBridgeConfig::default(),
            ((x0 + x1) / 2.0, (y0 + y1) / 2.0),
            scenario.config.seed,
        )
        .map_err(|e| StreamsError::ProcessorFailed {
            process: "crowdsourcing".into(),
            processor: None,
            message: e.to_string(),
        })?
    };
    let network = scenario.network.clone();
    let field = scenario.field.clone();
    let truth_of = move |lon: f64, lat: f64, t: i64| {
        network.nearest_junction(lon, lat).map(|j| field.is_congested(j, t)).unwrap_or(false)
    };
    let mut builder = topology.process("crowdsourcing").input(Input::Queue("recognitions".into()));
    if chaos.is_some() {
        // Failed summaries are preserved for post-mortem instead of
        // aborting the run.
        builder = builder.dead_letter();
    }
    builder
        .processor(
            CrowdProcessor::new(bridge, truth_of)
                .with_regions(Region::ALL.into_iter().map(|r| r.to_string())),
        )
        .output(Output::Sink(Box::new(sink.clone())))
        .done();

    Ok((topology, sink, chaos_stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use insight_datagen::scenario::ScenarioConfig;
    use insight_streams::runtime::Runtime;

    #[test]
    fn pipeline_runs_end_to_end() {
        let scenario = Scenario::generate(ScenarioConfig::small(1200, 77)).unwrap();
        let window = WindowConfig::new(600, 300).unwrap();
        let (topology, sink) =
            build_pipeline(&scenario, TrafficRulesConfig::default(), window).unwrap();
        Runtime::new(topology).run().unwrap();
        let items = sink.items();
        assert!(!items.is_empty(), "recognition summaries must be produced");
        for item in &items {
            assert_eq!(item.get_str("kind"), Some("recognition"));
            assert!(item.get_i64("query_time").is_some());
        }
        // Every region with sensors reports at least one summary (buses move
        // through regions, so even sensor-less regions may report).
        let with_sdes: Vec<&DataItem> =
            items.iter().filter(|i| i.get_i64("sde_count").unwrap_or(0) > 0).collect();
        assert!(!with_sdes.is_empty(), "some window contains SDEs");
    }

    #[test]
    fn pipeline_metrics_capture_stages_queues_and_rtec_timings() {
        let scenario = Scenario::generate(ScenarioConfig::small(1200, 77)).unwrap();
        let window = WindowConfig::new(600, 300).unwrap();
        let (topology, sink) =
            build_pipeline(&scenario, TrafficRulesConfig::default(), window).unwrap();
        let runtime = Runtime::new(topology);
        let metrics = runtime.metrics();
        runtime.run().unwrap();
        let snap = metrics.snapshot();

        // Per-stage item counts are non-zero where data flowed.
        let split = snap.stages.get("bus-split").expect("stage registered");
        assert!(split.items_in > 0, "bus SDEs entered the splitter");
        assert!(split.items_out >= split.items_in, "broadcast fans out");

        // Queue throughput balances and the high-water mark moved.
        let recs = snap.queues.get("recognitions").expect("queue registered");
        assert!(recs.sent > 0);
        assert_eq!(recs.sent, recs.received, "queue fully drained");
        assert_eq!(recs.depth, 0);
        assert!(recs.depth_high_water >= 1);

        // RTEC per-window latencies were recorded via the metrics service.
        let rtec_windows: u64 = snap
            .histograms
            .iter()
            .filter(|(name, _)| name.starts_with("rtec.") && name.ends_with(".window_ns"))
            .map(|(_, h)| h.count)
            .sum();
        assert!(rtec_windows > 0, "RTEC window timings recorded");

        // Incremental-evaluation effort counters were recorded per region.
        let strata: u64 = snap
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("rtec.") && name.ends_with(".strata_evaluated"))
            .map(|(_, v)| *v)
            .sum();
        assert!(strata > 0, "windows with fresh SDEs re-evaluate strata");
        assert!(
            snap.counters
                .keys()
                .any(|name| name.starts_with("rtec.") && name.ends_with(".groundings_recomputed")),
            "grounding-recompute counters registered"
        );

        // Every summary carries its own recognition latency.
        for item in sink.items() {
            assert!(item.get_i64("recognition_ns").unwrap_or(-1) >= 0);
        }
    }

    #[test]
    fn crowd_processor_annotates_disagreement_summaries() {
        let mut cfg = ScenarioConfig::small(2400, 91);
        cfg.fleet.faulty_fraction = 0.5;
        cfg.fleet.n_buses = 40;
        let scenario = Scenario::generate(cfg).unwrap();
        let window = WindowConfig::new(900, 450).unwrap();
        // Rule-set (4) lets disagreements surface as sourceDisagreement CEs.
        let rules =
            TrafficRulesConfig::self_adaptive(insight_traffic::NoisyVariant::CrowdValidated);
        let (topology, sink) = build_pipeline(&scenario, rules, window).unwrap();
        Runtime::new(topology).run().unwrap();
        let items = sink.items();
        assert!(!items.is_empty());
        // Whenever a summary carries a disagreement location, the crowd
        // stage must have annotated it.
        let mut annotated = 0;
        for item in &items {
            if item.contains("disagreement_lon") {
                assert!(item.get_bool("crowd_verdict_congested").is_some());
                assert!(item.get_f64("crowd_confidence").unwrap() > 0.0);
                annotated += 1;
            }
        }
        // This heavily faulty scenario reliably produces at least one.
        assert!(annotated > 0, "no disagreement summary produced");
    }

    #[test]
    fn chaos_pipeline_survives_injected_corruption() {
        let scenario = Scenario::generate(ScenarioConfig::small(1200, 77)).unwrap();
        let window = WindowConfig::new(600, 300).unwrap();
        let chaos = ChaosConfig {
            corrupt_rate: 0.05,
            drop_rate: 0.02,
            delay_rate: 0.02,
            ..ChaosConfig::new(9)
        };
        let (topology, sink, stats) =
            build_chaos_pipeline(&scenario, TrafficRulesConfig::default(), window, chaos).unwrap();
        let dead_letters = topology.dead_letters();
        let runtime = Runtime::new(topology);
        let metrics = runtime.metrics();
        runtime.run().expect("supervised run completes despite injected faults");

        assert!(!sink.items().is_empty(), "recognition summaries still produced");
        let corrupted: u64 = stats.iter().map(|(_, s)| s.corrupted.get()).sum();
        assert!(corrupted > 0, "the harness actually injected corruption");
        // Corrupted SDEs are counted, not fatal; the run aborts nowhere.
        let snap = metrics.snapshot();
        let malformed: u64 = snap
            .counters
            .iter()
            .filter(|(name, _)| name.ends_with(".malformed_sdes"))
            .map(|(_, v)| *v)
            .sum();
        assert!(malformed > 0, "RTEC skipped the corrupted SDEs");
        // Nothing in this run errors inside a processor, so the dead-letter
        // queue stays empty even though the crowd stage is armed with it.
        assert!(dead_letters.is_empty());
    }

    #[test]
    fn chaos_pipeline_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let scenario = Scenario::generate(ScenarioConfig::small(900, 42)).unwrap();
            let window = WindowConfig::new(300, 300).unwrap();
            let chaos = ChaosConfig { corrupt_rate: 0.1, drop_rate: 0.1, ..ChaosConfig::new(seed) };
            let (topology, sink, stats) =
                build_chaos_pipeline(&scenario, TrafficRulesConfig::static_mode(), window, chaos)
                    .unwrap();
            Runtime::new(topology).run().unwrap();
            let injected: (u64, u64) = (
                stats.iter().map(|(_, s)| s.dropped.get()).sum(),
                stats.iter().map(|(_, s)| s.corrupted.get()).sum(),
            );
            (sink.len(), injected)
        };
        assert_eq!(run(5), run(5), "same seed, same chaos, same output");
    }

    #[test]
    fn pipeline_summaries_cover_expected_query_times() {
        let scenario = Scenario::generate(ScenarioConfig::small(900, 78)).unwrap();
        let window = WindowConfig::new(300, 300).unwrap();
        let (topology, sink) =
            build_pipeline(&scenario, TrafficRulesConfig::static_mode(), window).unwrap();
        Runtime::new(topology).run().unwrap();
        let (start, _) = scenario.window();
        let times: Vec<i64> = sink.items().iter().filter_map(|i| i.get_i64("query_time")).collect();
        assert!(times.iter().all(|t| (t - start) % 300 == 0), "query times on the step grid");
    }
}
