//! The Streams topology of §3.
//!
//! Reproduces the paper's stream processing component layout:
//!
//! * **input handling processes** — all bus SDEs form one stream; SCATS SDEs
//!   are referenced by four streams, one per region of Dublin city; the feed
//!   processes forward every SDE into one `sde` queue;
//! * **event processing processes** — the CE definitions are wrapped by a
//!   processor embedding the RTEC engine in the Streams environment; the
//!   RTEC stage runs as keyed shard replicas partitioned by `region`
//!   ([`insight_streams::partition`]), realising the paper's one-engine-per-
//!   region decomposition as data parallelism; derived CEs are emitted to a
//!   queue;
//! * **crowdsourcing processes** — disagreement summaries pass a sharded
//!   *task* stage (worker selection + simulated answers, partitioned by
//!   `(query_time, region)`) and a single *merge* stage feeding the online
//!   EM in canonical order, then reach the collecting sink.
//!
//! The RTEC processor buffers SDE items, and whenever the arrival time
//! crosses the next query time it runs recognition and emits one summary
//! item per window (CE counts + the disagreement locations to be
//! crowdsourced).
//!
//! Shard counts are controlled by [`PipelineOptions`]; the recognition
//! output is identical (in the canonical form of
//! [`crate::replay::canonical_recognitions`]) for every shard count,
//! including 1.

use crate::items::item_to_sde;
use insight_datagen::regions::Region;
use insight_datagen::scenario::Scenario;
use insight_rtec::window::WindowConfig;
use insight_streams::chaos::{ChaosConfig, ChaosSource, ChaosStats, KillAt, KillSwitch};
use insight_streams::checkpoint::{Checkpointable, StateBlob};
use insight_streams::error::StreamsError;
use insight_streams::fault::FaultPolicy;
use insight_streams::item::DataItem;
use insight_streams::metrics::{Counter, Histogram, MetricsRegistry};
use insight_streams::processor::{Context, Processor};
use insight_streams::sink::CollectSink;
use insight_streams::source::VecSource;
use insight_streams::topology::{Input, Output, Topology};
use insight_traffic::recognizer::{IntersectionInfo, TrafficRecognizer};
use insight_traffic::TrafficRulesConfig;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Embeds a [`TrafficRecognizer`] as a Streams processor ("we integrated
/// RTEC by a dedicated processor in Streams", §3).
///
/// # Schedule-independence
///
/// The items a region worker sees interleave two producers — the bus feed
/// and the region's SCATS feed — in scheduler-determined order (the `sde`
/// queue merges the feeds; the partitioner and merge of the sharded stage
/// preserve each producer's FIFO order end to end). To make recognition
/// output a pure function of the two *per-producer* subsequences rather
/// than of their merge, query `Qi` fires only once the **arrival watermark
/// of each input class** (bus, SCATS) has strictly passed `Qi`: each
/// producer emits in nondecreasing arrival order, so a watermark beyond
/// `Qi` proves every SDE with `arrival ≤ Qi` of that class has been
/// ingested. Queries whose gate never opens in-stream (e.g. a region
/// without SCATS sensors, or whose bus watermark never passes the last grid
/// point) are flushed at end-of-stream, where the knowledge is complete by
/// definition — so the *set* of fired queries depends only on the region's
/// data, never on the schedule or the shard count. The deterministic replay
/// scheduler ([`insight_streams::replay::ReplayRuntime`]) relies on exactly
/// this property to assert byte-identical recognitions across
/// interleavings.
pub struct RtecProcessor {
    recognizer: TrafficRecognizer,
    next_query: i64,
    step: i64,
    last_query: i64,
    region: Region,
    /// Highest arrival time seen on the bus input class (`i64::MIN` before
    /// the first bus SDE).
    bus_watermark: i64,
    /// Highest arrival time seen on the SCATS input class.
    scats_watermark: i64,
    /// Highest arrival time seen on any input item, bounding the queries
    /// flushed at end-of-stream.
    max_arrival: i64,
    pending: VecDeque<DataItem>,
    /// Per-window RTEC query latency, fetched lazily from the runtime's
    /// metrics service (absent when the processor runs outside a runtime).
    window_ns: Option<Arc<Histogram>>,
    /// Items that failed SDE schema validation and were skipped.
    malformed: Option<Arc<Counter>>,
    /// Incremental-evaluation effort counters, summed over queries.
    eval_counters: Option<EvalCounters>,
}

/// Per-region evaluation-effort counters: strata actually re-evaluated,
/// fluent groundings recomputed, window-cycle heap allocations and store
/// refill/re-index time (ns). Clean cache hits add nothing, so these expose
/// how much work delta-awareness saved; the allocation counter reads 0 per
/// window once the slot-indexed data plane's retained state has sized to
/// the working set.
#[derive(Clone)]
struct EvalCounters {
    strata: Arc<Counter>,
    groundings: Arc<Counter>,
    allocations: Arc<Counter>,
    rebuild_ns: Arc<Counter>,
}

impl RtecProcessor {
    /// Wraps a recogniser; queries run at `first_query, first_query + step, …`.
    pub fn new(
        recognizer: TrafficRecognizer,
        first_query: i64,
        step: i64,
        region: Region,
    ) -> RtecProcessor {
        RtecProcessor {
            recognizer,
            next_query: first_query,
            step,
            last_query: i64::MIN,
            region,
            bus_watermark: i64::MIN,
            scats_watermark: i64::MIN,
            max_arrival: i64::MIN,
            pending: VecDeque::new(),
            window_ns: None,
            malformed: None,
            eval_counters: None,
        }
    }

    fn window_histogram(&mut self, ctx: &Context) -> Option<Arc<Histogram>> {
        if self.window_ns.is_none() {
            if let Ok(registry) = ctx.services().get::<MetricsRegistry>("metrics") {
                self.window_ns =
                    Some(registry.histogram(&format!("rtec.{}.window_ns", self.region)));
            }
        }
        self.window_ns.clone()
    }

    fn malformed_counter(&mut self, ctx: &Context) -> Option<Arc<Counter>> {
        if self.malformed.is_none() {
            if let Ok(registry) = ctx.services().get::<MetricsRegistry>("metrics") {
                self.malformed =
                    Some(registry.counter(&format!("rtec.{}.malformed_sdes", self.region)));
            }
        }
        self.malformed.clone()
    }

    fn evaluation_counters(&mut self, ctx: &Context) -> Option<EvalCounters> {
        if self.eval_counters.is_none() {
            if let Ok(registry) = ctx.services().get::<MetricsRegistry>("metrics") {
                self.eval_counters = Some(EvalCounters {
                    strata: registry.counter(&format!("rtec.{}.strata_evaluated", self.region)),
                    groundings: registry
                        .counter(&format!("rtec.{}.groundings_recomputed", self.region)),
                    allocations: registry
                        .counter(&format!("rtec.{}.window_allocations", self.region)),
                    rebuild_ns: registry.counter(&format!("rtec.{}.cache_rebuild_ns", self.region)),
                });
            }
        }
        self.eval_counters.clone()
    }

    fn run_query(&mut self, q: i64, ctx: &Context) -> Result<(), StreamsError> {
        let result = self.recognizer.query(q).map_err(|e| StreamsError::ProcessorFailed {
            process: format!("rtec-{}", self.region),
            processor: None,
            message: e.to_string(),
        })?;
        let query_ns = result.raw.timing.total.as_nanos().min(i64::MAX as u128) as i64;
        if let Some(hist) = self.window_histogram(ctx) {
            hist.record_ns(query_ns as u64);
        }
        if let Some(c) = self.evaluation_counters(ctx) {
            c.strata.add(result.raw.timing.strata_evaluated as u64);
            c.groundings.add(result.raw.timing.groundings_recomputed as u64);
            c.allocations.add(result.raw.timing.window_allocations);
            c.rebuild_ns
                .add(result.raw.timing.cache_rebuild.as_nanos().min(u64::MAX as u128) as u64);
        }
        let mut item = DataItem::new()
            .with("kind", "recognition")
            .with("region", self.region.to_string())
            .with("query_time", q)
            .with("recognition_ns", query_ns)
            .with("sde_count", result.sde_count() as i64)
            .with("congested_intersections", result.congested_intersections().len() as i64)
            .with("bus_congestions", result.bus_congestions().len() as i64)
            .with("noisy_buses", result.noisy_buses().len() as i64)
            .with("delay_increases", result.delay_increases().len() as i64);
        let open = result.open_disagreements();
        item.set("open_disagreements", open.len() as i64);
        if let Some(&(lon, lat)) = open.first() {
            item.set("disagreement_lon", lon);
            item.set("disagreement_lat", lat);
        }
        self.pending.push_back(item);
        self.last_query = q;
        Ok(())
    }
}

impl Processor for RtecProcessor {
    fn process(
        &mut self,
        item: DataItem,
        ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        match item_to_sde(&item) {
            Some(sde) => {
                // Watermarks advance on *every* well-formed SDE, including
                // foreign-region bus SDEs that are filtered out below — they
                // still prove how far their producer has progressed.
                if sde.is_bus() {
                    self.bus_watermark = self.bus_watermark.max(sde.arrival);
                } else {
                    self.scats_watermark = self.scats_watermark.max(sde.arrival);
                }
                self.max_arrival = self.max_arrival.max(sde.arrival);
                if sde.region() == self.region {
                    self.recognizer.ingest(&sde).map_err(|e| StreamsError::ProcessorFailed {
                        process: format!("rtec-{}", self.region),
                        processor: None,
                        message: e.to_string(),
                    })?;
                }
                // Fire every query both classes have strictly passed; SDEs
                // already ingested with later arrivals are invisible to
                // those queries, so ingestion order never leaks into the
                // result.
                while self.bus_watermark.min(self.scats_watermark) > self.next_query {
                    let q = self.next_query;
                    self.run_query(q, ctx)?;
                    self.next_query += self.step;
                }
            }
            // Graceful degradation: a malformed SDE (schema violation,
            // corrupted field) is skipped and counted rather than failing
            // the recognition stage. It carries no trustworthy arrival time,
            // so it does not advance the watermarks either.
            None => {
                if let Some(counter) = self.malformed_counter(ctx) {
                    counter.inc();
                }
            }
        }
        Ok(self.pending.pop_front())
    }

    fn finish(&mut self, ctx: &mut Context) -> Result<Vec<DataItem>, StreamsError> {
        // End-of-stream: the knowledge is complete, so every query the
        // watermark gate still held back fires now, up to the last grid
        // point the stream reached...
        while self.next_query <= self.max_arrival {
            let q = self.next_query;
            self.run_query(q, ctx)?;
            self.next_query += self.step;
        }
        // ...plus one final query covering the tail of the stream.
        let q = self.next_query;
        if q > self.last_query {
            self.run_query(q, ctx)?;
        }
        Ok(self.pending.drain(..).collect())
    }

    fn as_checkpointable(&mut self) -> Option<&mut dyn Checkpointable> {
        Some(self)
    }
}

/// Serialises a queue of items one JSON object per line (the reverse of
/// [`items_from_lines`]); items round-trip exactly, floats included, via the
/// shortest-round-trip encoding of [`insight_streams::json`].
fn items_to_lines(items: &VecDeque<DataItem>) -> String {
    items.iter().map(DataItem::to_json).collect::<Vec<_>>().join("\n")
}

fn items_from_lines(lines: &str) -> Result<VecDeque<DataItem>, StreamsError> {
    lines.lines().map(DataItem::from_json).collect()
}

fn corrupt(detail: String) -> StreamsError {
    StreamsError::Io { detail: format!("corrupt checkpoint: {detail}") }
}

/// The worker's semantic state is the engine snapshot plus the query grid
/// cursor, the per-class arrival watermarks and the queue of summaries not
/// yet emitted; the configuration (`step`, `region`) is rebuilt by the
/// processor factory and only recorded to detect a blob restored into the
/// wrong worker.
impl Checkpointable for RtecProcessor {
    fn snapshot(&mut self) -> StateBlob {
        let mut blob = StateBlob::new();
        blob.set("region", self.region.name());
        blob.set("engine", self.recognizer.snapshot_state());
        blob.set("next_query", self.next_query);
        blob.set("last_query", self.last_query);
        blob.set("bus_watermark", self.bus_watermark);
        blob.set("scats_watermark", self.scats_watermark);
        blob.set("max_arrival", self.max_arrival);
        blob.set("pending", items_to_lines(&self.pending));
        blob
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StreamsError> {
        let region = blob.require_str("region")?;
        if region != self.region.name() {
            return Err(corrupt(format!(
                "snapshot is for region `{region}`, worker serves `{}`",
                self.region
            )));
        }
        self.recognizer
            .restore_state(blob.require_str("engine")?)
            .map_err(|e| corrupt(e.to_string()))?;
        self.next_query = blob.require_i64("next_query")?;
        self.last_query = blob.require_i64("last_query")?;
        self.bus_watermark = blob.require_i64("bus_watermark")?;
        self.scats_watermark = blob.require_i64("scats_watermark")?;
        self.max_arrival = blob.require_i64("max_arrival")?;
        self.pending = items_from_lines(blob.require_str("pending")?)?;
        Ok(())
    }
}

/// One replica of the sharded RTEC stage: routes each SDE to a per-region
/// [`RtecProcessor`] worker, created lazily on the region's first item.
///
/// The stage partitions by the `region` attribute (with the four region
/// names declared as partition hints, so each replica hosts a disjoint
/// subset of the four region engines for every replica count). An item
/// whose routing attribute disagrees with the *semantic* region recomputed
/// from its coordinates (what [`crate::items::sde_to_item`] derived the
/// attribute from) was corrupted in flight: it is counted as malformed and
/// dropped rather than processed, because which shard a corrupted key
/// routes to is an accident of the hash — honouring it would split one
/// region's stream across two replicas' engines and make the summary set
/// depend on the replica count.
///
/// Because every region's items carry the same partition key, the region's
/// entire stream — and therefore its engine, watermarks, and query grid —
/// lives behind a single replica's FIFO input for any replica count, which
/// is what makes the recognition output shard-count-invariant.
pub struct MultiRegionRtecProcessor {
    rules: Arc<TrafficRulesConfig>,
    window: WindowConfig,
    /// Intersection metadata per region, shared across replicas.
    infos: Arc<HashMap<Region, Vec<IntersectionInfo>>>,
    first_query: i64,
    /// Lazily created per-region workers, in deterministic region order for
    /// the end-of-stream flush.
    states: BTreeMap<Region, RtecProcessor>,
    /// Items that failed SDE schema validation, counted stage-wide (a
    /// malformed item has no trustworthy region).
    malformed: Option<Arc<Counter>>,
    /// Shared compiled execution plan; `Some` switches every region worker
    /// to compiled evaluation.
    plan: Option<Arc<insight_rtec::compile::CompiledPlan>>,
}

impl MultiRegionRtecProcessor {
    /// A replica serving queries at `first_query, first_query + step, …` per
    /// region (step taken from `window`).
    pub fn new(
        rules: Arc<TrafficRulesConfig>,
        window: WindowConfig,
        infos: Arc<HashMap<Region, Vec<IntersectionInfo>>>,
        first_query: i64,
    ) -> MultiRegionRtecProcessor {
        MultiRegionRtecProcessor {
            rules,
            window,
            infos,
            first_query,
            states: BTreeMap::new(),
            malformed: None,
            plan: None,
        }
    }

    /// Installs a pre-compiled execution plan: every lazily created region
    /// worker switches its engine to compiled evaluation, sharing this one
    /// `Arc` (the plan holds no window state, so replicas and regions can
    /// all read it concurrently).
    pub fn with_compiled_plan(
        mut self,
        plan: Option<Arc<insight_rtec::compile::CompiledPlan>>,
    ) -> MultiRegionRtecProcessor {
        self.plan = plan;
        self
    }

    fn state_for(&mut self, region: Region) -> Result<&mut RtecProcessor, StreamsError> {
        if !self.states.contains_key(&region) {
            let infos = self.infos.get(&region).map(Vec::as_slice).unwrap_or(&[]);
            let mut recognizer =
                TrafficRecognizer::new((*self.rules).clone(), self.window, infos, &[]).map_err(
                    |e| StreamsError::ProcessorFailed {
                        process: format!("rtec[{region}]"),
                        processor: None,
                        message: e.to_string(),
                    },
                )?;
            if let Some(plan) = &self.plan {
                recognizer.set_compiled_plan(Arc::clone(plan)).map_err(|e| {
                    StreamsError::ProcessorFailed {
                        process: format!("rtec[{region}]"),
                        processor: None,
                        message: format!("installing shared compiled plan: {e}"),
                    }
                })?;
            }
            self.states.insert(
                region,
                RtecProcessor::new(recognizer, self.first_query, self.window.step(), region),
            );
        }
        Ok(self.states.get_mut(&region).expect("just inserted"))
    }

    fn malformed_counter(&mut self, ctx: &Context) -> Option<Arc<Counter>> {
        if self.malformed.is_none() {
            if let Ok(registry) = ctx.services().get::<MetricsRegistry>("metrics") {
                self.malformed = Some(registry.counter("rtec.malformed_sdes"));
            }
        }
        self.malformed.clone()
    }
}

impl Processor for MultiRegionRtecProcessor {
    fn process(
        &mut self,
        item: DataItem,
        ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        // The `region` routing attribute must agree with the semantic
        // region derived from the coordinates. A mismatch means the item
        // was corrupted in flight, and which shard it then lands on is an
        // accident of the routing function — honouring it would let the
        // same region's stream split across two replicas' engines, making
        // the summary set depend on the replica count. Rejecting it here is
        // a per-item decision, identical for every shard shape.
        let valid =
            item_to_sde(&item).filter(|sde| item.get_str("region") == Some(sde.region().name()));
        match valid {
            Some(sde) => self.state_for(sde.region())?.process(item, ctx),
            None => {
                if let Some(counter) = self.malformed_counter(ctx) {
                    counter.inc();
                }
                Ok(None)
            }
        }
    }

    fn finish(&mut self, ctx: &mut Context) -> Result<Vec<DataItem>, StreamsError> {
        let mut out = Vec::new();
        for state in self.states.values_mut() {
            out.extend(state.finish(ctx)?);
        }
        Ok(out)
    }

    fn as_checkpointable(&mut self) -> Option<&mut dyn Checkpointable> {
        Some(self)
    }
}

/// One sub-snapshot per lazily created region worker, folded into the
/// parent blob under `region.{name}.{field}` keys (field-by-field rather
/// than as a nested JSON string — snapshots run on the barrier hot path,
/// and re-escaping a serialised engine would double the cost); restore
/// rebuilds each worker through the normal lazy path and then overlays its
/// snapshot, so a region the replica had not seen yet simply has no entry.
impl Checkpointable for MultiRegionRtecProcessor {
    fn snapshot(&mut self) -> StateBlob {
        let mut blob = StateBlob::new();
        let regions: Vec<&str> = self.states.keys().map(|r| r.name()).collect();
        blob.set("regions", regions.join(","));
        for (region, state) in &mut self.states {
            for (field, value) in state.snapshot().into_fields() {
                blob.set(&format!("region.{region}.{field}"), value);
            }
        }
        blob
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StreamsError> {
        let named = blob.require_str("regions")?.to_string();
        self.states.clear();
        for name in named.split(',').filter(|n| !n.is_empty()) {
            let region = Region::ALL
                .into_iter()
                .find(|r| r.name() == name)
                .ok_or_else(|| corrupt(format!("unknown region `{name}`")))?;
            let prefix = format!("region.{name}.");
            let mut sub = StateBlob::new();
            for (key, value) in blob.iter() {
                if let Some(field) = key.strip_prefix(&prefix) {
                    sub.set(field, value.clone());
                }
            }
            if sub.is_empty() {
                return Err(corrupt(format!("no fields for region `{name}`")));
            }
            self.state_for(region)?.restore(&sub)?;
        }
        Ok(())
    }
}

/// Embeds the crowdsourcing component as a Streams processor: recognition
/// summaries carrying an open source disagreement trigger a crowd query
/// (the §3 "crowdsourcing processes" — query generation + response
/// merging); the summary is annotated with the crowd verdict and forwarded.
///
/// The *feedback* edge of Figure 1 (crowd events re-entering RTEC) cannot
/// be a queue in a terminating dataflow graph — it would form a cycle; the
/// closed loop lives in [`crate::system::InsightSystem`]. `truth_of`
/// supplies the simulated participants' ground truth, as in the paper's
/// own crowdsourcing evaluation.
///
/// # Schedule-independence
///
/// [`crate::crowdbridge::CrowdBridge::resolve`] is stateful — participant
/// selection and simulated answers depend on the *order* of resolve calls —
/// while the `recognitions` queue merges one producer per region in
/// scheduler-determined order. To keep crowd verdicts a pure function of
/// the region streams, summaries carrying a disagreement are buffered and
/// resolved in canonical `(query_time, region)` order, releasing an entry
/// only once every declared region's **query-time watermark** has reached
/// its query time (each region emits summaries in strictly increasing query
/// time, so the watermark proves no earlier-keyed summary can still
/// arrive). Whatever the gate still holds at end-of-stream is resolved, in
/// the same canonical order, in `finish`. Summaries without a disagreement
/// never touch the bridge and pass through immediately.
pub struct CrowdProcessor<F> {
    bridge: crate::crowdbridge::CrowdBridge,
    truth_of: F,
    /// The regions expected to produce summaries; the resolve gate waits
    /// for all of them. Empty ⇒ every resolution happens at end-of-stream.
    regions: Vec<String>,
    /// Per-region highest `query_time` seen so far.
    watermarks: HashMap<String, i64>,
    /// Disagreement summaries awaiting ordered resolution, keyed by
    /// `(query_time, region)`.
    held: BTreeMap<(i64, String), Vec<DataItem>>,
    /// Items ready to leave the stage (one per `process` call).
    pending: VecDeque<DataItem>,
    /// Latency of each `resolve` call; lazily fetched from the metrics service.
    resolve_ns: Option<Arc<Histogram>>,
    resolutions: Option<Arc<Counter>>,
    fallbacks: Option<Arc<Counter>>,
}

impl<F> CrowdProcessor<F>
where
    F: Fn(f64, f64, i64) -> bool + Send,
{
    /// Wraps a crowd bridge and a ground-truth oracle. Without
    /// [`CrowdProcessor::with_regions`] every disagreement resolves at
    /// end-of-stream.
    pub fn new(bridge: crate::crowdbridge::CrowdBridge, truth_of: F) -> CrowdProcessor<F> {
        CrowdProcessor {
            bridge,
            truth_of,
            regions: Vec::new(),
            watermarks: HashMap::new(),
            held: BTreeMap::new(),
            pending: VecDeque::new(),
            resolve_ns: None,
            resolutions: None,
            fallbacks: None,
        }
    }

    /// Declares the upstream regions whose watermarks gate in-stream
    /// resolution.
    pub fn with_regions<I, S>(mut self, regions: I) -> CrowdProcessor<F>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.regions = regions.into_iter().map(Into::into).collect();
        self
    }

    /// The lowest per-region watermark — summaries keyed at or below it are
    /// complete. `None` while some declared region has not reported yet.
    fn safe_frontier(&self) -> Option<i64> {
        if self.regions.is_empty() {
            return None;
        }
        self.regions
            .iter()
            .map(|r| self.watermarks.get(r).copied())
            .try_fold(i64::MAX, |acc, wm| wm.map(|w| acc.min(w)))
    }

    /// Resolves and releases every held summary whose key the watermark
    /// frontier has passed.
    fn release_ready(&mut self, ctx: &Context) {
        let Some(frontier) = self.safe_frontier() else { return };
        while let Some(entry) = self.held.first_entry() {
            if entry.key().0 > frontier {
                break;
            }
            for item in entry.remove() {
                let resolved = self.resolve(item, ctx);
                self.pending.push_back(resolved);
            }
        }
    }

    fn instruments(&mut self, ctx: &Context) -> Option<(Arc<Histogram>, Arc<Counter>)> {
        if self.resolve_ns.is_none() {
            if let Ok(registry) = ctx.services().get::<MetricsRegistry>("metrics") {
                self.resolve_ns = Some(registry.histogram("crowd.resolve_ns"));
                self.resolutions = Some(registry.counter("crowd.resolutions"));
                self.fallbacks = Some(registry.counter("crowd.fallbacks"));
            }
        }
        self.resolve_ns.clone().zip(self.resolutions.clone())
    }

    /// One crowd resolution, annotating the summary with the verdict.
    fn resolve(&mut self, mut item: DataItem, ctx: &Context) -> DataItem {
        let (Some(lon), Some(lat), Some(q)) = (
            item.get_f64("disagreement_lon"),
            item.get_f64("disagreement_lat"),
            item.get_i64("query_time"),
        ) else {
            return item;
        };
        let truth = (self.truth_of)(lon, lat, q);
        let resolve_started = Instant::now();
        match self.bridge.resolve(lon, lat, truth, None) {
            Ok(resolution) => {
                if let Some((hist, count)) = self.instruments(ctx) {
                    hist.record(resolve_started.elapsed());
                    count.inc();
                }
                item.set("crowd_verdict_congested", resolution.congested);
                item.set("crowd_confidence", resolution.confidence);
                item.set("crowd_answers", resolution.answers as i64);
            }
            // Graceful degradation: when the crowd engine cannot
            // resolve the disagreement (no eligible workers, engine
            // error), fall back to the sensor-only summary instead of
            // failing the stage — the paper's pipeline keeps reporting
            // from SCATS/bus data alone.
            Err(_) => {
                self.instruments(ctx);
                if let Some(fallbacks) = &self.fallbacks {
                    fallbacks.inc();
                }
                item.set("crowd_fallback", true);
            }
        }
        item
    }
}

impl<F> Processor for CrowdProcessor<F>
where
    F: Fn(f64, f64, i64) -> bool + Send,
{
    fn process(
        &mut self,
        item: DataItem,
        ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        match (item.get_str("region").map(str::to_string), item.get_i64("query_time")) {
            (Some(region), Some(q)) => {
                let wm = self.watermarks.entry(region.clone()).or_insert(i64::MIN);
                *wm = (*wm).max(q);
                if item.contains("disagreement_lon") {
                    self.held.entry((q, region)).or_default().push(item);
                } else {
                    // No disagreement: nothing touches the bridge state, so
                    // the summary can pass through unordered.
                    self.pending.push_back(item);
                }
            }
            _ => self.pending.push_back(item),
        }
        self.release_ready(ctx);
        Ok(self.pending.pop_front())
    }

    fn finish(&mut self, ctx: &mut Context) -> Result<Vec<DataItem>, StreamsError> {
        // Resolve whatever the watermark gate still holds, in the same
        // canonical (query_time, region) order the in-stream path uses.
        let held = std::mem::take(&mut self.held);
        for (_, items) in held {
            for item in items {
                let resolved = self.resolve(item, ctx);
                self.pending.push_back(resolved);
            }
        }
        // Publish the engine's cumulative counters once the stream ends;
        // the engine aggregates internally, so a final copy is exact.
        if let Ok(registry) = ctx.services().get::<MetricsRegistry>("metrics") {
            let stats = self.bridge.engine_stats();
            registry.counter("crowd.queries").add(stats.queries);
            registry.counter("crowd.tasks").add(stats.tasks);
            registry.counter("crowd.answers").add(stats.answers);
            registry.counter("crowd.deadline_misses").add(stats.deadline_misses);
        }
        Ok(self.pending.drain(..).collect())
    }
}

/// The ground-truth oracle fed to the crowd stage, shared by every task
/// replica.
pub type TruthOracle = Arc<dyn Fn(f64, f64, i64) -> bool + Send + Sync>;

/// FNV-1a over the identifying fields of a crowd task; combined with the
/// scenario seed this keys all randomness of one simulated task, so the
/// outcome is independent of which shard runs it and in which order.
fn crowd_task_seed(query_time: i64, region: &str, lon: f64, lat: f64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(&query_time.to_le_bytes());
    eat(region.as_bytes());
    eat(&lon.to_bits().to_le_bytes());
    eat(&lat.to_bits().to_le_bytes());
    h
}

/// One replica of the sharded crowd *task* stage (partitioned by
/// `(query_time, region)`): for each summary carrying an open disagreement
/// it selects workers and simulates their answers via
/// [`crate::crowdbridge::CrowdBridge::simulate_task`], attaching the raw
/// answers for the downstream EM merge. Summaries without a disagreement
/// pass through untouched.
///
/// Each replica owns a bridge built from the same configuration and seed,
/// and never advances its EM state — so worker placement and reliability
/// estimates are identical on every replica, and each task's outcome is a
/// pure function of its `(query_time, region, lon, lat)` key and the
/// scenario seed. That is what makes the stage safe to shard: the crowd
/// verdicts do not depend on the replica count or on how tasks interleave.
pub struct CrowdTaskProcessor {
    bridge: crate::crowdbridge::CrowdBridge,
    truth_of: TruthOracle,
    seed: u64,
    /// Latency of each task simulation; lazily fetched from the metrics
    /// service.
    task_ns: Option<Arc<Histogram>>,
    fallbacks: Option<Arc<Counter>>,
}

impl CrowdTaskProcessor {
    /// Wraps a (freshly built, EM-untouched) bridge and a ground-truth
    /// oracle; `seed` salts every task's RNG streams.
    pub fn new(
        bridge: crate::crowdbridge::CrowdBridge,
        truth_of: TruthOracle,
        seed: u64,
    ) -> CrowdTaskProcessor {
        CrowdTaskProcessor { bridge, truth_of, seed, task_ns: None, fallbacks: None }
    }

    fn instruments(&mut self, ctx: &Context) -> Option<Arc<Histogram>> {
        if self.task_ns.is_none() {
            if let Ok(registry) = ctx.services().get::<MetricsRegistry>("metrics") {
                self.task_ns = Some(registry.histogram("crowd.task_ns"));
                self.fallbacks = Some(registry.counter("crowd.fallbacks"));
            }
        }
        self.task_ns.clone()
    }
}

impl Processor for CrowdTaskProcessor {
    fn process(
        &mut self,
        mut item: DataItem,
        ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        let (Some(lon), Some(lat), Some(q)) = (
            item.get_f64("disagreement_lon"),
            item.get_f64("disagreement_lat"),
            item.get_i64("query_time"),
        ) else {
            return Ok(Some(item));
        };
        let region = item.get_str("region").unwrap_or("").to_string();
        let truth = (self.truth_of)(lon, lat, q);
        let task_seed = crowd_task_seed(q, &region, lon, lat) ^ self.seed;
        let started = Instant::now();
        match self.bridge.simulate_task(lon, lat, truth, task_seed) {
            Ok(task) => {
                if let Some(hist) = self.instruments(ctx) {
                    hist.record(started.elapsed());
                }
                let raw = task
                    .answers
                    .iter()
                    .map(|&(w, l)| format!("{w}:{l}"))
                    .collect::<Vec<_>>()
                    .join(";");
                item.set("crowd_answers_raw", raw);
            }
            // Graceful degradation: when the engine cannot run the task (no
            // eligible workers, engine error), the summary keeps reporting
            // from sensor data alone.
            Err(_) => {
                self.instruments(ctx);
                if let Some(fallbacks) = &self.fallbacks {
                    fallbacks.inc();
                }
                item.set("crowd_fallback", true);
            }
        }
        Ok(Some(item))
    }

    fn finish(&mut self, ctx: &mut Context) -> Result<Vec<DataItem>, StreamsError> {
        // Per-replica engine counters add up across shards under the shared
        // registry names.
        if let Ok(registry) = ctx.services().get::<MetricsRegistry>("metrics") {
            let stats = self.bridge.engine_stats();
            registry.counter("crowd.queries").add(stats.queries);
            registry.counter("crowd.tasks").add(stats.tasks);
            registry.counter("crowd.answers").add(stats.answers);
            registry.counter("crowd.deadline_misses").add(stats.deadline_misses);
        }
        Ok(Vec::new())
    }
}

/// The post-merge crowd *EM* stage: feeds each disagreement's simulated
/// answers (attached upstream by [`CrowdTaskProcessor`]) into the online EM
/// in canonical `(query_time, region)` order and annotates the summary with
/// the verdict.
///
/// # Schedule-independence
///
/// The EM state evolves with every merge, so merge order must not depend on
/// the schedule. The same watermark gate as [`CrowdProcessor`] is used:
/// summaries are buffered and released in canonical key order once every
/// declared region's query-time watermark has passed their key (each region
/// emits summaries in strictly increasing query time, and the sharded
/// stages preserve per-region FIFO order end to end), with the remainder
/// flushed — in the same canonical order — at end-of-stream.
pub struct CrowdEmProcessor {
    bridge: crate::crowdbridge::CrowdBridge,
    /// The regions expected to produce summaries; the merge gate waits for
    /// all of them. Empty ⇒ every merge happens at end-of-stream.
    regions: Vec<String>,
    /// Per-region highest `query_time` seen so far.
    watermarks: HashMap<String, i64>,
    /// Disagreement summaries awaiting ordered EM merges, keyed by
    /// `(query_time, region)`.
    held: BTreeMap<(i64, String), Vec<DataItem>>,
    /// Items ready to leave the stage (one per `process` call).
    pending: VecDeque<DataItem>,
    resolve_ns: Option<Arc<Histogram>>,
    resolutions: Option<Arc<Counter>>,
    fallbacks: Option<Arc<Counter>>,
}

impl CrowdEmProcessor {
    /// Wraps a bridge used only for its EM estimator. Without
    /// [`CrowdEmProcessor::with_regions`] every merge happens at
    /// end-of-stream.
    pub fn new(bridge: crate::crowdbridge::CrowdBridge) -> CrowdEmProcessor {
        CrowdEmProcessor {
            bridge,
            regions: Vec::new(),
            watermarks: HashMap::new(),
            held: BTreeMap::new(),
            pending: VecDeque::new(),
            resolve_ns: None,
            resolutions: None,
            fallbacks: None,
        }
    }

    /// Declares the upstream regions whose watermarks gate in-stream merges.
    pub fn with_regions<I, S>(mut self, regions: I) -> CrowdEmProcessor
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.regions = regions.into_iter().map(Into::into).collect();
        self
    }

    /// The lowest per-region watermark — summaries keyed at or below it are
    /// complete. `None` while some declared region has not reported yet.
    fn safe_frontier(&self) -> Option<i64> {
        if self.regions.is_empty() {
            return None;
        }
        self.regions
            .iter()
            .map(|r| self.watermarks.get(r).copied())
            .try_fold(i64::MAX, |acc, wm| wm.map(|w| acc.min(w)))
    }

    /// Merges and releases every held summary whose key the watermark
    /// frontier has passed.
    fn release_ready(&mut self, ctx: &Context) {
        let Some(frontier) = self.safe_frontier() else { return };
        while let Some(entry) = self.held.first_entry() {
            if entry.key().0 > frontier {
                break;
            }
            for item in entry.remove() {
                let merged = self.merge(item, ctx);
                self.pending.push_back(merged);
            }
        }
    }

    fn instruments(&mut self, ctx: &Context) -> Option<(Arc<Histogram>, Arc<Counter>)> {
        if self.resolve_ns.is_none() {
            if let Ok(registry) = ctx.services().get::<MetricsRegistry>("metrics") {
                self.resolve_ns = Some(registry.histogram("crowd.resolve_ns"));
                self.resolutions = Some(registry.counter("crowd.resolutions"));
                self.fallbacks = Some(registry.counter("crowd.fallbacks"));
            }
        }
        self.resolve_ns.clone().zip(self.resolutions.clone())
    }

    /// One EM merge, annotating the summary with the verdict. Summaries the
    /// task stage already degraded (no `crowd_answers_raw`) pass through.
    fn merge(&mut self, mut item: DataItem, ctx: &Context) -> DataItem {
        let Some(raw) = item.get_str("crowd_answers_raw").map(str::to_string) else {
            return item;
        };
        item.remove("crowd_answers_raw");
        let answers: Vec<(usize, usize)> = raw
            .split(';')
            .filter_map(|pair| {
                let (w, l) = pair.split_once(':')?;
                Some((w.parse().ok()?, l.parse().ok()?))
            })
            .collect();
        let started = Instant::now();
        match self.bridge.merge_task(&answers, None) {
            Ok(resolution) => {
                if let Some((hist, count)) = self.instruments(ctx) {
                    hist.record(started.elapsed());
                    count.inc();
                }
                item.set("crowd_verdict_congested", resolution.congested);
                item.set("crowd_confidence", resolution.confidence);
                item.set("crowd_answers", resolution.answers as i64);
            }
            Err(_) => {
                self.instruments(ctx);
                if let Some(fallbacks) = &self.fallbacks {
                    fallbacks.inc();
                }
                item.set("crowd_fallback", true);
            }
        }
        item
    }
}

impl Processor for CrowdEmProcessor {
    fn process(
        &mut self,
        item: DataItem,
        ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        match (item.get_str("region").map(str::to_string), item.get_i64("query_time")) {
            (Some(region), Some(q)) => {
                let wm = self.watermarks.entry(region.clone()).or_insert(i64::MIN);
                *wm = (*wm).max(q);
                if item.contains("disagreement_lon") {
                    self.held.entry((q, region)).or_default().push(item);
                } else {
                    // No disagreement: nothing touches the EM state, so the
                    // summary can pass through unordered.
                    self.pending.push_back(item);
                }
            }
            _ => self.pending.push_back(item),
        }
        self.release_ready(ctx);
        Ok(self.pending.pop_front())
    }

    fn finish(&mut self, ctx: &mut Context) -> Result<Vec<DataItem>, StreamsError> {
        // Merge whatever the watermark gate still holds, in the same
        // canonical (query_time, region) order the in-stream path uses.
        let held = std::mem::take(&mut self.held);
        for (_, items) in held {
            for item in items {
                let merged = self.merge(item, ctx);
                self.pending.push_back(merged);
            }
        }
        Ok(self.pending.drain(..).collect())
    }

    fn as_checkpointable(&mut self) -> Option<&mut dyn Checkpointable> {
        Some(self)
    }
}

/// The evolving state is the EM estimator, the per-region watermarks and
/// the held/pending item queues. Held entries are keyed by attributes the
/// items themselves carry (`query_time`, `region`), so restoring re-derives
/// the map keys from the items; the declared `regions` gate is
/// configuration, rebuilt by the processor factory.
impl Checkpointable for CrowdEmProcessor {
    fn snapshot(&mut self) -> StateBlob {
        let mut blob = StateBlob::new();
        blob.set("em", self.bridge.export_em_state());
        let mut watermarks: Vec<String> =
            self.watermarks.iter().map(|(r, wm)| format!("{r}={wm}")).collect();
        watermarks.sort_unstable();
        blob.set("watermarks", watermarks.join("\n"));
        let held: VecDeque<DataItem> = self.held.values().flatten().cloned().collect();
        blob.set("held", items_to_lines(&held));
        blob.set("pending", items_to_lines(&self.pending));
        blob
    }

    fn restore(&mut self, blob: &StateBlob) -> Result<(), StreamsError> {
        self.bridge.import_em_state(blob.require_str("em")?).map_err(|e| corrupt(e.to_string()))?;
        self.watermarks.clear();
        for line in blob.require_str("watermarks")?.lines() {
            let (region, wm) = line
                .split_once('=')
                .ok_or_else(|| corrupt(format!("bad watermark entry `{line}`")))?;
            let wm =
                wm.parse::<i64>().map_err(|_| corrupt(format!("bad watermark value `{line}`")))?;
            self.watermarks.insert(region.to_string(), wm);
        }
        self.held.clear();
        for item in items_from_lines(blob.require_str("held")?)? {
            let (Some(region), Some(q)) =
                (item.get_str("region").map(str::to_string), item.get_i64("query_time"))
            else {
                return Err(corrupt("held summary lost its (query_time, region) key".into()));
            };
            self.held.entry((q, region)).or_default().push(item);
        }
        self.pending = items_from_lines(blob.require_str("pending")?)?;
        Ok(())
    }
}

/// Shard counts and crash-recovery knobs of the §3 topology's stages.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Replicas of the RTEC stage, partitioned by `region` (values below 1
    /// are clamped to 1; 1 means an ordinary unsharded process).
    pub rtec_replicas: usize,
    /// Replicas of the crowd task stage, partitioned by
    /// `(query_time, region)`.
    pub crowd_replicas: usize,
    /// Checkpoint cadence of the stateful stages (RTEC and crowd-EM): a
    /// barrier every `checkpoint_every` consumed items per worker. 0
    /// disables checkpointing.
    pub checkpoint_every: usize,
    /// Crash supervision: `Some(max)` runs the stateful stages under
    /// [`FaultPolicy::Restart`] with `max` restarts per worker lifetime,
    /// restoring from the latest checkpoint and replaying the logged
    /// suffix. Takes precedence over the chaos-mode `Skip`/dead-letter
    /// defaults on those stages.
    pub restarts: Option<usize>,
    /// Deterministic kill injection on the RTEC stage: panic when the n-th
    /// item (1-based, counted across all replicas) enters a worker. The
    /// [`KillSwitch`] is shared with the rebuilt processors so recovery
    /// traffic never re-fires; `(0, _)` never fires.
    pub kill_rtec_at: Option<(u64, KillSwitch)>,
    /// Deterministic kill injection on the crowd-EM stage, same contract as
    /// [`PipelineOptions::kill_rtec_at`].
    pub kill_crowd_em_at: Option<(u64, KillSwitch)>,
    /// Run every region engine on the pre-compiled RTEC execution plan
    /// (see [`insight_rtec::compile::CompiledPlan`]). The plan is compiled
    /// once at build time and the one `Arc` is shared by all replicas'
    /// region workers; checkpoints are unaffected (the plan is derived
    /// state, rebuilt rather than serialised).
    pub compiled_rtec: bool,
}

impl Default for PipelineOptions {
    fn default() -> PipelineOptions {
        PipelineOptions::standard()
    }
}

impl PipelineOptions {
    /// The default shard counts (4 RTEC replicas — the paper's one engine
    /// per region — and 2 crowd task replicas) with recovery disabled.
    pub fn standard() -> PipelineOptions {
        PipelineOptions {
            rtec_replicas: 4,
            crowd_replicas: 2,
            checkpoint_every: 0,
            restarts: None,
            kill_rtec_at: None,
            kill_crowd_em_at: None,
            compiled_rtec: false,
        }
    }

    /// [`PipelineOptions::standard`] plus checkpointing every
    /// `checkpoint_every` items and restart supervision on the stateful
    /// stages.
    pub fn recovering(checkpoint_every: usize, restarts: usize) -> PipelineOptions {
        PipelineOptions {
            checkpoint_every,
            restarts: Some(restarts),
            ..PipelineOptions::standard()
        }
    }
}

/// Builds the full §3 topology over a generated scenario and returns it
/// together with the sink collecting the recognition summaries, using the
/// default shard counts ([`PipelineOptions::default`]).
///
/// `window` controls the RTEC working memory/step of every region engine.
pub fn build_pipeline(
    scenario: &Scenario,
    rules: TrafficRulesConfig,
    window: WindowConfig,
) -> Result<(Topology, CollectSink), StreamsError> {
    build_pipeline_with(scenario, rules, window, &PipelineOptions::default())
}

/// [`build_pipeline`] with explicit shard counts. The recognition output is
/// identical in canonical form ([`crate::replay::canonical_recognitions`])
/// for every choice of `options`.
pub fn build_pipeline_with(
    scenario: &Scenario,
    rules: TrafficRulesConfig,
    window: WindowConfig,
    options: &PipelineOptions,
) -> Result<(Topology, CollectSink), StreamsError> {
    let (topology, sink, _) = build_pipeline_inner(scenario, rules, window, None, options)?;
    Ok((topology, sink))
}

/// Per-source chaos counters returned by [`build_chaos_pipeline`], keyed by
/// source name.
pub type SourceChaosStats = Vec<(String, Arc<ChaosStats>)>;

/// [`build_pipeline`] with deterministic fault injection and supervision:
/// every source is wrapped in a [`ChaosSource`] (seeded per source from
/// `chaos.seed`), the RTEC replicas run under `Skip` so corrupted or
/// erroring items are dropped instead of aborting a shard, and the crowd
/// stages dead-letter failed summaries for post-mortem (read them via
/// [`Topology::dead_letters`] before `Runtime::new`).
///
/// Also returns one [`ChaosStats`] handle per wrapped source so callers can
/// report how much chaos was actually injected.
pub fn build_chaos_pipeline(
    scenario: &Scenario,
    rules: TrafficRulesConfig,
    window: WindowConfig,
    chaos: ChaosConfig,
) -> Result<(Topology, CollectSink, SourceChaosStats), StreamsError> {
    build_pipeline_inner(scenario, rules, window, Some(chaos), &PipelineOptions::default())
}

/// [`build_chaos_pipeline`] with explicit shard counts, so the fault
/// injection harness can exercise the partition/merge machinery at any
/// replica count.
pub fn build_chaos_pipeline_with(
    scenario: &Scenario,
    rules: TrafficRulesConfig,
    window: WindowConfig,
    chaos: ChaosConfig,
    options: &PipelineOptions,
) -> Result<(Topology, CollectSink, SourceChaosStats), StreamsError> {
    build_pipeline_inner(scenario, rules, window, Some(chaos), options)
}

/// Adds `items` as a source named `name`, wrapped in a [`ChaosSource`] when
/// chaos is enabled (the per-source seed is salted so streams fault
/// independently).
fn add_source(
    topology: &mut Topology,
    name: &str,
    items: Vec<DataItem>,
    chaos: &Option<ChaosConfig>,
    salt: u64,
    stats: &mut SourceChaosStats,
) {
    let source = VecSource::new(items);
    match chaos {
        Some(cfg) => {
            let cfg = ChaosConfig { seed: cfg.seed.wrapping_add(salt), ..cfg.clone() };
            let chaotic = ChaosSource::new(source, cfg);
            stats.push((name.to_string(), chaotic.stats()));
            topology.add_source(name, chaotic);
        }
        None => {
            topology.add_source(name, source);
        }
    }
}

fn build_pipeline_inner(
    scenario: &Scenario,
    rules: TrafficRulesConfig,
    window: WindowConfig,
    chaos: Option<ChaosConfig>,
    options: &PipelineOptions,
) -> Result<(Topology, CollectSink, SourceChaosStats), StreamsError> {
    let mut topology = Topology::new();
    let mut chaos_stats: SourceChaosStats = Vec::new();
    let (start, _) = scenario.window();
    let first_query = start + window.step();

    // Input handling: one bus stream, four SCATS region streams, all
    // feeding the shared `sde` queue that the sharded RTEC stage consumes.
    // Every feed's items are pre-built in a single pass over the trace.
    let feeds = crate::items::feed_items(scenario);
    add_source(&mut topology, "bus", feeds.bus, &chaos, 0, &mut chaos_stats);
    for (i, (region, items)) in Region::ALL.into_iter().zip(feeds.scats).enumerate() {
        add_source(
            &mut topology,
            &format!("scats-{region}"),
            items,
            &chaos,
            1 + i as u64,
            &mut chaos_stats,
        );
    }

    // The capacity must be small enough that a fast producer *blocks* and
    // yields to the other feeds: the RTEC query gate opens only when every
    // SDE class's watermark has passed, so if one source can burst its whole
    // stream ahead of the others (short benches on few cores), queries — and
    // with them window eviction — defer to end-of-stream and the engines
    // buffer the entire history. A bounded queue caps that skew at one queue
    // length, keeping worker state (and checkpoint blobs) at steady-state
    // window size.
    // Feed stages batch their pre-materialised sources: `VecSource` hands
    // over up to 64 items per `next_batch` call and the forwarders push them
    // into `sde` with one batched send, cutting per-item dispatch and lock
    // traffic on the hottest edge of the graph. Chaos runs keep the per-item
    // default — `ChaosSource` injects faults item by item.
    let feed_batch = if chaos.is_some() { 1 } else { 64 };
    topology.add_queue("sde", 512);
    topology
        .process("bus-feed")
        .input(Input::Stream("bus".into()))
        .batch_size(feed_batch)
        .output(Output::Queue("sde".into()))
        .done();
    for region in Region::ALL {
        topology
            .process(&format!("scats-feed-{region}"))
            .input(Input::Stream(format!("scats-{region}")))
            .batch_size(feed_batch)
            .output(Output::Queue("sde".into()))
            .done();
    }

    // Event processing: one sharded RTEC stage partitioned by region. Every
    // item of a region lands on the same replica, so each region engine
    // sees its full stream in FIFO order (see [`MultiRegionRtecProcessor`]).
    // Validate the rule set once here so a bad configuration fails at build
    // time rather than inside a replica; when the compiled mode is on, this
    // is also where the one shared execution plan is compiled.
    let mut probe = TrafficRecognizer::new(rules.clone(), window, &[], &[]).map_err(|e| {
        StreamsError::ProcessorFailed {
            process: "rtec".into(),
            processor: None,
            message: e.to_string(),
        }
    })?;
    let shared_plan = if options.compiled_rtec {
        probe.set_compiled(true);
        probe.compiled_plan().cloned()
    } else {
        None
    };
    drop(probe);
    let mut infos_by_region: HashMap<Region, Vec<IntersectionInfo>> = HashMap::new();
    for i in scenario.scats.intersections() {
        infos_by_region.entry(i.region).or_default().push(IntersectionInfo {
            id: i.id as i64,
            lon: i.lon,
            lat: i.lat,
        });
    }
    let infos = Arc::new(infos_by_region);
    let rules_shared = Arc::new(rules);
    let sink = CollectSink::shared();
    topology.add_queue("recognitions", 4096);
    let mut builder = topology
        .process("rtec")
        .input(Input::Queue("sde".into()))
        .replicas(options.rtec_replicas.max(1))
        .partition_by(["region"])
        // The region key has exactly four values; hashing four values into
        // a handful of shards routinely collides the heavy ones onto a
        // single replica (with the FNV route, *all four* regions share one
        // shard at two replicas). Enumerating them round-robins regions
        // over replicas — at four replicas this is exactly the paper's
        // one-engine-per-region decomposition.
        .partition_hints(Region::ALL.map(|r| r.to_string()))
        // SDEs arrive in bursts per query window; draining them in batches
        // amortises queue lock/wake traffic through the partitioner, the
        // shards and the merge alike.
        .batch_size(32);
    if chaos.is_some() {
        // Under injected faults a corrupted SDE must cost one item, not a
        // whole shard.
        builder = builder.fault_policy(FaultPolicy::Skip { max_consecutive: usize::MAX });
    }
    if let Some(max) = options.restarts {
        // Crash supervision overrides the chaos default: a killed worker is
        // rebuilt from its factory, restored from the latest checkpoint and
        // caught up by replaying the logged suffix.
        builder = builder
            .fault_policy(FaultPolicy::Restart { max, from_checkpoint: true })
            .checkpoint_every(options.checkpoint_every);
    } else if options.checkpoint_every > 0 {
        builder = builder.checkpoint_every(options.checkpoint_every);
    }
    if let Some((at, switch)) = options.kill_rtec_at.clone() {
        // The kill slot precedes the engine slot, so the panic strikes
        // before the item mutates any state; the shared switch keeps the
        // rebuilt chain from re-firing on replayed traffic.
        builder =
            builder.processor_factory(move || Box::new(KillAt::with_switch(at, switch.clone())));
    }
    builder
        .processor_factory({
            let rules = rules_shared.clone();
            let infos = infos.clone();
            let plan = shared_plan.clone();
            move || {
                Box::new(
                    MultiRegionRtecProcessor::new(
                        rules.clone(),
                        window,
                        infos.clone(),
                        first_query,
                    )
                    .with_compiled_plan(plan.clone()),
                )
            }
        })
        .output(Output::Queue("recognitions".into()))
        .done();

    // Crowdsourcing: a sharded task stage (worker selection + simulated
    // answers, key-pure per (query_time, region)) followed by one EM merge
    // stage consuming the restored-order stream.
    let bridge_config = crate::crowdbridge::CrowdBridgeConfig::default();
    let (x0, y0, x1, y1) = scenario.network.bbox();
    let centre = ((x0 + x1) / 2.0, (y0 + y1) / 2.0);
    let seed = scenario.config.seed;
    // Validate the bridge configuration eagerly, so neither the task-replica
    // factories nor the EM-stage factory below can fail at runtime.
    crate::crowdbridge::CrowdBridge::new(&bridge_config, centre, seed).map(drop).map_err(|e| {
        StreamsError::ProcessorFailed {
            process: "crowd-em".into(),
            processor: None,
            message: e.to_string(),
        }
    })?;
    let em_config = bridge_config.clone();
    let network = scenario.network.clone();
    let field = scenario.field.clone();
    let truth_of: TruthOracle = Arc::new(move |lon: f64, lat: f64, t: i64| {
        network.nearest_junction(lon, lat).map(|j| field.is_congested(j, t)).unwrap_or(false)
    });
    topology.add_queue("crowd-tasks", 4096);
    let mut builder = topology
        .process("crowd")
        .input(Input::Queue("recognitions".into()))
        .replicas(options.crowd_replicas.max(1))
        .partition_by(["query_time", "region"])
        // Summaries are far sparser than SDEs; a small batch keeps latency
        // low while still coalescing queue transfers.
        .batch_size(16);
    if chaos.is_some() {
        // Failed summaries are preserved for post-mortem instead of
        // aborting the run.
        builder = builder.dead_letter();
    }
    builder
        .processor_factory(move || {
            let bridge = crate::crowdbridge::CrowdBridge::new(&bridge_config, centre, seed)
                .expect("bridge configuration validated at build time");
            Box::new(CrowdTaskProcessor::new(bridge, truth_of.clone(), seed))
        })
        .output(Output::Queue("crowd-tasks".into()))
        .done();

    // Only regions that actually produce SDEs emit summaries; gating on
    // anything else would defer every merge to end-of-stream.
    let active_regions: std::collections::BTreeSet<String> =
        scenario.sdes.iter().map(|s| s.region().to_string()).collect();
    let mut builder = topology.process("crowd-em").input(Input::Queue("crowd-tasks".into()));
    if chaos.is_some() {
        builder = builder.dead_letter();
    }
    if let Some(max) = options.restarts {
        builder = builder
            .fault_policy(FaultPolicy::Restart { max, from_checkpoint: true })
            .checkpoint_every(options.checkpoint_every);
    } else if options.checkpoint_every > 0 {
        builder = builder.checkpoint_every(options.checkpoint_every);
    }
    if let Some((at, switch)) = options.kill_crowd_em_at.clone() {
        builder =
            builder.processor_factory(move || Box::new(KillAt::with_switch(at, switch.clone())));
    }
    builder
        .processor_factory(move || {
            let bridge = crate::crowdbridge::CrowdBridge::new(&em_config, centre, seed)
                .expect("bridge configuration validated at build time");
            Box::new(CrowdEmProcessor::new(bridge).with_regions(active_regions.clone()))
        })
        .output(Output::Sink(Box::new(sink.clone())))
        .done();

    Ok((topology, sink, chaos_stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use insight_datagen::scenario::ScenarioConfig;
    use insight_streams::runtime::Runtime;

    #[test]
    fn pipeline_runs_end_to_end() {
        let scenario = Scenario::generate(ScenarioConfig::small(1200, 77)).unwrap();
        let window = WindowConfig::new(600, 300).unwrap();
        let (topology, sink) =
            build_pipeline(&scenario, TrafficRulesConfig::default(), window).unwrap();
        Runtime::new(topology).run().unwrap();
        let items = sink.items();
        assert!(!items.is_empty(), "recognition summaries must be produced");
        for item in &items {
            assert_eq!(item.get_str("kind"), Some("recognition"));
            assert!(item.get_i64("query_time").is_some());
        }
        // Every region with sensors reports at least one summary (buses move
        // through regions, so even sensor-less regions may report).
        let with_sdes: Vec<&DataItem> =
            items.iter().filter(|i| i.get_i64("sde_count").unwrap_or(0) > 0).collect();
        assert!(!with_sdes.is_empty(), "some window contains SDEs");
    }

    #[test]
    fn pipeline_metrics_capture_stages_queues_and_rtec_timings() {
        let scenario = Scenario::generate(ScenarioConfig::small(1200, 77)).unwrap();
        let window = WindowConfig::new(600, 300).unwrap();
        // Compiled evaluation: the allocation and cache-rebuild counters
        // asserted below account for the compiled data plane (they read 0 on
        // the interpreted path, which `pipeline_runs_end_to_end` covers).
        let options = PipelineOptions { compiled_rtec: true, ..PipelineOptions::standard() };
        let (topology, sink) =
            build_pipeline_with(&scenario, TrafficRulesConfig::default(), window, &options)
                .unwrap();
        let runtime = Runtime::new(topology);
        let metrics = runtime.metrics();
        runtime.run().unwrap();
        let snap = metrics.snapshot();

        // Per-stage item counts are non-zero where data flowed.
        let feed = snap.stages.get("bus-feed").expect("stage registered");
        assert!(feed.items_in > 0, "bus SDEs entered the feed");
        assert_eq!(feed.items_out, feed.items_in, "the feed forwards 1:1");

        // The RTEC stage expanded into partitioner, shard replicas, and
        // merge, each with its own metrics label; the rollup groups them
        // back under the stage name.
        assert!(snap.stages.contains_key("rtec[part]"), "partitioner labelled");
        assert!(snap.stages.contains_key("rtec[merge]"), "merge labelled");
        let rollup = snap.rollup_stages();
        let rtec = rollup.get("rtec").expect("replicated stage rolls up");
        assert_eq!(
            rtec.replicas.keys().filter(|k| k.parse::<usize>().is_ok()).count(),
            4,
            "four shard replicas reported"
        );
        assert!(rtec.combined.items_in > 0, "shards consumed items");

        // Queue throughput balances and the high-water mark moved.
        let recs = snap.queues.get("recognitions").expect("queue registered");
        assert!(recs.sent > 0);
        assert_eq!(recs.sent, recs.received, "queue fully drained");
        assert_eq!(recs.depth, 0);
        assert!(recs.depth_high_water >= 1);

        // RTEC per-window latencies were recorded via the metrics service.
        let rtec_windows: u64 = snap
            .histograms
            .iter()
            .filter(|(name, _)| name.starts_with("rtec.") && name.ends_with(".window_ns"))
            .map(|(_, h)| h.count)
            .sum();
        assert!(rtec_windows > 0, "RTEC window timings recorded");

        // Incremental-evaluation effort counters were recorded per region.
        let strata: u64 = snap
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("rtec.") && name.ends_with(".strata_evaluated"))
            .map(|(_, v)| *v)
            .sum();
        assert!(strata > 0, "windows with fresh SDEs re-evaluate strata");
        assert!(
            snap.counters
                .keys()
                .any(|name| name.starts_with("rtec.") && name.ends_with(".groundings_recomputed")),
            "grounding-recompute counters registered"
        );

        // The slot-indexed data plane's allocation and cache-maintenance
        // accounting flows through the same per-region counters.
        assert!(
            snap.counters
                .keys()
                .any(|name| name.starts_with("rtec.") && name.ends_with(".window_allocations")),
            "window-allocation counters registered"
        );
        let rebuild_ns: u64 = snap
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("rtec.") && name.ends_with(".cache_rebuild_ns"))
            .map(|(_, v)| *v)
            .sum();
        assert!(rebuild_ns > 0, "compiled windows spend time refilling retained stores");

        // Every summary carries its own recognition latency.
        for item in sink.items() {
            assert!(item.get_i64("recognition_ns").unwrap_or(-1) >= 0);
        }
    }

    #[test]
    fn crowd_processor_annotates_disagreement_summaries() {
        let mut cfg = ScenarioConfig::small(2400, 91);
        cfg.fleet.faulty_fraction = 0.5;
        cfg.fleet.n_buses = 40;
        let scenario = Scenario::generate(cfg).unwrap();
        let window = WindowConfig::new(900, 450).unwrap();
        // Rule-set (4) lets disagreements surface as sourceDisagreement CEs.
        let rules =
            TrafficRulesConfig::self_adaptive(insight_traffic::NoisyVariant::CrowdValidated);
        let (topology, sink) = build_pipeline(&scenario, rules, window).unwrap();
        Runtime::new(topology).run().unwrap();
        let items = sink.items();
        assert!(!items.is_empty());
        // Whenever a summary carries a disagreement location, the crowd
        // stage must have annotated it.
        let mut annotated = 0;
        for item in &items {
            if item.contains("disagreement_lon") {
                assert!(item.get_bool("crowd_verdict_congested").is_some());
                assert!(item.get_f64("crowd_confidence").unwrap() > 0.0);
                assert!(
                    !item.contains("crowd_answers_raw"),
                    "stage-internal attribute must not reach the sink"
                );
                annotated += 1;
            }
        }
        // This heavily faulty scenario reliably produces at least one.
        assert!(annotated > 0, "no disagreement summary produced");
    }

    #[test]
    fn chaos_pipeline_survives_injected_corruption() {
        let scenario = Scenario::generate(ScenarioConfig::small(1200, 77)).unwrap();
        let window = WindowConfig::new(600, 300).unwrap();
        let chaos = ChaosConfig {
            corrupt_rate: 0.05,
            drop_rate: 0.02,
            delay_rate: 0.02,
            ..ChaosConfig::new(9)
        };
        let (topology, sink, stats) =
            build_chaos_pipeline(&scenario, TrafficRulesConfig::default(), window, chaos).unwrap();
        let dead_letters = topology.dead_letters();
        let runtime = Runtime::new(topology);
        let metrics = runtime.metrics();
        runtime.run().expect("supervised run completes despite injected faults");

        assert!(!sink.items().is_empty(), "recognition summaries still produced");
        let corrupted: u64 = stats.iter().map(|(_, s)| s.corrupted.get()).sum();
        assert!(corrupted > 0, "the harness actually injected corruption");
        // Corrupted SDEs are counted, not fatal; the run aborts nowhere.
        let snap = metrics.snapshot();
        let malformed: u64 = snap
            .counters
            .iter()
            .filter(|(name, _)| name.ends_with(".malformed_sdes"))
            .map(|(_, v)| *v)
            .sum();
        assert!(malformed > 0, "RTEC skipped the corrupted SDEs");
        // Nothing in this run errors inside a processor, so the dead-letter
        // queue stays empty even though the crowd stage is armed with it.
        assert!(dead_letters.is_empty());
    }

    #[test]
    fn chaos_pipeline_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let scenario = Scenario::generate(ScenarioConfig::small(900, 42)).unwrap();
            let window = WindowConfig::new(300, 300).unwrap();
            let chaos = ChaosConfig { corrupt_rate: 0.1, drop_rate: 0.1, ..ChaosConfig::new(seed) };
            let (topology, sink, stats) =
                build_chaos_pipeline(&scenario, TrafficRulesConfig::static_mode(), window, chaos)
                    .unwrap();
            Runtime::new(topology).run().unwrap();
            let injected: (u64, u64) = (
                stats.iter().map(|(_, s)| s.dropped.get()).sum(),
                stats.iter().map(|(_, s)| s.corrupted.get()).sum(),
            );
            (sink.len(), injected)
        };
        assert_eq!(run(5), run(5), "same seed, same chaos, same output");
    }

    #[test]
    fn recognitions_identical_across_shard_counts() {
        let canonical = |options: &PipelineOptions| {
            let scenario = Scenario::generate(ScenarioConfig::small(1200, 77)).unwrap();
            let window = WindowConfig::new(600, 300).unwrap();
            let rules =
                TrafficRulesConfig::self_adaptive(insight_traffic::NoisyVariant::CrowdValidated);
            let (topology, sink) = build_pipeline_with(&scenario, rules, window, options).unwrap();
            Runtime::new(topology).run().unwrap();
            crate::replay::canonical_recognitions(&sink.items())
        };
        let base = canonical(&PipelineOptions {
            rtec_replicas: 1,
            crowd_replicas: 1,
            ..PipelineOptions::standard()
        });
        assert!(!base.is_empty());
        for options in [
            PipelineOptions { rtec_replicas: 2, crowd_replicas: 3, ..PipelineOptions::standard() },
            PipelineOptions { rtec_replicas: 4, crowd_replicas: 2, ..PipelineOptions::standard() },
            PipelineOptions { rtec_replicas: 8, crowd_replicas: 4, ..PipelineOptions::standard() },
        ] {
            assert_eq!(
                canonical(&options),
                base,
                "recognition output must not depend on shard counts ({options:?})"
            );
        }
    }

    #[test]
    fn compiled_pipeline_output_identical_to_interpreted() {
        // One shared execution plan across all replicas' region engines must
        // be output-invisible — including under checkpoint supervision,
        // where restored workers rebuild the plan rather than restore it.
        let canonical = |options: &PipelineOptions| {
            let scenario = Scenario::generate(ScenarioConfig::small(1200, 77)).unwrap();
            let window = WindowConfig::new(600, 300).unwrap();
            let (topology, sink) =
                build_pipeline_with(&scenario, TrafficRulesConfig::default(), window, options)
                    .unwrap();
            Runtime::new(topology).run().unwrap();
            crate::replay::canonical_recognitions(&sink.items())
        };
        let base = canonical(&PipelineOptions::standard());
        assert!(!base.is_empty());
        assert_eq!(
            canonical(&PipelineOptions { compiled_rtec: true, ..PipelineOptions::standard() }),
            base,
            "compiled evaluation changed the pipeline output"
        );
        assert_eq!(
            canonical(&PipelineOptions {
                compiled_rtec: true,
                ..PipelineOptions::recovering(8, 2)
            }),
            base,
            "compiled evaluation changed the supervised pipeline output"
        );
    }

    #[test]
    fn chaos_pipeline_output_invariant_across_shard_counts() {
        // Fault injection happens at the sources, upstream of the
        // partitioner — so even a degraded run must produce canonically
        // identical output for every shard count.
        let canonical = |options: &PipelineOptions| {
            let scenario = Scenario::generate(ScenarioConfig::small(900, 42)).unwrap();
            let window = WindowConfig::new(300, 300).unwrap();
            let chaos = ChaosConfig { corrupt_rate: 0.1, drop_rate: 0.1, ..ChaosConfig::new(11) };
            let (topology, sink, _) = build_chaos_pipeline_with(
                &scenario,
                TrafficRulesConfig::static_mode(),
                window,
                chaos,
                options,
            )
            .unwrap();
            Runtime::new(topology).run().unwrap();
            crate::replay::canonical_recognitions(&sink.items())
        };
        let base = canonical(&PipelineOptions {
            rtec_replicas: 1,
            crowd_replicas: 1,
            ..PipelineOptions::standard()
        });
        assert!(!base.is_empty());
        assert_eq!(
            canonical(&PipelineOptions {
                rtec_replicas: 4,
                crowd_replicas: 2,
                ..PipelineOptions::standard()
            }),
            base
        );
    }

    #[test]
    fn checkpointing_is_output_transparent() {
        // Barriers snapshot state but must never change what the pipeline
        // recognises — with no kill the supervised run is byte-identical to
        // the unsupervised one.
        let canonical = |options: &PipelineOptions| {
            let scenario = Scenario::generate(ScenarioConfig::small(1200, 77)).unwrap();
            let window = WindowConfig::new(600, 300).unwrap();
            let (topology, sink) =
                build_pipeline_with(&scenario, TrafficRulesConfig::default(), window, options)
                    .unwrap();
            Runtime::new(topology).run().unwrap();
            crate::replay::canonical_recognitions(&sink.items())
        };
        let base = canonical(&PipelineOptions::standard());
        assert!(!base.is_empty());
        assert_eq!(canonical(&PipelineOptions::recovering(8, 2)), base);
    }

    #[test]
    fn killed_rtec_worker_recovers_to_the_kill_free_output() {
        let canonical = |kill: Option<(u64, KillSwitch)>| {
            let scenario = Scenario::generate(ScenarioConfig::small(1200, 77)).unwrap();
            let window = WindowConfig::new(600, 300).unwrap();
            let options =
                PipelineOptions { kill_rtec_at: kill, ..PipelineOptions::recovering(16, 2) };
            let (topology, sink) =
                build_pipeline_with(&scenario, TrafficRulesConfig::default(), window, &options)
                    .unwrap();
            let runtime = Runtime::new(topology);
            let metrics = runtime.metrics();
            runtime.run().unwrap();
            (crate::replay::canonical_recognitions(&sink.items()), metrics.snapshot())
        };
        let (base, _) = canonical(None);
        assert!(!base.is_empty());
        let switch = KillSwitch::new();
        let (recovered, snap) = canonical(Some((40, switch.clone())));
        assert!(switch.fired(), "the injected kill must actually strike");
        assert_eq!(recovered, base, "recovery must reproduce the kill-free recognitions");
        let rtec = snap.rollup_stages().remove("rtec").expect("rtec stage reported");
        assert!(rtec.combined.checkpoints > 0, "barriers were taken");
        assert_eq!(rtec.combined.restores, 1, "exactly one worker was restored");
    }

    #[test]
    fn killed_crowd_em_stage_recovers_to_the_kill_free_output() {
        // The faulty-fleet scenario from
        // `crowd_processor_annotates_disagreement_summaries`, so the EM
        // state the restore must reconstruct is actually exercised.
        let canonical = |kill: Option<(u64, KillSwitch)>| {
            let mut cfg = ScenarioConfig::small(2400, 91);
            cfg.fleet.faulty_fraction = 0.5;
            cfg.fleet.n_buses = 40;
            let scenario = Scenario::generate(cfg).unwrap();
            let window = WindowConfig::new(900, 450).unwrap();
            let rules =
                TrafficRulesConfig::self_adaptive(insight_traffic::NoisyVariant::CrowdValidated);
            let options =
                PipelineOptions { kill_crowd_em_at: kill, ..PipelineOptions::recovering(1, 2) };
            let (topology, sink) = build_pipeline_with(&scenario, rules, window, &options).unwrap();
            let runtime = Runtime::new(topology);
            let metrics = runtime.metrics();
            runtime.run().unwrap();
            (crate::replay::canonical_recognitions(&sink.items()), metrics.snapshot())
        };
        let (base, _) = canonical(None);
        assert!(base.contains("crowd_verdict_congested"), "baseline resolves disagreements");
        let switch = KillSwitch::new();
        let (recovered, snap) = canonical(Some((5, switch.clone())));
        assert!(switch.fired(), "the injected kill must actually strike");
        assert_eq!(recovered, base, "recovery must reproduce the kill-free verdicts");
        let em = snap.stages.get("crowd-em").expect("crowd-em stage reported");
        assert_eq!(em.restores, 1, "the EM stage was restored once");
        assert!(em.recovery_ns > 0, "recovery latency recorded");
    }

    #[test]
    fn pipeline_summaries_cover_expected_query_times() {
        let scenario = Scenario::generate(ScenarioConfig::small(900, 78)).unwrap();
        let window = WindowConfig::new(300, 300).unwrap();
        let (topology, sink) =
            build_pipeline(&scenario, TrafficRulesConfig::static_mode(), window).unwrap();
        Runtime::new(topology).run().unwrap();
        let (start, _) = scenario.window();
        let times: Vec<i64> = sink.items().iter().filter_map(|i| i.get_i64("query_time")).collect();
        assert!(times.iter().all(|t| (t - start) % 300 == 0), "query times on the step grid");
    }
}
