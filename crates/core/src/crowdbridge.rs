//! The assembled crowdsourcing component.
//!
//! Combines the §5.3 query execution engine with the §5.1/§5.2 online EM
//! estimator: given a `sourceDisagreement` location, participants near it
//! are selected, queried (simulated answers driven by the scenario's ground
//! truth), and their answers merged into a posterior; the most likely label
//! is returned as the `crowd` event content, and the participants'
//! reliability estimates are updated.

use insight_crowd::engine::{QueryExecutionEngine, Worker, WorkerId};
use insight_crowd::error::CrowdError;
use insight_crowd::latency::{ConnectionType, StepLatency};
use insight_crowd::model::{CrowdQuery, LabelSet, SimulatedParticipant};
use insight_crowd::online_em::OnlineEm;
use insight_crowd::policy::SelectionPolicy;
use insight_crowd::schedule::GammaSchedule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The shardable first phase of a resolution: worker selection plus the
/// selected workers' simulated answers, produced by
/// [`CrowdBridge::simulate_task`] without touching the EM state.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedTask {
    /// `(participant index, label index)` pairs in dispatch order — the
    /// input [`CrowdBridge::merge_task`] expects.
    pub answers: Vec<(usize, usize)>,
    /// Mean per-step latency of the answering workers.
    pub latency: Option<StepLatency>,
}

/// The outcome of resolving one disagreement through the crowd.
#[derive(Debug, Clone, PartialEq)]
pub struct CrowdResolution {
    /// The crowd's verdict: congestion or not.
    pub congested: bool,
    /// Posterior confidence of the verdict.
    pub confidence: f64,
    /// Mean per-step latency of the answering workers.
    pub latency: Option<StepLatency>,
    /// Number of answers received.
    pub answers: usize,
}

/// Configuration of the bridge.
#[derive(Debug, Clone)]
pub struct CrowdBridgeConfig {
    /// Number of simulated participants.
    pub n_participants: usize,
    /// Error probabilities; cycled when fewer than `n_participants`.
    pub error_probabilities: Vec<f64>,
    /// Workers selected per query.
    pub workers_per_query: usize,
    /// Initial reliability estimate (the paper's 0.25).
    pub initial_p: f64,
    /// Step-size schedule of the online EM.
    pub schedule: GammaSchedule,
    /// Deadline-missed tasks re-assigned to the next-fastest unused worker
    /// this many times per query before a `deadline_miss` is counted.
    pub retry_budget: u64,
}

impl Default for CrowdBridgeConfig {
    fn default() -> CrowdBridgeConfig {
        CrowdBridgeConfig {
            n_participants: 10,
            error_probabilities: SimulatedParticipant::paper_cohort()
                .into_iter()
                .map(|p| p.p_err)
                .collect(),
            workers_per_query: 5,
            initial_p: 0.25,
            schedule: GammaSchedule::default(),
            retry_budget: 1,
        }
    }
}

/// The crowdsourcing component of Figure 1.
pub struct CrowdBridge {
    engine: QueryExecutionEngine,
    em: OnlineEm,
    participants: Vec<SimulatedParticipant>,
    labels: LabelSet,
    rng: StdRng,
    workers_per_query: usize,
    retry_budget: u64,
}

impl CrowdBridge {
    /// Builds the bridge: participants are registered as workers scattered
    /// around `(centre_lon, centre_lat)` with mixed connection types.
    pub fn new(
        config: &CrowdBridgeConfig,
        centre: (f64, f64),
        seed: u64,
    ) -> Result<CrowdBridge, CrowdError> {
        let labels = LabelSet::traffic_default();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc0ed_b41d);
        let mut engine = QueryExecutionEngine::new();
        let mut participants = Vec::with_capacity(config.n_participants);
        for i in 0..config.n_participants {
            let p_err = config.error_probabilities[i % config.error_probabilities.len().max(1)];
            participants.push(SimulatedParticipant::new(p_err)?);
            let connection = match i % 3 {
                0 => ConnectionType::WiFi,
                1 => ConnectionType::ThreeG,
                _ => ConnectionType::TwoG,
            };
            engine.register(Worker {
                id: WorkerId(i as u64),
                lon: centre.0 + rng.random_range(-0.05..0.05),
                lat: centre.1 + rng.random_range(-0.03..0.03),
                connection,
                avg_comp_ms: rng.random_range(50.0..250.0),
            });
        }
        let em = OnlineEm::new(
            config.n_participants,
            labels.clone(),
            config.initial_p,
            config.schedule,
        )?;
        Ok(CrowdBridge {
            engine,
            em,
            participants,
            labels,
            rng,
            workers_per_query: config.workers_per_query,
            retry_budget: config.retry_budget,
        })
    }

    /// Current reliability estimates (error probabilities) per participant.
    pub fn reliability_estimates(&self) -> &[f64] {
        self.em.estimates()
    }

    /// Cumulative query/task/answer counters of the underlying execution
    /// engine (queries issued, tasks dispatched, deadline misses, latency).
    pub fn engine_stats(&self) -> insight_crowd::engine::EngineStats {
        self.engine.stats()
    }

    /// Serialises the online EM estimator state (the evolving part of the
    /// bridge) for checkpointing; everything else is reproducible from the
    /// construction parameters.
    pub fn export_em_state(&self) -> String {
        self.em.export_state()
    }

    /// Restores an estimator state produced by
    /// [`CrowdBridge::export_em_state`] on a bridge built from the same
    /// configuration. Fails — leaving the estimator untouched — on a corrupt
    /// or mismatched snapshot.
    pub fn import_em_state(&mut self, state: &str) -> Result<(), CrowdError> {
        self.em.import_state(state)
    }

    /// The crowd query asking about the traffic situation at a location.
    fn query_at(&self, lon: f64, lat: f64) -> CrowdQuery {
        CrowdQuery {
            question: format!("Traffic situation near ({lon:.5}, {lat:.5})?"),
            answers: (0..self.labels.len())
                .map(|i| self.labels.name(i).expect("in range").to_string())
                .collect(),
            lon,
            lat,
            deadline_ms: None,
        }
    }

    /// The label index matching a ground-truth congestion flag.
    fn truth_label(&self, truth_congested: bool) -> usize {
        if truth_congested {
            self.labels.index_of("Traffic congestion").expect("static label")
        } else {
            self.labels.index_of("Free flowing").expect("static label")
        }
    }

    /// Phase one of a resolution, safe to run on keyed shard replicas:
    /// selects workers over the *current* reliability estimates and
    /// simulates their answers, leaving the EM state untouched.
    ///
    /// Every random draw derives from `task_seed`, so on a bridge whose EM
    /// estimates have not been advanced (as in the sharded task stage, where
    /// [`CrowdBridge::merge_task`] runs downstream on a different instance)
    /// the outcome is a pure function of `(lon, lat, truth_congested,
    /// task_seed)` — independent of call order and therefore of how
    /// disagreements are distributed over shards.
    pub fn simulate_task(
        &self,
        lon: f64,
        lat: f64,
        truth_congested: bool,
        task_seed: u64,
    ) -> Result<SimulatedTask, CrowdError> {
        let query = self.query_at(lon, lat);
        let reliability: HashMap<WorkerId, f64> =
            self.em.estimates().iter().enumerate().map(|(i, &p)| (WorkerId(i as u64), p)).collect();
        let selected = self.engine.select(
            &SelectionPolicy::MostReliableK(self.workers_per_query),
            &query,
            Some(&reliability),
        )?;
        let truth_label = self.truth_label(truth_congested);
        let participants = &self.participants;
        let labels = &self.labels;
        let mut task_rng = StdRng::seed_from_u64(task_seed);
        let mut answer_rng = StdRng::seed_from_u64(task_seed ^ 0x9e37_79b9_7f4a_7c15);
        let execution = self.engine.execute_with_retry(
            &query,
            &selected,
            |id| {
                participants
                    .get(id.0 as usize)
                    .and_then(|p| p.answer(truth_label, labels, &mut answer_rng).ok())
            },
            &mut task_rng,
            self.retry_budget,
        )?;
        Ok(SimulatedTask {
            answers: execution.answers.iter().map(|&(w, l)| (w.0 as usize, l)).collect(),
            latency: execution.mean_latency(),
        })
    }

    /// Phase two of a resolution: merges simulated answers into the online
    /// EM, updating the reliability estimates. Order-sensitive — the EM
    /// state evolves with every call — so callers must fix a canonical merge
    /// order (the pipeline uses `(query_time, region)`).
    pub fn merge_task(
        &mut self,
        answers: &[(usize, usize)],
        prior: Option<Vec<f64>>,
    ) -> Result<CrowdResolution, CrowdError> {
        let prior = prior.unwrap_or_else(|| self.labels.uniform_prior());
        let outcome = self.em.process(&prior, answers)?;
        Ok(CrowdResolution {
            congested: outcome.map_label
                == self.labels.index_of("Traffic congestion").expect("static label"),
            confidence: outcome.confidence,
            latency: None,
            answers: answers.len(),
        })
    }

    /// Resolves one source disagreement: queries workers near the location;
    /// `truth_congested` drives the simulated participants' answers.
    pub fn resolve(
        &mut self,
        lon: f64,
        lat: f64,
        truth_congested: bool,
        prior: Option<Vec<f64>>,
    ) -> Result<CrowdResolution, CrowdError> {
        let query = self.query_at(lon, lat);
        // Reliability-aware selection: prefer the workers the EM currently
        // trusts most.
        let reliability: HashMap<WorkerId, f64> =
            self.em.estimates().iter().enumerate().map(|(i, &p)| (WorkerId(i as u64), p)).collect();
        let selected = self.engine.select(
            &SelectionPolicy::MostReliableK(self.workers_per_query),
            &query,
            Some(&reliability),
        )?;

        let truth_label = self.truth_label(truth_congested);

        let participants = &self.participants;
        let labels = &self.labels;
        let mut answer_rng = StdRng::seed_from_u64(self.rng.random());
        let execution = self.engine.execute_with_retry(
            &query,
            &selected,
            |id| {
                participants
                    .get(id.0 as usize)
                    .and_then(|p| p.answer(truth_label, labels, &mut answer_rng).ok())
            },
            &mut self.rng,
            self.retry_budget,
        )?;

        let prior = prior.unwrap_or_else(|| self.labels.uniform_prior());
        let em_answers: Vec<(usize, usize)> =
            execution.answers.iter().map(|&(w, l)| (w.0 as usize, l)).collect();
        let outcome = self.em.process(&prior, &em_answers)?;

        Ok(CrowdResolution {
            congested: outcome.map_label
                == self.labels.index_of("Traffic congestion").expect("static label"),
            confidence: outcome.confidence,
            latency: execution.mean_latency(),
            answers: em_answers.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bridge() -> CrowdBridge {
        CrowdBridge::new(&CrowdBridgeConfig::default(), (-6.26, 53.35), 7).unwrap()
    }

    #[test]
    fn resolves_towards_ground_truth() {
        let mut b = bridge();
        let mut correct = 0;
        let total = 200;
        for i in 0..total {
            let truth = i % 2 == 0;
            let r = b.resolve(-6.26, 53.35, truth, None).unwrap();
            if r.congested == truth {
                correct += 1;
            }
            assert!(r.answers > 0);
            assert!(r.confidence > 0.0 && r.confidence <= 1.0);
        }
        assert!(correct as f64 / total as f64 > 0.85, "crowd accuracy too low: {correct}/{total}");
    }

    #[test]
    fn reliability_estimates_update() {
        let mut b = bridge();
        let before = b.reliability_estimates().to_vec();
        for _ in 0..50 {
            b.resolve(-6.26, 53.35, true, None).unwrap();
        }
        assert_ne!(before, b.reliability_estimates(), "estimates must move");
    }

    #[test]
    fn latency_reported_for_answering_workers() {
        let mut b = bridge();
        let r = b.resolve(-6.26, 53.35, false, None).unwrap();
        let lat = r.latency.expect("some workers answered");
        assert!(lat.total_ms() > 0.0 && lat.total_ms() < 2000.0);
    }

    #[test]
    fn prior_influences_resolution() {
        let mut b = bridge();
        // Overwhelming prior on congestion: even with truth=false some
        // resolutions can flip, but the call must accept the prior shape.
        let prior = vec![0.97, 0.01, 0.01, 0.01];
        let r = b.resolve(-6.26, 53.35, true, Some(prior)).unwrap();
        assert!(r.congested, "strong congestion prior plus congested ground truth");
    }

    #[test]
    fn simulate_task_is_call_order_independent() {
        // Two bridges built identically; interleaving the same tasks in
        // different orders must yield identical per-task answers, because
        // each task's randomness derives from its seed alone.
        let a = bridge();
        let b = bridge();
        let tasks: Vec<(f64, f64, bool, u64)> = (0..20)
            .map(|i| (-6.26 + i as f64 * 1e-3, 53.35, i % 3 == 0, 0xfeed ^ i as u64))
            .collect();
        let out_a: Vec<_> = tasks
            .iter()
            .map(|&(lon, lat, t, s)| a.simulate_task(lon, lat, t, s).unwrap())
            .collect();
        let out_b: Vec<_> = tasks
            .iter()
            .rev()
            .map(|&(lon, lat, t, s)| b.simulate_task(lon, lat, t, s).unwrap())
            .collect();
        for (task, rev) in out_a.iter().zip(out_b.iter().rev()) {
            assert_eq!(task, rev, "same seed, same task, any order");
        }
    }

    #[test]
    fn split_phases_track_ground_truth_and_update_estimates() {
        let tasker = bridge();
        let mut merger = bridge();
        let before = merger.reliability_estimates().to_vec();
        let mut correct = 0;
        let total = 100;
        for i in 0..total {
            let truth = i % 2 == 0;
            let task = tasker.simulate_task(-6.26, 53.35, truth, 31 * i as u64).unwrap();
            assert!(!task.answers.is_empty());
            let r = merger.merge_task(&task.answers, None).unwrap();
            if r.congested == truth {
                correct += 1;
            }
        }
        assert!(correct as f64 / total as f64 > 0.85, "crowd accuracy too low: {correct}/{total}");
        assert_ne!(before, merger.reliability_estimates(), "EM estimates must move");
    }

    #[test]
    fn config_validation_bubbles_up() {
        let cfg =
            CrowdBridgeConfig { error_probabilities: vec![1.7], ..CrowdBridgeConfig::default() };
        assert!(CrowdBridge::new(&cfg, (0.0, 0.0), 1).is_err());
    }
}
