//! The closed-loop system: windows, crowdsourcing, feedback, alerts.
//!
//! [`InsightSystem`] drives the whole Figure 1 architecture over a generated
//! scenario: at every query time the four region engines recognise CEs;
//! open `sourceDisagreement` CEs are handed to the crowdsourcing component,
//! whose verdicts (a) label the operator alert and (b) are fed back into
//! RTEC as `crowd` events — letting the `noisy(Bus)` rule-sets act on them —
//! and into the traffic-modelling service.

use crate::alerts::OperatorAlert;
use crate::crowdbridge::{CrowdBridge, CrowdBridgeConfig};
use crate::modelsvc::TrafficModelService;
use insight_crowd::error::CrowdError;
use insight_datagen::congestion::CAPACITY;
use insight_datagen::error::DatagenError;
use insight_datagen::scenario::{Scenario, ScenarioConfig};
use insight_datagen::stream::SdeBody;
use insight_gp::kernel::RegularizedLaplacian;
use insight_gp::GpError;
use insight_rtec::error::RtecError;
use insight_rtec::window::WindowConfig;
use insight_streams::metrics::{MetricsRegistry, MetricsSnapshot};
use insight_traffic::{DistributedRecognizer, TrafficRulesConfig};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors of the integrated system.
#[derive(Debug)]
pub enum SystemError {
    /// Scenario generation failed.
    Datagen(DatagenError),
    /// Recognition failed.
    Rtec(RtecError),
    /// Crowdsourcing failed.
    Crowd(CrowdError),
    /// Traffic modelling failed.
    Gp(GpError),
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Datagen(e) => write!(f, "datagen: {e}"),
            SystemError::Rtec(e) => write!(f, "rtec: {e}"),
            SystemError::Crowd(e) => write!(f, "crowd: {e}"),
            SystemError::Gp(e) => write!(f, "gp: {e}"),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<DatagenError> for SystemError {
    fn from(e: DatagenError) -> Self {
        SystemError::Datagen(e)
    }
}
impl From<RtecError> for SystemError {
    fn from(e: RtecError) -> Self {
        SystemError::Rtec(e)
    }
}
impl From<CrowdError> for SystemError {
    fn from(e: CrowdError) -> Self {
        SystemError::Crowd(e)
    }
}
impl From<GpError> for SystemError {
    fn from(e: GpError) -> Self {
        SystemError::Gp(e)
    }
}

/// Configuration of the integrated system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// The scenario to run over.
    pub scenario: ScenarioConfig,
    /// The CE rule configuration.
    pub rules: TrafficRulesConfig,
    /// RTEC working memory / step.
    pub window: WindowConfig,
    /// Crowdsourcing configuration.
    pub crowd: CrowdBridgeConfig,
    /// GP kernel hyperparameters `(alpha, beta)`.
    pub gp_hyper: (f64, f64),
    /// GP observation noise.
    pub gp_noise: f64,
}

impl SystemConfig {
    /// A small, fast configuration for tests and the quickstart example.
    pub fn small(duration: i64, seed: u64) -> SystemConfig {
        SystemConfig {
            scenario: ScenarioConfig::small(duration, seed),
            // Rule-set (4): buses stay trusted until the crowd sides with
            // the SCATS sensors, so `sourceDisagreement` CEs can form and
            // the full crowdsourcing loop of Figure 1 is exercised.
            rules: TrafficRulesConfig::self_adaptive(insight_traffic::NoisyVariant::CrowdValidated),
            window: WindowConfig::new(600, 300).expect("static window"),
            crowd: CrowdBridgeConfig::default(),
            gp_hyper: (3.0, 1.0),
            gp_noise: 0.1,
        }
    }
}

/// Statistics of one recognition window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Query time.
    pub query_time: i64,
    /// SDEs inside the window (across regions).
    pub sde_count: usize,
    /// Wall-clock recognition time (max over the parallel regions).
    pub recognition_time: Duration,
    /// Source disagreements open at this query.
    pub open_disagreements: usize,
    /// Crowd resolutions performed in this window.
    pub resolutions: usize,
}

/// Fault counters of one stage, extracted from a [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageFaults {
    /// Failed processor invocations (errors + panics).
    pub faults: u64,
    /// The subset of `faults` that were isolated panics.
    pub panics: u64,
    /// Re-invocations performed by a `Retry` policy.
    pub retries: u64,
    /// Items dropped by a `Skip` policy.
    pub skipped: u64,
    /// Items moved to the dead-letter queue.
    pub dead_letters: u64,
}

/// Aggregated fault/degradation picture of a run: per-stage supervision
/// counters plus the pipeline-level graceful-degradation counters (malformed
/// SDEs skipped by RTEC, sensor-only crowd fallbacks, crowd task retries).
#[derive(Debug, Clone, Default)]
pub struct FaultReport {
    /// Stages that recorded at least one fault, retry, skip, or dead letter.
    pub per_stage: std::collections::BTreeMap<String, StageFaults>,
    /// SDE items that failed schema validation and were skipped by RTEC
    /// (summed over the `rtec.<region>.malformed_sdes` counters).
    pub malformed_sdes: u64,
    /// Disagreements resolved sensor-only because the crowd engine errored.
    pub crowd_fallbacks: u64,
    /// Deadline-missed crowd tasks re-assigned to a faster worker.
    pub crowd_retries: u64,
}

impl FaultReport {
    /// Extracts the fault picture from a metrics snapshot (works for both
    /// [`InsightSystem::run`] reports and Streams runtime registries).
    pub fn from_snapshot(snap: &MetricsSnapshot) -> FaultReport {
        let mut report = FaultReport::default();
        for (name, stage) in &snap.stages {
            let faults = StageFaults {
                faults: stage.faults,
                panics: stage.panics,
                retries: stage.retries,
                skipped: stage.skipped,
                dead_letters: stage.dead_letters,
            };
            if faults != StageFaults::default() {
                report.per_stage.insert(name.clone(), faults);
            }
        }
        for (name, &value) in &snap.counters {
            if name.ends_with(".malformed_sdes") {
                report.malformed_sdes += value;
            }
        }
        report.crowd_fallbacks = snap.counters.get("crowd.fallbacks").copied().unwrap_or(0);
        report.crowd_retries = snap.counters.get("crowd.retries").copied().unwrap_or(0);
        report
    }

    /// Total failed processor invocations across all stages.
    pub fn total_faults(&self) -> u64 {
        self.per_stage.values().map(|s| s.faults).sum()
    }

    /// True when the run saw no faults and no degradation at all.
    pub fn is_clean(&self) -> bool {
        self.per_stage.is_empty()
            && self.malformed_sdes == 0
            && self.crowd_fallbacks == 0
            && self.crowd_retries == 0
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "no faults");
        }
        writeln!(
            f,
            "{} stage faults, {} malformed SDEs, {} crowd fallbacks, {} crowd retries",
            self.total_faults(),
            self.malformed_sdes,
            self.crowd_fallbacks,
            self.crowd_retries
        )?;
        for (stage, s) in &self.per_stage {
            writeln!(
                f,
                "  {stage}: faults {} (panics {}), retries {}, skipped {}, dead-letters {}",
                s.faults, s.panics, s.retries, s.skipped, s.dead_letters
            )?;
        }
        Ok(())
    }
}

/// The report of a completed run.
#[derive(Debug, Clone)]
pub struct SystemReport {
    /// All alerts in emission order.
    pub alerts: Vec<OperatorAlert>,
    /// Proactive control recommendations `(issued at, action)`.
    pub control_actions: Vec<(i64, crate::proactive::ControlAction)>,
    /// Per-window statistics.
    pub windows: Vec<WindowStats>,
    /// Crowd verdict accuracy against the scenario's ground truth
    /// (`None` when no disagreement was crowdsourced).
    pub crowd_accuracy: Option<f64>,
    /// Junction coverage: `(observed, estimated)` by the traffic model.
    pub model_coverage: (usize, usize),
    /// Observability snapshot taken at the end of the run: per-window RTEC
    /// latencies, SDE/crowd counters. JSON-serialisable via
    /// [`MetricsSnapshot::to_json`].
    pub metrics: MetricsSnapshot,
    /// Fault and graceful-degradation counters extracted from `metrics`.
    pub faults: FaultReport,
}

impl SystemReport {
    /// Alerts of a specific kind.
    pub fn alerts_where(&self, pred: impl Fn(&OperatorAlert) -> bool) -> Vec<&OperatorAlert> {
        self.alerts.iter().filter(|a| pred(a)).collect()
    }
}

/// The integrated system.
pub struct InsightSystem {
    config: SystemConfig,
    scenario: Scenario,
    recognizer: DistributedRecognizer,
    crowd: CrowdBridge,
    model: TrafficModelService,
    controller: crate::proactive::ProactiveController,
    metrics: Arc<MetricsRegistry>,
}

impl InsightSystem {
    /// Generates the scenario and assembles all components.
    pub fn new(config: SystemConfig) -> Result<InsightSystem, SystemError> {
        let scenario = Scenario::generate(config.scenario.clone())?;
        let recognizer = DistributedRecognizer::from_deployment(
            config.rules.clone(),
            config.window,
            &scenario.scats,
        )?;
        let centre = {
            let (x0, y0, x1, y1) = scenario.network.bbox();
            ((x0 + x1) / 2.0, (y0 + y1) / 2.0)
        };
        let crowd = CrowdBridge::new(&config.crowd, centre, config.scenario.seed)?;
        let kernel = RegularizedLaplacian::new(config.gp_hyper.0, config.gp_hyper.1)
            .map_err(SystemError::Gp)?;
        let model = TrafficModelService::new(&scenario.network, kernel, config.gp_noise);
        let controller = crate::proactive::ProactiveController::new(
            crate::proactive::ControllerConfig::default(),
        );
        Ok(InsightSystem {
            config,
            scenario,
            recognizer,
            crowd,
            model,
            controller,
            metrics: Arc::new(MetricsRegistry::new()),
        })
    }

    /// The generated scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The live metrics registry (shared; counters accumulate across runs).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// The traffic-modelling service.
    pub fn model(&self) -> &TrafficModelService {
        &self.model
    }

    /// Renders the operator map: the traffic model's flow estimate at every
    /// junction as a green→red PPM image (the paper's "simple, intuitive
    /// interactive map" requirement, §2). Call after [`InsightSystem::run`]
    /// so the model has observations.
    pub fn render_map(&self, width: usize, height: usize) -> Result<String, SystemError> {
        let posterior = self.model.estimate_all()?;
        let values: Vec<(usize, f64)> =
            posterior.targets.iter().copied().zip(posterior.mean.iter().copied()).collect();
        Ok(insight_gp::render::render_ppm(self.model.graph(), &values, width, height, 2))
    }

    /// Runs the closed loop over the whole scenario.
    pub fn run(&mut self) -> Result<SystemReport, SystemError> {
        let (start, end) = self.scenario.window();
        let step = self.config.window.step();

        let mut alerts: Vec<OperatorAlert> = Vec::new();
        let mut control_actions: Vec<(i64, crate::proactive::ControlAction)> = Vec::new();
        let mut windows: Vec<WindowStats> = Vec::new();
        // Alert de-duplication: a location/bus alerts once while its
        // condition persists across (overlapping) windows, and re-arms when
        // it disappears for a window.
        let mut active_congestion: HashSet<(i64, i64)> = HashSet::new();
        let mut active_noisy: HashSet<i64> = HashSet::new();
        let mut seen_disagreement: HashSet<(i64, i64)> = HashSet::new();
        let mut seen_delay: HashSet<(i64, i64)> = HashSet::new();
        let mut crowd_checked = 0usize;
        let mut crowd_correct = 0usize;

        let window_ns = self.metrics.histogram("rtec.window_ns");
        let resolve_ns = self.metrics.histogram("crowd.resolve_ns");
        let sdes_delivered = self.metrics.counter("system.sdes_delivered");
        let windows_run = self.metrics.counter("system.windows");
        let disagreements_open = self.metrics.counter("rtec.open_disagreements");
        let crowd_resolutions = self.metrics.counter("crowd.resolutions");
        let crowd_fallbacks = self.metrics.counter("crowd.fallbacks");

        let mut sde_idx = 0usize;
        let mut q = start + step;
        while q <= end {
            // Deliver every SDE that has arrived by q (the trace is sorted
            // by arrival).
            while sde_idx < self.scenario.sdes.len() && self.scenario.sdes[sde_idx].arrival <= q {
                let sde = &self.scenario.sdes[sde_idx];
                self.recognizer.ingest(sde)?;
                if let SdeBody::Scats(s) = &sde.body {
                    self.model.observe(s.lon, s.lat, s.flow);
                }
                sdes_delivered.inc();
                sde_idx += 1;
            }

            let recognition = self.recognizer.query(q)?;
            windows_run.inc();
            window_ns.record(recognition.max_region_time);
            let mut open = 0usize;
            let mut resolutions = 0usize;
            let mut sde_count = 0usize;

            let mut congestion_now: HashSet<(i64, i64)> = HashSet::new();
            let mut noisy_now: HashSet<i64> = HashSet::new();
            for (_, result) in &recognition.per_region {
                sde_count += result.sde_count();

                // Congestion alerts: once per onset.
                for ((lon, lat), ivs) in result.congested_intersections() {
                    if let Some(first) = ivs.iter().next() {
                        let key = (keyf(lon), keyf(lat));
                        congestion_now.insert(key);
                        if !active_congestion.contains(&key) {
                            alerts.push(OperatorAlert::IntersectionCongestion {
                                lon,
                                lat,
                                since: first.start(),
                            });
                        }
                    }
                }
                for e in result.delay_increases() {
                    let bus = e.args[0].as_i64().unwrap_or(-1);
                    if !seen_delay.insert((bus, e.time)) {
                        continue; // same event visible in an overlapping window
                    }
                    let (lon, lat) =
                        (e.args[3].as_f64().unwrap_or(0.0), e.args[4].as_f64().unwrap_or(0.0));
                    alerts.push(OperatorAlert::DelayIncrease { bus, lon, lat, at: e.time });
                }
                for (bus, ivs) in result.noisy_buses() {
                    if let Some(first) = ivs.iter().next() {
                        noisy_now.insert(bus);
                        if !active_noisy.contains(&bus) {
                            alerts.push(OperatorAlert::NoisyBus { bus, since: first.start() });
                        }
                    }
                }

                // Crowdsource the open disagreements.
                for (lon, lat) in result.open_disagreements() {
                    open += 1;
                    let key = (keyf(lon), keyf(lat));
                    if !seen_disagreement.insert(key) {
                        continue; // already being handled
                    }
                    let truth = self.scenario.truth_congested(lon, lat, q);
                    let resolve_started = Instant::now();
                    let resolution = match self.crowd.resolve(lon, lat, truth, None) {
                        Ok(r) => r,
                        Err(_) => {
                            // Sensor-only fallback: the disagreement is
                            // alerted without a crowd verdict and no crowd
                            // feedback enters RTEC or the traffic model.
                            crowd_fallbacks.inc();
                            alerts.push(OperatorAlert::SourceDisagreement {
                                lon,
                                lat,
                                since: q,
                                crowd_verdict: None,
                                confidence: None,
                            });
                            continue;
                        }
                    };
                    resolve_ns.record(resolve_started.elapsed());
                    crowd_resolutions.inc();
                    resolutions += 1;
                    crowd_checked += 1;
                    if resolution.congested == truth {
                        crowd_correct += 1;
                    }
                    alerts.push(OperatorAlert::SourceDisagreement {
                        lon,
                        lat,
                        since: q,
                        crowd_verdict: Some(resolution.congested),
                        confidence: Some(resolution.confidence),
                    });
                    // Feedback into RTEC (arrives shortly after the query)
                    // and into the traffic model.
                    self.recognizer.ingest_crowd(lon, lat, resolution.congested, q + 1)?;
                    let implied_flow =
                        if resolution.congested { 0.3 * CAPACITY } else { 0.9 * CAPACITY };
                    self.model.observe(lon, lat, implied_flow);
                }
            }

            // Proactive control layer (the paper's §1 motivation).
            for (_, result) in &recognition.per_region {
                for action in self.controller.decide(result, q) {
                    control_actions.push((q, action));
                }
            }

            active_congestion = congestion_now;
            active_noisy = noisy_now;

            disagreements_open.add(open as u64);
            windows.push(WindowStats {
                query_time: q,
                sde_count,
                recognition_time: recognition.max_region_time,
                open_disagreements: open,
                resolutions,
            });
            q += step;
        }

        // Copy the crowd engine's cumulative counters into the registry so
        // the snapshot carries task-level dispatch/deadline statistics.
        let engine = self.crowd.engine_stats();
        let tasks = self.metrics.counter("crowd.tasks");
        tasks.add(engine.tasks.saturating_sub(tasks.get()));
        let answers = self.metrics.counter("crowd.answers");
        answers.add(engine.answers.saturating_sub(answers.get()));
        let misses = self.metrics.counter("crowd.deadline_misses");
        misses.add(engine.deadline_misses.saturating_sub(misses.get()));
        let retries = self.metrics.counter("crowd.retries");
        retries.add(engine.retries.saturating_sub(retries.get()));

        // Final sparsity estimate over the whole network.
        let observed = self.model.observed_count();
        let estimated = if observed > 0 {
            self.model.estimate_unobserved().map(|p| p.targets.len()).unwrap_or(0)
        } else {
            0
        };

        let metrics = self.metrics.snapshot();
        let faults = FaultReport::from_snapshot(&metrics);
        Ok(SystemReport {
            alerts,
            control_actions,
            windows,
            crowd_accuracy: (crowd_checked > 0)
                .then(|| crowd_correct as f64 / crowd_checked as f64),
            model_coverage: (observed, estimated),
            metrics,
            faults,
        })
    }
}

/// Quantises a coordinate for alert dedup keys.
fn keyf(v: f64) -> i64 {
    (v * 1e6).round() as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_runs_and_reports() {
        let mut system = InsightSystem::new(SystemConfig::small(1800, 101)).unwrap();
        let report = system.run().unwrap();
        assert!(!report.windows.is_empty());
        // SDEs flowed through the windows.
        assert!(report.windows.iter().map(|w| w.sde_count).sum::<usize>() > 0);
        // The model covered unobserved junctions.
        let (observed, estimated) = report.model_coverage;
        assert!(observed > 0, "SCATS readings reached the model");
        assert_eq!(observed + estimated, system.model().graph().len());
    }

    #[test]
    fn report_carries_a_populated_metrics_snapshot() {
        let mut system = InsightSystem::new(SystemConfig::small(1800, 101)).unwrap();
        let report = system.run().unwrap();
        let snap = &report.metrics;
        assert!(snap.counters.get("system.sdes_delivered").copied().unwrap_or(0) > 0);
        assert_eq!(
            snap.counters.get("system.windows").copied().unwrap_or(0),
            report.windows.len() as u64
        );
        let windows = snap.histograms.get("rtec.window_ns").expect("per-window timings");
        assert_eq!(windows.count, report.windows.len() as u64);
        assert!(windows.max_ns > 0, "recognition takes measurable time");
        // The snapshot serialises; spot-check the schema.
        let json = snap.to_json();
        assert!(json.contains("\"rtec.window_ns\""));
        assert!(json.contains("\"p99_ns\""));
    }

    #[test]
    fn faulty_scenario_produces_disagreement_handling() {
        let mut cfg = SystemConfig::small(2400, 103);
        cfg.scenario.fleet.faulty_fraction = 0.5;
        cfg.scenario.fleet.n_buses = 40;
        let mut system = InsightSystem::new(cfg).unwrap();
        let report = system.run().unwrap();
        // With half the fleet lying, some disagreement should be observed
        // and resolved; when it is, accuracy should beat guessing.
        if let Some(acc) = report.crowd_accuracy {
            assert!(acc >= 0.5, "crowd accuracy {acc}");
            assert!(!report
                .alerts_where(|a| matches!(a, OperatorAlert::SourceDisagreement { .. }))
                .is_empty());
        }
    }

    #[test]
    fn clean_run_reports_no_faults() {
        let mut system = InsightSystem::new(SystemConfig::small(1200, 11)).unwrap();
        let report = system.run().unwrap();
        assert!(report.faults.is_clean(), "unexpected faults: {}", report.faults);
        assert_eq!(report.faults.to_string(), "no faults");
        assert_eq!(report.faults.total_faults(), 0);
    }

    #[test]
    fn fault_report_extracts_degradation_counters() {
        let registry = MetricsRegistry::new();
        registry.counter("rtec.north.malformed_sdes").add(3);
        registry.counter("rtec.south.malformed_sdes").add(2);
        registry.counter("crowd.fallbacks").add(1);
        registry.counter("crowd.retries").add(4);
        let stage = registry.stage("rtec-north");
        stage.faults.add(2);
        stage.panics.inc();
        stage.skipped.add(2);
        let report = FaultReport::from_snapshot(&registry.snapshot());
        assert!(!report.is_clean());
        assert_eq!(report.malformed_sdes, 5);
        assert_eq!(report.crowd_fallbacks, 1);
        assert_eq!(report.crowd_retries, 4);
        assert_eq!(report.total_faults(), 2);
        let s = report.per_stage.get("rtec-north").expect("faulted stage listed");
        assert_eq!((s.faults, s.panics, s.skipped), (2, 1, 2));
        let rendered = report.to_string();
        assert!(rendered.contains("rtec-north"), "{rendered}");
        assert!(rendered.contains("5 malformed SDEs"), "{rendered}");
    }

    #[test]
    fn map_renders_after_a_run() {
        let mut system = InsightSystem::new(SystemConfig::small(1200, 5)).unwrap();
        system.run().unwrap();
        let ppm = system.render_map(120, 90).unwrap();
        assert!(ppm.starts_with("P3\n120 90\n255\n"));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut s = InsightSystem::new(SystemConfig::small(1200, seed)).unwrap();
            let r = s.run().unwrap();
            (r.alerts.len(), r.windows.len())
        };
        assert_eq!(run(7), run(7));
    }
}
