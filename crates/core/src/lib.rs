//! # insight-core — the integrated urban traffic management system
//!
//! Wires the component crates into the architecture of Figure 1 of the
//! EDBT 2014 paper:
//!
//! ```text
//!  buses ─┐                      ┌─> operator alerts
//!         ├─ mediators ─ Streams ┼─> RTEC (4 region engines) ─┐
//!  SCATS ─┘                      └─> traffic model (GP)       │
//!              ▲                                              │
//!              │         crowd answers      sourceDisagreement CEs
//!              └──── crowdsourcing component <────────────────┘
//! ```
//!
//! * [`items`] — conversions between scenario SDE records and Streams
//!   [`insight_streams::item::DataItem`]s;
//! * [`alerts`] — the operator-facing alert types (the paper's interactive
//!   map is replaced by a typed alert feed);
//! * [`crowdbridge`] — the crowdsourcing component assembled from
//!   [`insight_crowd`]: query execution engine + online EM, with simulated
//!   participants answering from the scenario's ground truth;
//! * [`modelsvc`] — the traffic-modelling component as a Streams *service*:
//!   GP regression over the street graph from the latest SCATS readings;
//! * [`pipeline`] — the Streams topology of §3 (input handling, event
//!   processing, crowdsourcing processes);
//! * [`replay`] — schedule-invariance checking: the §3 topology under the
//!   deterministic replay scheduler, asserting byte-identical canonical
//!   recognitions across scheduler seeds;
//! * [`system`] — [`system::InsightSystem`]: the closed recognition loop
//!   driving windows, crowdsourcing and feedback, used by the experiments.

#![warn(missing_docs)]

pub mod alerts;
pub mod crowdbridge;
pub mod items;
pub mod modelsvc;
pub mod pipeline;
pub mod proactive;
pub mod replay;
pub mod system;

pub use alerts::OperatorAlert;
pub use crowdbridge::CrowdBridge;
pub use modelsvc::TrafficModelService;
pub use system::{InsightSystem, SystemConfig, SystemReport};
