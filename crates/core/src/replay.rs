//! Schedule-invariance checking for the §3 pipeline.
//!
//! The paper's dataflow decomposition is only sound if the recognition
//! output does not depend on how the processes happen to interleave. This
//! module turns that claim into an executable assertion: run the Dublin
//! topology under the deterministic replay scheduler
//! ([`insight_streams::replay::ReplayRuntime`]) once per seed — each seed is
//! one exact interleaving — canonicalise each run's recognition summaries,
//! and require the canonical forms to be byte-identical.
//!
//! Canonicalisation removes the two legitimate sources of run-to-run
//! variation that carry no information: the *order* in which summaries reach
//! the collecting sink (regions race each other by design; the summaries are
//! sorted by `(query_time, region)`), and wall-clock measurements
//! (`recognition_ns`, which times the host, not the data).

use crate::pipeline::{build_pipeline, build_pipeline_with, PipelineOptions};
use insight_datagen::scenario::Scenario;
use insight_rtec::window::WindowConfig;
use insight_streams::error::StreamsError;
use insight_streams::item::DataItem;
use insight_streams::replay::ReplayRuntime;
use insight_traffic::TrafficRulesConfig;

/// Attributes that measure the host rather than the data; stripped before
/// comparison.
const WALL_CLOCK_ATTRS: [&str; 1] = ["recognition_ns"];

/// Canonical textual form of a batch of recognition summaries: wall-clock
/// attributes removed, one JSON object per line, lines sorted by
/// `(query_time, region)` and then lexicographically. Two runs recognised
/// the same thing iff their canonical forms are byte-identical.
pub fn canonical_recognitions(items: &[DataItem]) -> String {
    let mut lines: Vec<((i64, String), String)> = items
        .iter()
        .map(|item| {
            let mut item = item.clone();
            for attr in WALL_CLOCK_ATTRS {
                item.remove(attr);
            }
            let key = (
                item.get_i64("query_time").unwrap_or(i64::MIN),
                item.get_str("region").unwrap_or("").to_string(),
            );
            (key, item.to_json())
        })
        .collect();
    lines.sort();
    let mut out = String::new();
    for (_, line) in lines {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Runs the full §3 topology over `scenario` under the replay scheduler with
/// `seed` and returns the canonical recognition output.
pub fn replay_recognitions(
    scenario: &Scenario,
    rules: TrafficRulesConfig,
    window: WindowConfig,
    seed: u64,
) -> Result<String, StreamsError> {
    let (topology, sink) = build_pipeline(scenario, rules.clone(), window)?;
    ReplayRuntime::new(topology, seed).run()?;
    Ok(canonical_recognitions(&sink.items()))
}

/// [`replay_recognitions`] with explicit shard counts, so conformance can
/// assert that the canonical output is also invariant in the replica counts
/// of the partitioned stages.
pub fn replay_recognitions_with(
    scenario: &Scenario,
    rules: TrafficRulesConfig,
    window: WindowConfig,
    seed: u64,
    options: &PipelineOptions,
) -> Result<String, StreamsError> {
    let (topology, sink) = build_pipeline_with(scenario, rules.clone(), window, options)?;
    ReplayRuntime::new(topology, seed).run()?;
    Ok(canonical_recognitions(&sink.items()))
}

/// Asserts that the Dublin topology produces byte-identical canonical
/// recognition output under every scheduler seed in `seeds`.
///
/// Panics with the offending seed pair and a line-level diff summary on the
/// first divergence, so a failure is immediately replayable:
/// `ReplayRuntime::new(topology, seed)` reproduces the exact interleaving.
pub fn assert_schedule_invariant(
    scenario: &Scenario,
    rules: TrafficRulesConfig,
    window: WindowConfig,
    seeds: &[u64],
) {
    assert!(!seeds.is_empty(), "at least one seed required");
    let mut baseline: Option<(u64, String)> = None;
    for &seed in seeds {
        let output = replay_recognitions(scenario, rules.clone(), window, seed)
            .unwrap_or_else(|e| panic!("replay under seed {seed} failed: {e}"));
        match &baseline {
            None => baseline = Some((seed, output)),
            Some((base_seed, base)) => {
                if output != *base {
                    let diff = first_line_diff(base, &output);
                    panic!(
                        "SCHEDULE DIVERGENCE: seeds {base_seed} and {seed} disagree \
                         ({} vs {} canonical lines){diff}\n\
                         replay with ReplayRuntime::new(topology, {base_seed}) vs \
                         ReplayRuntime::new(topology, {seed})",
                        base.lines().count(),
                        output.lines().count(),
                    );
                }
            }
        }
    }
}

/// Renders the first differing canonical line of two outputs.
fn first_line_diff(a: &str, b: &str) -> String {
    for (i, pair) in a.lines().zip(b.lines()).enumerate() {
        if pair.0 != pair.1 {
            return format!("\nfirst differing line {}:\n  - {}\n  + {}", i + 1, pair.0, pair.1);
        }
    }
    let (short, long, side) =
        if a.lines().count() < b.lines().count() { (a, b, "second") } else { (b, a, "first") };
    match long.lines().nth(short.lines().count()) {
        Some(extra) => format!("\nextra line only in the {side} output:\n  + {extra}"),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalisation_sorts_and_strips_wall_clock() {
        let items = vec![
            DataItem::new()
                .with("kind", "recognition")
                .with("query_time", 600i64)
                .with("region", "north")
                .with("recognition_ns", 12345i64),
            DataItem::new()
                .with("kind", "recognition")
                .with("query_time", 300i64)
                .with("region", "south")
                .with("recognition_ns", 999i64),
        ];
        let canon = canonical_recognitions(&items);
        let lines: Vec<&str> = canon.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("300"), "sorted by query_time first: {canon}");
        assert!(!canon.contains("recognition_ns"), "wall clock stripped: {canon}");
        // Reordering the input does not change the canonical form.
        let reversed: Vec<DataItem> = items.iter().rev().cloned().collect();
        assert_eq!(canon, canonical_recognitions(&reversed));
    }

    #[test]
    fn line_diff_pinpoints_first_divergence() {
        let d = first_line_diff("a\nb\nc\n", "a\nX\nc\n");
        assert!(d.contains("line 2"), "{d}");
        assert!(d.contains("- b") && d.contains("+ X"), "{d}");
        let d = first_line_diff("a\n", "a\nb\n");
        assert!(d.contains("extra line"), "{d}");
    }
}
