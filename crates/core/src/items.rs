//! SDE records as Streams data items.
//!
//! The Streams framework represents stream elements as key/value sets; the
//! input handling processes of §3 forward "all SDEs emitted by buses" as one
//! stream and the SCATS SDEs as four per-region streams. These conversions
//! define the item schema shared by those processes.

use insight_datagen::scenario::Scenario;
use insight_datagen::stream::{BusRecord, ScatsRecord, Sde, SdeBody};
use insight_streams::item::DataItem;

/// Item key holding the SDE kind (`"bus"` / `"scats"`).
pub const KIND: &str = "kind";

/// Converts a scenario SDE into a data item.
pub fn sde_to_item(sde: &Sde) -> DataItem {
    // `name()` is a static string short enough to stay inline in the value,
    // so region tagging does not allocate.
    let base = DataItem::new()
        .with("time", sde.time)
        .with("arrival", sde.arrival)
        .with("region", sde.region().name());
    match &sde.body {
        SdeBody::Bus(b) => base
            .with(KIND, "bus")
            .with("bus", b.bus as i64)
            .with("line", b.line as i64)
            .with("operator", b.operator as i64)
            .with("delay", b.delay_s)
            .with("lon", b.lon)
            .with("lat", b.lat)
            .with("direction", b.direction as i64)
            .with("congestion", b.congestion),
        SdeBody::Scats(s) => base
            .with(KIND, "scats")
            .with("intersection", s.intersection as i64)
            .with("approach", s.approach as i64)
            .with("sensor", s.sensor as i64)
            .with("density", s.density)
            .with("flow", s.flow)
            .with("lon", s.lon)
            .with("lat", s.lat),
    }
}

/// The pre-built per-feed item vectors of the §3 input-handling processes:
/// one bus stream plus four per-region SCATS streams.
pub struct FeedItems {
    /// Items of every bus SDE, in arrival order.
    pub bus: Vec<DataItem>,
    /// Items of each region's SCATS SDEs, indexed by
    /// [`insight_datagen::regions::Region::index`], each in arrival order.
    pub scats: [Vec<DataItem>; 4],
}

/// Builds every feed's items in one pass over the scenario trace (the old
/// per-feed construction filtered the full trace once per feed — five
/// passes and five region recomputations per SDE).
pub fn feed_items(scenario: &Scenario) -> FeedItems {
    let mut bus = Vec::new();
    let mut scats: [Vec<DataItem>; 4] = Default::default();
    for sde in &scenario.sdes {
        let item = sde_to_item(sde);
        match &sde.body {
            SdeBody::Bus(_) => bus.push(item),
            SdeBody::Scats(s) => scats[s.region().index()].push(item),
        }
    }
    FeedItems { bus, scats }
}

/// Parses a data item back into an SDE; `None` when the schema is violated.
pub fn item_to_sde(item: &DataItem) -> Option<Sde> {
    let time = item.get_i64("time")?;
    let arrival = item.get_i64("arrival")?;
    let body = match item.get_str(KIND)? {
        "bus" => SdeBody::Bus(BusRecord {
            bus: item.get_i64("bus")? as u32,
            line: item.get_i64("line")? as u32,
            operator: item.get_i64("operator")? as u32,
            delay_s: item.get_i64("delay")?,
            lon: item.get_f64("lon")?,
            lat: item.get_f64("lat")?,
            direction: item.get_i64("direction")? as u8,
            congestion: item.get_bool("congestion")?,
        }),
        "scats" => SdeBody::Scats(ScatsRecord {
            intersection: item.get_i64("intersection")? as u32,
            approach: item.get_i64("approach")? as u8,
            sensor: item.get_i64("sensor")? as u32,
            density: item.get_f64("density")?,
            flow: item.get_f64("flow")?,
            lon: item.get_f64("lon")?,
            lat: item.get_f64("lat")?,
        }),
        _ => return None,
    };
    Some(Sde { time, arrival, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus_sde() -> Sde {
        Sde {
            time: 100,
            arrival: 120,
            body: SdeBody::Bus(BusRecord {
                bus: 33009,
                line: 10,
                operator: 7,
                delay_s: 400,
                lon: -6.26,
                lat: 53.35,
                direction: 1,
                congestion: true,
            }),
        }
    }

    fn scats_sde() -> Sde {
        Sde {
            time: 360,
            arrival: 360,
            body: SdeBody::Scats(ScatsRecord {
                intersection: 4,
                approach: 1,
                sensor: 12,
                density: 90.5,
                flow: 1100.0,
                lon: -6.27,
                lat: 53.34,
            }),
        }
    }

    #[test]
    fn bus_roundtrip() {
        let item = sde_to_item(&bus_sde());
        assert_eq!(item.get_str(KIND), Some("bus"));
        assert_eq!(item.get_str("region"), Some("central"));
        assert_eq!(item_to_sde(&item).unwrap(), bus_sde());
    }

    #[test]
    fn scats_roundtrip() {
        let item = sde_to_item(&scats_sde());
        assert_eq!(item.get_str(KIND), Some("scats"));
        assert_eq!(item_to_sde(&item).unwrap(), scats_sde());
    }

    #[test]
    fn malformed_items_rejected() {
        assert!(item_to_sde(&DataItem::new()).is_none());
        let mut item = sde_to_item(&bus_sde());
        item.set(KIND, "unknown");
        assert!(item_to_sde(&item).is_none());
        let mut item = sde_to_item(&bus_sde());
        item.remove("lon");
        assert!(item_to_sde(&item).is_none());
    }
}
