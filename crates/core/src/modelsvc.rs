//! The traffic-modelling component as a Streams service.
//!
//! "The procedure for making congestion estimates at locations with low
//! sensor coverage is wrapped as a Streams service" (§3). The service keeps
//! the street graph, ingests aggregated SCATS readings (and, per §6, any
//! other source of located congestion information — including crowd
//! verdicts), and on demand fits the GP of §6 to produce flow estimates at
//! unobserved junctions.

use insight_datagen::network::StreetNetwork;
use insight_gp::graph::Graph;
use insight_gp::kernel::RegularizedLaplacian;
use insight_gp::regression::{GpRegression, Posterior};
use insight_gp::GpError;
use insight_streams::service::Service;
use std::collections::HashMap;
use std::sync::Mutex;

/// Converts a generated street network into a GP graph.
pub fn to_gp_graph(network: &StreetNetwork) -> Graph {
    Graph::new(network.junctions().to_vec(), network.segments())
        .expect("street network is a valid graph")
}

/// The traffic-modelling service.
pub struct TrafficModelService {
    graph: Graph,
    kernel: RegularizedLaplacian,
    noise_variance: f64,
    /// Latest reading per junction (vertex -> flow).
    readings: Mutex<HashMap<usize, f64>>,
}

impl Service for TrafficModelService {}

impl TrafficModelService {
    /// Builds the service over a street network with the given kernel
    /// hyperparameters.
    pub fn new(
        network: &StreetNetwork,
        kernel: RegularizedLaplacian,
        noise_variance: f64,
    ) -> TrafficModelService {
        TrafficModelService {
            graph: to_gp_graph(network),
            kernel,
            noise_variance,
            readings: Mutex::new(HashMap::new()),
        }
    }

    /// Records a flow observation at the junction nearest to `(lon, lat)` —
    /// a SCATS reading or any other located information (e.g. a crowd
    /// verdict mapped to a nominal flow).
    pub fn observe(&self, lon: f64, lat: f64, flow: f64) {
        if let Some(v) = self.graph.nearest_vertex(lon, lat) {
            self.readings.lock().unwrap().insert(v, flow);
        }
    }

    /// Number of junctions currently observed.
    pub fn observed_count(&self) -> usize {
        self.readings.lock().unwrap().len()
    }

    /// Clears accumulated readings (start of a new aggregation interval).
    pub fn reset(&self) {
        self.readings.lock().unwrap().clear();
    }

    /// Fits the GP on the current readings and predicts flow at every
    /// unobserved junction.
    pub fn estimate_unobserved(&self) -> Result<Posterior, GpError> {
        let observations: Vec<(usize, f64)> =
            self.readings.lock().unwrap().iter().map(|(&v, &f)| (v, f)).collect();
        let gp =
            GpRegression::fit(&self.graph, &self.kernel, &observations, self.noise_variance, true)?;
        gp.predict_unobserved()
    }

    /// Fits the GP and predicts at every junction (for map rendering).
    pub fn estimate_all(&self) -> Result<Posterior, GpError> {
        let observations: Vec<(usize, f64)> =
            self.readings.lock().unwrap().iter().map(|(&v, &f)| (v, f)).collect();
        let gp =
            GpRegression::fit(&self.graph, &self.kernel, &observations, self.noise_variance, true)?;
        gp.predict_all()
    }

    /// The underlying GP graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insight_datagen::network::NetworkConfig;

    fn service() -> (StreetNetwork, TrafficModelService) {
        let net = StreetNetwork::generate(
            &NetworkConfig { nx: 8, ny: 6, ..NetworkConfig::dublin_default() },
            11,
        )
        .unwrap();
        let svc = TrafficModelService::new(&net, RegularizedLaplacian::new(3.0, 1.0).unwrap(), 0.1);
        (net, svc)
    }

    #[test]
    fn graph_conversion_preserves_structure() {
        let (net, svc) = service();
        assert_eq!(svc.graph().len(), net.len());
        assert_eq!(svc.graph().edge_count(), net.segments().len());
        assert!(svc.graph().is_connected());
    }

    #[test]
    fn observe_maps_to_nearest_junction() {
        let (net, svc) = service();
        let (lon, lat) = net.coords(5);
        svc.observe(lon, lat, 1200.0);
        assert_eq!(svc.observed_count(), 1);
        // Observing the same location twice replaces, not duplicates.
        svc.observe(lon, lat, 1100.0);
        assert_eq!(svc.observed_count(), 1);
        svc.reset();
        assert_eq!(svc.observed_count(), 0);
    }

    #[test]
    fn estimates_cover_unobserved_junctions() {
        let (net, svc) = service();
        for v in (0..net.len()).step_by(3) {
            let (lon, lat) = net.coords(v);
            svc.observe(lon, lat, 900.0 + v as f64);
        }
        let posterior = svc.estimate_unobserved().unwrap();
        assert_eq!(posterior.targets.len(), net.len() - svc.observed_count());
        assert!(posterior.mean.iter().all(|m| m.is_finite()));
        let all = svc.estimate_all().unwrap();
        assert_eq!(all.targets.len(), net.len());
    }

    #[test]
    fn no_observations_is_an_error() {
        let (_, svc) = service();
        assert!(svc.estimate_unobserved().is_err());
    }
}
