//! Operator-facing alerts.
//!
//! "The system helps an operator manage the traffic situation … issue alerts
//! when issues that may impact traffic are identified" (§2). The paper's
//! interactive map is replaced by a typed alert feed any front-end could
//! render.

use std::fmt;

/// An alert delivered to the city operator.
#[derive(Debug, Clone, PartialEq)]
pub enum OperatorAlert {
    /// A SCATS intersection is congested.
    IntersectionCongestion {
        /// Longitude.
        lon: f64,
        /// Latitude.
        lat: f64,
        /// When the congestion started.
        since: i64,
    },
    /// Buses report congestion at an area of interest.
    BusCongestion {
        /// Longitude.
        lon: f64,
        /// Latitude.
        lat: f64,
        /// When the congestion started.
        since: i64,
    },
    /// Bus and SCATS sources disagree; optionally labelled with the crowd's
    /// resolution (§2: "CEs are labelled with the details obtained from the
    /// participants").
    SourceDisagreement {
        /// Longitude.
        lon: f64,
        /// Latitude.
        lat: f64,
        /// When the disagreement started.
        since: i64,
        /// The crowd's verdict, when it arrived in time: `true` =
        /// congestion confirmed.
        crowd_verdict: Option<bool>,
        /// The crowd's posterior confidence in the verdict.
        confidence: Option<f64>,
    },
    /// A bus was marked unreliable.
    NoisyBus {
        /// Vehicle id.
        bus: i64,
        /// When it became noisy.
        since: i64,
    },
    /// A sharp delay increase — congestion in the making.
    DelayIncrease {
        /// Vehicle id.
        bus: i64,
        /// Where it was observed (end position).
        lon: f64,
        /// Latitude.
        lat: f64,
        /// When.
        at: i64,
    },
    /// A flow or density trend on a sensor.
    Trend {
        /// Intersection id.
        intersection: i64,
        /// Sensor id.
        sensor: i64,
        /// `"flow"` or `"density"`.
        quantity: &'static str,
        /// `true` = increasing.
        rising: bool,
        /// When.
        at: i64,
    },
}

impl OperatorAlert {
    /// The alert's timestamp.
    pub fn time(&self) -> i64 {
        match self {
            OperatorAlert::IntersectionCongestion { since, .. }
            | OperatorAlert::BusCongestion { since, .. }
            | OperatorAlert::SourceDisagreement { since, .. }
            | OperatorAlert::NoisyBus { since, .. } => *since,
            OperatorAlert::DelayIncrease { at, .. } | OperatorAlert::Trend { at, .. } => *at,
        }
    }
}

impl fmt::Display for OperatorAlert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OperatorAlert::IntersectionCongestion { lon, lat, since } => {
                write!(f, "[{since}] congestion at SCATS intersection ({lon:.5}, {lat:.5})")
            }
            OperatorAlert::BusCongestion { lon, lat, since } => {
                write!(f, "[{since}] buses report congestion near ({lon:.5}, {lat:.5})")
            }
            OperatorAlert::SourceDisagreement { lon, lat, since, crowd_verdict, confidence } => {
                write!(f, "[{since}] source disagreement at ({lon:.5}, {lat:.5})")?;
                match (crowd_verdict, confidence) {
                    (Some(v), Some(c)) => write!(
                        f,
                        " — crowd says {} (confidence {:.2})",
                        if *v { "congested" } else { "clear" },
                        c
                    ),
                    (Some(v), None) => {
                        write!(f, " — crowd says {}", if *v { "congested" } else { "clear" })
                    }
                    _ => write!(f, " — unresolved"),
                }
            }
            OperatorAlert::NoisyBus { bus, since } => {
                write!(f, "[{since}] bus {bus} marked unreliable")
            }
            OperatorAlert::DelayIncrease { bus, lon, lat, at } => {
                write!(f, "[{at}] sharp delay increase of bus {bus} near ({lon:.5}, {lat:.5})")
            }
            OperatorAlert::Trend { intersection, sensor, quantity, rising, at } => write!(
                f,
                "[{at}] {quantity} {} on sensor {sensor} (intersection {intersection})",
                if *rising { "rising" } else { "falling" }
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_accessor() {
        let a = OperatorAlert::NoisyBus { bus: 1, since: 42 };
        assert_eq!(a.time(), 42);
        let a = OperatorAlert::DelayIncrease { bus: 1, lon: 0.0, lat: 0.0, at: 77 };
        assert_eq!(a.time(), 77);
    }

    #[test]
    fn display_variants() {
        let a = OperatorAlert::SourceDisagreement {
            lon: -6.26,
            lat: 53.35,
            since: 10,
            crowd_verdict: Some(true),
            confidence: Some(0.97),
        };
        let s = a.to_string();
        assert!(s.contains("disagreement") && s.contains("congested") && s.contains("0.97"));
        let unresolved = OperatorAlert::SourceDisagreement {
            lon: 0.0,
            lat: 0.0,
            since: 0,
            crowd_verdict: None,
            confidence: None,
        };
        assert!(unresolved.to_string().contains("unresolved"));
        let t = OperatorAlert::Trend {
            intersection: 1,
            sensor: 2,
            quantity: "flow",
            rising: false,
            at: 5,
        };
        assert!(t.to_string().contains("falling"));
    }
}
