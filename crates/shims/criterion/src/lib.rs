//! Offline shim for the subset of the `criterion` API used by the bench
//! harnesses in `crates/bench`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! a small wall-clock measurement harness with criterion's call surface:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`criterion_group!`]/[`criterion_main!`], plus
//! [`Throughput`] and [`BenchmarkId`]. Each benchmark reports the median
//! per-iteration time over `sample_size` samples (and element throughput
//! when configured). Under `cargo test`/`cargo bench --test` the binaries
//! run each closure once as a smoke test, like upstream criterion.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Work-per-iteration declaration used to derive throughput numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendering as `name/parameter`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId { name: format!("{function_name}/{parameter}") }
    }

    /// An id from the parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// Drives the timing loop of one benchmark.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Collected per-iteration medians, nanoseconds.
    result_ns: Option<f64>,
}

#[derive(Clone, Copy)]
struct Config {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config { sample_size: 20, test_mode: false }
    }
}

impl<'a> Bencher<'a> {
    /// Times `routine`, storing the median per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.config.test_mode {
            black_box(routine());
            self.result_ns = Some(0.0);
            return;
        }
        // Warm-up + calibration: find an iteration count worth ≳2 ms.
        let mut iters_per_sample = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(2) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size.max(2) {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples_ns.push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = Some(samples_ns[samples_ns.len() / 2]);
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, median_ns: f64, throughput: Option<Throughput>, test_mode: bool) {
    if test_mode {
        println!("{name}: ok (test mode)");
        return;
    }
    match throughput {
        Some(Throughput::Elements(n)) if median_ns > 0.0 => {
            let rate = n as f64 / (median_ns / 1e9);
            println!("{name}: {} / iter ({rate:.0} elem/s)", human_time(median_ns));
        }
        Some(Throughput::Bytes(n)) if median_ns > 0.0 => {
            let rate = n as f64 / (median_ns / 1e9) / (1024.0 * 1024.0);
            println!("{name}: {} / iter ({rate:.1} MiB/s)", human_time(median_ns));
        }
        _ => println!("{name}: {} / iter", human_time(median_ns)),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group_name: String,
    config: Config,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Declares the work per iteration for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut bencher = Bencher { config: &self.config, result_ns: None };
        f(&mut bencher, input);
        let full_name = format!("{}/{}", self.group_name, id.name);
        if let Some(ns) = bencher.result_ns {
            report(&full_name, ns, self.throughput, self.config.test_mode);
        }
        let _ = &self.criterion;
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut bencher = Bencher { config: &self.config, result_ns: None };
        f(&mut bencher);
        let full_name = format!("{}/{name}", self.group_name);
        if let Some(ns) = bencher.result_ns {
            report(&full_name, ns, self.throughput, self.config.test_mode);
        }
        self
    }

    /// Ends the group (upstream writes reports here; the shim prints as it
    /// goes, so this is a no-op kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark manager.
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { config: Config { test_mode, ..Config::default() } }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let config = self.config;
        BenchmarkGroup { criterion: self, group_name: name.to_string(), config, throughput: None }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut bencher = Bencher { config: &self.config, result_ns: None };
        f(&mut bencher);
        if let Some(ns) = bencher.result_ns {
            report(name, ns, None, self.config.test_mode);
        }
        self
    }

    /// Final report hook (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion { config: Config { sample_size: 3, test_mode: false } };
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(10));
        let mut ran = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 10), &10u64, |b, &n| {
            b.iter(|| {
                ran += 1;
                black_box(n * 2)
            })
        });
        group.finish();
        assert!(ran > 0, "the routine must actually run");
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { config: Config { sample_size: 5, test_mode: true } };
        let mut runs = 0u64;
        c.bench_function("once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1, "test mode executes the routine exactly once");
    }

    #[test]
    fn id_and_time_formatting() {
        assert_eq!(BenchmarkId::new("f", 32).name, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").name, "x");
        assert_eq!(human_time(12.3), "12.3 ns");
        assert_eq!(human_time(12_300.0), "12.30 µs");
        assert_eq!(human_time(12_300_000.0), "12.30 ms");
        assert_eq!(human_time(2_500_000_000.0), "2.50 s");
    }
}
