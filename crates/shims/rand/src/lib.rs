//! Offline shim for the subset of the `rand` 0.9 API used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate provides
//! a drop-in, deterministic replacement: `StdRng` is xoshiro256++ seeded via
//! SplitMix64 (`seed_from_u64`), with `Rng::random`, `Rng::random_range`,
//! `Rng::random_bool` and `seq::SliceRandom::shuffle`. Streams are *not*
//! bit-compatible with upstream `rand`; all workspace tests assert
//! distributional/qualitative properties, not exact sequences.

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types sampleable uniformly over their whole domain (`Rng::random`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (`f64` in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Derives a full generator state from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// The standard generator: xoshiro256++ (Blackman & Vigna), seeded through
/// SplitMix64 as its authors recommend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        StdRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generators (mirror of `rand::rngs`).
pub mod rngs {
    pub use crate::StdRng;
}

/// Sequence-related helpers (mirror of `rand::seq`).
pub mod seq {
    use crate::{Rng, RngCore};

    /// Extension methods for slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.random_range(-5i64..7);
            assert!((-5..7).contains(&v));
            let w = rng.random_range(3usize..=9);
            assert!((3..=9).contains(&w));
            let f = rng.random_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c} far from uniform");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_and_bool() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(Vec::<u8>::new().as_slice().choose(&mut rng).is_none());
        let xs = [1, 2, 3];
        assert!(xs.contains(xs.as_slice().choose(&mut rng).unwrap()));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 hit count {hits}");
    }
}
