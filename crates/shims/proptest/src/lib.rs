//! Offline shim for the subset of the `proptest` API used by this workspace.
//!
//! Provides deterministic random-input property testing: the [`proptest!`]
//! macro runs each property over `PROPTEST_CASES` (default 128) generated
//! inputs with a per-test deterministic seed. Unlike upstream proptest there
//! is **no shrinking** — a failing case panics with the ordinary assertion
//! message (inputs are printed by the harness via `PROPTEST_VERBOSE=1`).

use rand::{Rng, RngCore, SeedableRng, StdRng};

/// A generator of values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred`, resampling instead (mirror
    /// of upstream `prop_filter`; no shrinking, so `reason` only labels the
    /// panic raised if the filter keeps rejecting).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, reason, pred }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// The strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}): rejected 1000 consecutive samples", self.reason);
    }
}

/// A weighted union over boxed strategies (the engine behind
/// [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds the union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof: weights sum to zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.random_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weight sampling out of range")
    }
}

/// Mirror of upstream `prop_oneof!`: draws from one of several strategies,
/// uniformly or with `weight => strategy` arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>)),+])
    };
}

macro_rules! impl_numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_numeric_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Marker for types with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.random()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    /// Uniform over bit patterns — includes subnormals, ±0, infinities and
    /// NaNs; filter with `prop_filter` where finiteness matters.
    fn arbitrary(rng: &mut StdRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for char {
    /// Escape-path-heavy character mix: mostly printable ASCII, with JSON
    /// specials, control characters, and arbitrary Unicode (including
    /// astral-plane codepoints) mixed in.
    fn arbitrary(rng: &mut StdRng) -> char {
        const SPECIALS: &[char] =
            &['"', '\\', '/', '\n', '\r', '\t', '\u{0}', '\u{8}', '\u{c}', '\u{1f}', '\u{7f}'];
        match rng.random_range(0u32..10) {
            0 => SPECIALS[rng.random_range(0..SPECIALS.len())],
            1 => loop {
                if let Some(c) = char::from_u32(rng.random_range(0u32..0x11_0000)) {
                    break c;
                }
            },
            _ => char::from_u32(rng.random_range(0x20u32..0x7f)).expect("printable ASCII"),
        }
    }
}

impl Arbitrary for String {
    /// Up to 32 [`Arbitrary`] characters.
    fn arbitrary(rng: &mut StdRng) -> String {
        let n = rng.random_range(0..32usize);
        (0..n).map(|_| char::arbitrary(rng)).collect()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over every value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// A strategy that always yields a clone of `value`.
pub struct JustStrategy<T: Clone>(T);

impl<T: Clone> Strategy for JustStrategy<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Mirror of `proptest::strategy::Just`.
#[allow(non_snake_case)]
pub fn Just<T: Clone>(value: T) -> JustStrategy<T> {
    JustStrategy(value)
}

/// Boolean strategies (mirror of `proptest::bool`).
pub mod bool {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// The strategy drawing either boolean uniformly.
    #[derive(Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.random()
        }
    }

    /// Uniformly random booleans.
    pub const ANY: BoolAny = BoolAny;
}

/// Collection strategies (mirror of `proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Admissible length specifications for [`vec`].
    pub trait SizeRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` strategy with the given element strategy and length range.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// The strategy returned by [`btree_map`].
    pub struct BTreeMapStrategy<K, V, L> {
        key: K,
        value: V,
        len: L,
    }

    impl<K, V, L> Strategy for BTreeMapStrategy<K, V, L>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        L: SizeRange,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            // Duplicate keys overwrite, as upstream: the map may come out
            // smaller than the drawn length.
            let n = self.len.sample_len(rng);
            (0..n).map(|_| (self.key.sample(rng), self.value.sample(rng))).collect()
        }
    }

    /// A `BTreeMap` strategy with the given key/value strategies and length
    /// range (before key deduplication).
    pub fn btree_map<K, V, L>(key: K, value: V, len: L) -> BTreeMapStrategy<K, V, L>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        L: SizeRange,
    {
        BTreeMapStrategy { key, value, len }
    }
}

/// Option strategies (mirror of `proptest::option`).
pub mod option {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// The strategy returned by [`weighted`].
    pub struct WeightedOption<S> {
        p_some: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for WeightedOption<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            rng.random_bool(self.p_some).then(|| self.inner.sample(rng))
        }
    }

    /// `Some(inner)` with probability `p_some`, `None` otherwise.
    pub fn weighted<S: Strategy>(p_some: f64, inner: S) -> WeightedOption<S> {
        WeightedOption { p_some, inner }
    }
}

/// Everything a property-test module normally imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, Strategy,
    };
}

/// Number of cases each property runs (overridable via `PROPTEST_CASES`).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(128)
}

/// Deterministic per-test, per-case generator used by [`proptest!`].
pub fn test_rng(test_path: &str, case: u32) -> StdRng {
    // FNV-1a over the test path, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// Runs the body for every generated input (no shrinking on failure).
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($argpat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cases = $crate::cases();
            for __case in 0..__cases {
                let mut __rng = $crate::test_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $argpat = $crate::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

/// Assertion macro (plain `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion macro (plain `assert_eq!`; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion macro (plain `assert_ne!`; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0i64..10, (a, b) in (0usize..5, -1.0f64..1.0)) {
            prop_assert!((0..10).contains(&x));
            prop_assert!(a < 5);
            prop_assert!((-1.0..1.0).contains(&b));
        }

        #[test]
        fn collections_and_options(
            mut v in crate::collection::vec(0u8..4, 1..9),
            o in crate::option::weighted(0.5, 0i64..3),
            flag in any::<bool>(),
            c in crate::bool::ANY,
        ) {
            v.sort_unstable();
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 4));
            if let Some(x) = o {
                prop_assert!((0..3).contains(&x));
            }
            prop_assert!(flag as u8 <= 1);
            prop_assert!(c as u8 <= 1);
        }

        #[test]
        fn prop_map_applies(s in (0i64..5).prop_map(|x| x * 2)) {
            prop_assert!(s % 2 == 0 && s < 10);
        }
    }

    #[test]
    fn deterministic_rng_per_test_and_case() {
        use rand::RngCore;
        let mut a = crate::test_rng("mod::t", 3);
        let mut b = crate::test_rng("mod::t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_rng("mod::t", 4);
        assert_ne!(crate::test_rng("mod::t", 3).next_u64(), c.next_u64());
    }
}
