//! Property-based tests for the interval algebra.
//!
//! The interval list operations must behave exactly like the corresponding
//! set operations on time-points; these properties compare each operation
//! against a brute-force bitset model over a small universe.

use insight_rtec::interval::{Interval, IntervalList};
use proptest::prelude::*;

const UNIVERSE: i64 = 64;

/// Arbitrary interval list inside [0, UNIVERSE), possibly with an open tail.
fn arb_list() -> impl Strategy<Value = IntervalList> {
    (
        proptest::collection::vec((0i64..UNIVERSE, 1i64..16), 0..6),
        proptest::option::weighted(0.2, 0i64..UNIVERSE),
    )
        .prop_map(|(spans, open)| {
            let mut ivs: Vec<Interval> =
                spans.into_iter().map(|(s, len)| Interval::span(s, s + len)).collect();
            if let Some(o) = open {
                ivs.push(Interval::open_from(o));
            }
            IntervalList::from_intervals(ivs)
        })
}

/// Membership model: which t in [0, 2*UNIVERSE) are covered. Open intervals
/// cover everything from their start to the end of the model range.
fn model(l: &IntervalList) -> Vec<bool> {
    (0..2 * UNIVERSE).map(|t| l.contains(t)).collect()
}

fn assert_matches_model(result: &IntervalList, expected: &[bool]) {
    for (t, &want) in expected.iter().enumerate() {
        assert_eq!(result.contains(t as i64), want, "mismatch at t={t}");
    }
}

proptest! {
    #[test]
    fn construction_is_normalised(l in arb_list()) {
        prop_assert!(l.is_normalised());
    }

    #[test]
    fn union_matches_pointwise_or(a in arb_list(), b in arb_list()) {
        let u = a.union(&b);
        prop_assert!(u.is_normalised());
        let (ma, mb) = (model(&a), model(&b));
        let expected: Vec<bool> = ma.iter().zip(&mb).map(|(x, y)| *x || *y).collect();
        assert_matches_model(&u, &expected);
    }

    #[test]
    fn intersect_matches_pointwise_and(a in arb_list(), b in arb_list()) {
        let i = a.intersect(&b);
        prop_assert!(i.is_normalised());
        let (ma, mb) = (model(&a), model(&b));
        let expected: Vec<bool> = ma.iter().zip(&mb).map(|(x, y)| *x && *y).collect();
        assert_matches_model(&i, &expected);
    }

    #[test]
    fn difference_matches_pointwise_andnot(a in arb_list(), b in arb_list()) {
        let d = a.difference(&b);
        prop_assert!(d.is_normalised());
        let (ma, mb) = (model(&a), model(&b));
        let expected: Vec<bool> = ma.iter().zip(&mb).map(|(x, y)| *x && !*y).collect();
        assert_matches_model(&d, &expected);
    }

    #[test]
    fn union_commutes_and_intersect_distributes(
        a in arb_list(), b in arb_list(), c in arb_list()
    ) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        // a ∩ (b ∪ c) == (a ∩ b) ∪ (a ∩ c)
        prop_assert_eq!(
            a.intersect(&b.union(&c)),
            a.intersect(&b).union(&a.intersect(&c))
        );
    }

    #[test]
    fn demorgan_via_difference(a in arb_list(), b in arb_list(), base in arb_list()) {
        // base \ (a ∪ b) == (base \ a) \ b
        prop_assert_eq!(
            IntervalList::relative_complement_all(&base, [&a, &b]),
            base.difference(&a).difference(&b)
        );
    }

    #[test]
    fn difference_then_union_restores_subsets(a in arb_list(), b in arb_list()) {
        // (a \ b) ∪ (a ∩ b) == a
        let restored = a.difference(&b).union(&a.intersect(&b));
        prop_assert_eq!(restored, a);
    }

    #[test]
    fn clip_is_intersection_with_window(a in arb_list(), lo in 0i64..UNIVERSE, len in 0i64..UNIVERSE) {
        let clipped = a.clip(lo, lo + len);
        prop_assert!(clipped.is_normalised());
        for t in 0..2 * UNIVERSE {
            let want = a.contains(t) && t >= lo && t < lo + len;
            prop_assert_eq!(clipped.contains(t), want);
        }
    }

    #[test]
    fn from_points_alternation(
        mut inits in proptest::collection::vec(0i64..UNIVERSE, 0..8),
        mut terms in proptest::collection::vec(0i64..UNIVERSE, 0..8),
        initially in any::<bool>(),
    ) {
        inits.sort_unstable();
        terms.sort_unstable();
        let l = IntervalList::from_points(&inits, &terms, initially, 0);
        prop_assert!(l.is_normalised());
        // Simulate inertia point by point: state flips on the earliest
        // pending init/term, terminations first at equal times.
        let mut state = initially;
        for t in 0..UNIVERSE {
            if terms.contains(&t) {
                state = false;
            }
            if inits.contains(&t) {
                state = true;
            }
            prop_assert_eq!(l.contains(t), state, "t={}", t);
        }
    }

    #[test]
    fn after_matches_pointwise_truncation(a in arb_list(), cutoff in 0i64..2 * UNIVERSE) {
        let kept = a.after(cutoff);
        prop_assert!(kept.is_normalised());
        // `after` keeps exactly the time-points at or past the cutoff.
        for t in 0..2 * UNIVERSE {
            let want = a.contains(t) && t >= cutoff;
            prop_assert_eq!(kept.contains(t), want, "t={}", t);
        }
        // An ongoing interval always survives working-memory truncation.
        if a.as_slice().last().is_some_and(|iv| iv.is_open()) {
            prop_assert!(kept.as_slice().last().is_some_and(|iv| iv.is_open()));
        }
    }

    #[test]
    fn union_all_matches_pointwise_any(
        lists in proptest::collection::vec(arb_list(), 0..5)
    ) {
        let u = IntervalList::union_all(lists.iter());
        prop_assert!(u.is_normalised());
        let models: Vec<Vec<bool>> = lists.iter().map(model).collect();
        let expected: Vec<bool> = (0..2 * UNIVERSE as usize)
            .map(|t| models.iter().any(|m| m[t]))
            .collect();
        assert_matches_model(&u, &expected);
        // n-ary == left fold of the binary operation.
        let folded = lists.iter().fold(IntervalList::empty(), |acc, l| acc.union(l));
        prop_assert_eq!(u, folded);
    }

    #[test]
    fn intersect_all_matches_pointwise_all(
        lists in proptest::collection::vec(arb_list(), 0..5)
    ) {
        let i = IntervalList::intersect_all(lists.iter());
        prop_assert!(i.is_normalised());
        // Zero lists intersect to the empty list (no paper rule ever
        // intersects an empty conjunction, so empty — not the universe —
        // is the defined result).
        let models: Vec<Vec<bool>> = lists.iter().map(model).collect();
        let expected: Vec<bool> = (0..2 * UNIVERSE as usize)
            .map(|t| !models.is_empty() && models.iter().all(|m| m[t]))
            .collect();
        assert_matches_model(&i, &expected);
        if let Some((first, rest)) = lists.split_first() {
            let folded = rest.iter().fold(first.clone(), |acc, l| acc.intersect(l));
            prop_assert_eq!(i, folded);
        }
    }

    #[test]
    fn relative_complement_all_matches_base_minus_any(
        base in arb_list(),
        lists in proptest::collection::vec(arb_list(), 0..5)
    ) {
        let d = IntervalList::relative_complement_all(&base, lists.iter());
        prop_assert!(d.is_normalised());
        let mb = model(&base);
        let models: Vec<Vec<bool>> = lists.iter().map(model).collect();
        let expected: Vec<bool> = (0..2 * UNIVERSE as usize)
            .map(|t| mb[t] && !models.iter().any(|m| m[t]))
            .collect();
        assert_matches_model(&d, &expected);
        // Same thing as subtracting the n-ary union in one step.
        prop_assert_eq!(d, base.difference(&IntervalList::union_all(lists.iter())));
    }

    #[test]
    fn total_duration_counts_points(a in arb_list()) {
        let now = UNIVERSE;
        let count = (0..now).filter(|&t| a.contains(t)).count() as i64;
        // Only intervals fully below `now` contribute exactly; clip first.
        prop_assert_eq!(a.clip(0, now).total_duration(now), count);
    }
}

// ---------------------------------------------------------------------------
// Arena algebra ≡ Arc-backed algebra
// ---------------------------------------------------------------------------
//
// The `*_into` operations on `IntervalArena` are the allocation-free twins of
// the `Arc`-backed `IntervalList` algebra above; every one must produce the
// exact same normalised interval sequence.

use insight_rtec::interval::{IntervalArena, IvRange};

proptest! {
    #[test]
    fn arena_union_all_matches_arc(
        lists in proptest::collection::vec(arb_list(), 0..5)
    ) {
        let mut arena = IntervalArena::new();
        let mark = arena.mark();
        for l in &lists {
            arena.copy_in(l.as_slice());
        }
        let r = arena.union_all_into(mark);
        let classic = IntervalList::union_all(lists.iter());
        prop_assert_eq!(arena.slice(r), classic.as_slice());
    }

    #[test]
    fn arena_intersect_all_matches_arc(
        lists in proptest::collection::vec(arb_list(), 0..5)
    ) {
        let mut arena = IntervalArena::new();
        let mark = arena.mark();
        let ranges: Vec<IvRange> =
            lists.iter().map(|l| arena.copy_in(l.as_slice())).collect();
        let r = arena.intersect_all_into(mark, &ranges);
        let classic = IntervalList::intersect_all(lists.iter());
        prop_assert_eq!(arena.slice(r), classic.as_slice());
    }

    #[test]
    fn arena_relative_complement_all_matches_arc(
        base in arb_list(),
        subs in proptest::collection::vec(arb_list(), 0..5)
    ) {
        let mut arena = IntervalArena::new();
        let base_r = arena.copy_in(base.as_slice());
        let sub_mark = arena.mark();
        for l in &subs {
            arena.copy_in(l.as_slice());
        }
        let r = arena.relative_complement_all_into(base_r, sub_mark);
        let classic = IntervalList::relative_complement_all(&base, subs.iter());
        prop_assert_eq!(arena.slice(r), classic.as_slice());
        // The stack discipline must leave ranges below the mark untouched.
        prop_assert_eq!(arena.slice(base_r), base.as_slice());
    }

    #[test]
    fn arena_from_points_matches_arc(
        inits in proptest::collection::vec(0i64..UNIVERSE, 0..8),
        terms in proptest::collection::vec(0i64..UNIVERSE, 0..8),
        initially in proptest::bool::ANY,
        from in 0i64..UNIVERSE,
    ) {
        let classic = IntervalList::from_points(&inits, &terms, initially, from);
        let mut arena = IntervalArena::new();
        let mut scratch = Vec::new();
        let (mut i2, mut t2) = (inits.clone(), terms.clone());
        let r = arena.from_points_into(&mut i2, &mut t2, initially, from, &mut scratch);
        prop_assert_eq!(arena.slice(r), classic.as_slice());
    }

    #[test]
    fn arena_difference_and_after_match_arc(
        a in arb_list(),
        b in arb_list(),
        t in 0i64..2 * UNIVERSE,
    ) {
        let mut arena = IntervalArena::new();
        let ra = arena.copy_in(a.as_slice());
        let rb = arena.copy_in(b.as_slice());
        let d = arena.difference_into(ra, rb);
        prop_assert_eq!(arena.slice(d), a.difference(&b).as_slice());
        let af = arena.after_into(a.as_slice(), t);
        prop_assert_eq!(arena.slice(af), a.after(t).as_slice());
    }

    #[test]
    fn arena_materialise_reuses_equal_cached_lists(a in arb_list()) {
        let mut arena = IntervalArena::new();
        let r = arena.copy_in(a.as_slice());
        let m = arena.materialise(r, &a);
        prop_assert_eq!(m.as_slice(), a.as_slice());
    }
}
