//! Property-based tests of the windowing machinery (Section 4.2 semantics).

use insight_rtec::prelude::*;
use proptest::prelude::*;

/// The on/off rule set used throughout.
fn ruleset() -> insight_rtec::dsl::RuleSet {
    let mut b = RuleSetBuilder::new();
    b.declare_event("on", 1);
    b.declare_event("off", 1);
    let x = b.var("X");
    let t1 = b.var("T1");
    b.initiated(fluent("f", [pat(x)], val(true)), t1, [happens(event_pat("on", [pat(x)]), t1)]);
    let t2 = b.var("T2");
    b.terminated(fluent("f", [pat(x)], val(true)), t2, [happens(event_pat("off", [pat(x)]), t2)]);
    b.build().unwrap()
}

fn arb_events() -> impl Strategy<Value = Vec<(i64, bool, u8)>> {
    proptest::collection::vec((1i64..950, proptest::bool::ANY, 0u8..3), 1..40)
}

proptest! {
    /// Sliding recognition (step < WM, punctual arrivals) agrees with a
    /// single big window about `holdsAt` at the final query time and about
    /// every recent time-point still inside the last window.
    #[test]
    fn sliding_windows_agree_with_one_shot(events in arb_events(), step in 50i64..500) {
        let horizon = 1000i64;
        let wm = 1000i64;

        // One-shot reference: a window covering everything.
        let mut reference = Engine::new(ruleset(), WindowConfig::new(wm, wm).unwrap());
        for &(t, on, id) in &events {
            reference
                .add_event(Event::new(if on { "on" } else { "off" }, [Term::int(id as i64)], t))
                .unwrap();
        }
        let ref_rec = reference.query(horizon).unwrap();

        // Sliding run with the same WM but a smaller step: every event is
        // eventually inside some window, and since WM covers the whole
        // horizon nothing is ever evicted.
        let mut sliding = Engine::new(ruleset(), WindowConfig::new(wm, step).unwrap());
        for &(t, on, id) in &events {
            sliding
                .add_event(Event::new(if on { "on" } else { "off" }, [Term::int(id as i64)], t))
                .unwrap();
        }
        let mut q = step.min(horizon);
        let mut last = None;
        while q < horizon {
            last = Some(sliding.query(q).unwrap());
            q += step;
        }
        let slide_rec = sliding.query(horizon).unwrap();
        let _ = last;

        for id in 0u8..3 {
            for probe in [1i64, 250, 500, 750, 999] {
                prop_assert_eq!(
                    ref_rec.holds_at("f", &[Term::int(id as i64)], &Term::truth(), probe),
                    slide_rec.holds_at("f", &[Term::int(id as i64)], &Term::truth(), probe),
                    "id={} probe={}", id, probe
                );
            }
        }
    }

    /// Delayed events are amended as long as they arrive within WM of their
    /// occurrence; the final recognition equals the punctual one.
    #[test]
    fn bounded_delays_are_amended(
        events in arb_events(),
        delay in 0i64..200,
    ) {
        let wm = 400i64;
        let step = 200i64;
        let horizon = 1200i64;

        // Punctual reference processed with the same window schedule.
        let mut punctual = Engine::new(ruleset(), WindowConfig::new(wm, step).unwrap());
        let mut delayed = Engine::new(ruleset(), WindowConfig::new(wm, step).unwrap());
        for &(t, on, id) in &events {
            let kind = if on { "on" } else { "off" };
            let ev = Event::new(kind, [Term::int(id as i64)], t);
            punctual.add_event(ev.clone()).unwrap();
            // The delay keeps the event inside the window of a later query:
            // arrival <= t + delay < t + wm - step, so some query at
            // q in [arrival, t + wm) sees it.
            delayed.add_stamped_event(Stamped::arriving_at(ev, t + delay.min(wm - step - 1))).unwrap();
        }
        let mut q = step;
        let (mut final_p, mut final_d) = (None, None);
        while q <= horizon {
            final_p = Some(punctual.query(q).unwrap());
            final_d = Some(delayed.query(q).unwrap());
            q += step;
        }
        let (final_p, final_d) = (final_p.unwrap(), final_d.unwrap());
        // At the end of the trace the two agree about the final state.
        for id in 0u8..3 {
            prop_assert_eq!(
                final_p.holds_at("f", &[Term::int(id as i64)], &Term::truth(), horizon - 1),
                final_d.holds_at("f", &[Term::int(id as i64)], &Term::truth(), horizon - 1),
                "id={}", id
            );
        }
    }
}
