//! Compile-pass edge cases and compiled/interpreted equivalence checks.
//!
//! The heavy three-way differential (compiled == interpreter == oracle on
//! fuzzed rule sets) lives in the conformance crate; these tests pin the
//! corners of the compiled path itself: empty plans, never-queried heads,
//! beyond-WM lateness, the `set_initially` error path, plan sharing and the
//! determinism of plan rebuilds across checkpoint restore.

use insight_rtec::dsl::RuleSet;
use insight_rtec::event::Stamped;
use insight_rtec::prelude::*;
use insight_rtec::rule::CmpOp;
use std::sync::Arc;

/// `on(Dev)` switched by two input events, plus a derived event
/// `flip(Dev)` fired when the device switches on while `hot(Dev)` holds —
/// a two-level stratification with a non-trivial join.
fn two_level_ruleset() -> RuleSet {
    let mut b = RuleSetBuilder::new();
    b.declare_event("switch_on", 1)
        .declare_event("switch_off", 1)
        .declare_event("heat", 1)
        .declare_event("cool", 1);
    let dev = b.var("Dev");
    let t1 = b.var("T1");
    b.initiated(
        fluent("on", [pat(dev)], val(true)),
        t1,
        [happens(event_pat("switch_on", [pat(dev)]), t1)],
    );
    let t2 = b.var("T2");
    b.terminated(
        fluent("on", [pat(dev)], val(true)),
        t2,
        [happens(event_pat("switch_off", [pat(dev)]), t2)],
    );
    let dev2 = b.var("Dev2");
    let t3 = b.var("T3");
    b.initiated(
        fluent("hot", [pat(dev2)], val(true)),
        t3,
        [happens(event_pat("heat", [pat(dev2)]), t3)],
    );
    let t4 = b.var("T4");
    b.terminated(
        fluent("hot", [pat(dev2)], val(true)),
        t4,
        [happens(event_pat("cool", [pat(dev2)]), t4)],
    );
    let dev3 = b.var("Dev3");
    let t5 = b.var("T5");
    b.derived_event(
        event_head("flip", [pat(dev3)]),
        t5,
        [
            happens(event_pat("switch_on", [pat(dev3)]), t5),
            holds(fluent_pat("hot", [pat(dev3)], val(true)), t5),
        ],
    );
    b.build().unwrap()
}

/// Drives two engines with the same input schedule and asserts identical
/// recognitions at every query.
fn assert_twin_equal(
    mut a: Engine,
    mut b: Engine,
    events: &[Stamped<Event>],
    queries: &[Time],
    fluent_names: &[&str],
) {
    for e in events {
        a.add_stamped_event(e.clone()).unwrap();
        b.add_stamped_event(e.clone()).unwrap();
    }
    for &q in queries {
        let ra = a.query(q).unwrap();
        let rb = b.query(q).unwrap();
        assert_eq!(ra.derived_events, rb.derived_events, "derived events diverge at q={q}");
        for name in fluent_names {
            let mut ea: Vec<_> =
                ra.fluent_entries(name).iter().map(|e| (&e.args, &e.value, &e.ivs)).collect();
            let mut eb: Vec<_> =
                rb.fluent_entries(name).iter().map(|e| (&e.args, &e.value, &e.ivs)).collect();
            ea.sort_by(|x, y| (x.0, x.1).cmp(&(y.0, y.1)));
            eb.sort_by(|x, y| (x.0, x.1).cmp(&(y.0, y.1)));
            assert_eq!(ea, eb, "fluent `{name}` diverges at q={q}");
        }
    }
}

fn stream() -> Vec<Stamped<Event>> {
    let mut evs = Vec::new();
    for (kind, dev, t) in [
        ("heat", "a", 5),
        ("switch_on", "a", 10),
        ("switch_off", "a", 30),
        ("switch_on", "b", 12),
        ("cool", "a", 40),
        ("switch_on", "a", 55),
        ("heat", "b", 60),
        ("switch_on", "b", 70),
        ("switch_off", "b", 85),
    ] {
        evs.push(Stamped::<Event>::punctual(Event::new(kind, [Term::sym(dev)], t)));
    }
    // A late arrival: occurs at 20, arrives at 95 (amended into Q=100).
    evs.push(Stamped::arriving_at(Event::new("heat", [Term::sym("b")], 20), 95));
    evs
}

#[test]
fn compiled_matches_interpreter_across_windows() {
    let w = WindowConfig::new(50, 25).unwrap();
    let mut interp = Engine::new(two_level_ruleset(), w);
    interp.set_parallel_strata(false);
    let mut comp = Engine::new(two_level_ruleset(), w);
    comp.set_parallel_strata(false);
    comp.set_compiled(true);
    assert!(comp.is_compiled());
    assert_twin_equal(interp, comp, &stream(), &[25, 50, 75, 100, 125], &["on", "hot"]);
}

#[test]
fn compiled_matches_interpreter_full_mode_and_parallel() {
    let w = WindowConfig::new(60, 20).unwrap();
    let mut interp = Engine::new(two_level_ruleset(), w);
    interp.set_incremental(false);
    let mut comp = Engine::new(two_level_ruleset(), w);
    comp.set_incremental(false);
    comp.set_compiled(true);
    assert_twin_equal(interp, comp, &stream(), &[20, 40, 60, 80, 100, 120], &["on", "hot"]);

    let interp_p = Engine::new(two_level_ruleset(), w);
    let mut comp_p = Engine::new(two_level_ruleset(), w);
    comp_p.set_compiled(true);
    // Parallel strata on both: independent fluents share a level.
    assert_twin_equal(interp_p, comp_p, &stream(), &[20, 40, 60, 80, 100, 120], &["on", "hot"]);
}

#[test]
fn empty_ruleset_compiles_to_empty_plan() {
    let mut b = RuleSetBuilder::new();
    b.declare_event("ping", 1);
    let rs = b.build().unwrap();
    let mut e = Engine::new(rs, WindowConfig::new(10, 10).unwrap());
    e.set_compiled(true);
    let plan = e.compiled_plan().unwrap();
    assert_eq!(plan.n_strata(), 0);
    assert_eq!(plan.n_levels(), 0);
    e.add_event(Event::new("ping", [Term::int(1)], 3)).unwrap();
    let rec = e.query(10).unwrap();
    assert!(rec.derived_events.is_empty());
    assert_eq!(rec.sde_count, 1);
}

#[test]
fn never_queried_head_fluent_still_evaluates() {
    // `idle` is derived but its initiating event never occurs: the stratum
    // runs, produces no groundings, and downstream queries see nothing.
    let mut b = RuleSetBuilder::new();
    b.declare_event("go", 1).declare_event("stop", 1);
    let d = b.var("D");
    let t = b.var("T");
    b.initiated(fluent("idle", [pat(d)], val(true)), t, [happens(event_pat("stop", [pat(d)]), t)]);
    let d2 = b.var("D2");
    let t2 = b.var("T2");
    b.initiated(
        fluent("busy", [pat(d2)], val(true)),
        t2,
        [happens(event_pat("go", [pat(d2)]), t2)],
    );
    let rs = b.build().unwrap();
    let mut e = Engine::new(rs, WindowConfig::new(20, 20).unwrap());
    e.set_compiled(true);
    e.add_event(Event::new("go", [Term::sym("x")], 4)).unwrap();
    let rec = e.query(20).unwrap();
    assert!(rec.holds_at("busy", &[Term::sym("x")], &Term::truth(), 10));
    assert!(rec.fluent_entries("idle").is_empty());
    assert!(rec.intervals_of("idle", &[Term::sym("x")], &Term::truth()).is_none());
}

#[test]
fn beyond_wm_delayed_events_are_lost_in_both_modes() {
    // An event occurring at t=5 but arriving at t=70 misses every window
    // containing t=5 (WM=20): both engines must drop it identically.
    let w = WindowConfig::new(20, 20).unwrap();
    let mk = || {
        let mut e = Engine::new(two_level_ruleset(), w);
        e.add_event(Event::new("heat", [Term::sym("a")], 2)).unwrap();
        e.add_stamped_event(Stamped::arriving_at(Event::new("switch_on", [Term::sym("a")], 5), 70))
            .unwrap();
        e
    };
    let mut interp = mk();
    let mut comp = mk();
    comp.set_compiled(true);
    for q in [20, 40, 60, 80] {
        let ra = interp.query(q).unwrap();
        let rb = comp.query(q).unwrap();
        assert_eq!(ra.derived_events, rb.derived_events);
        assert!(rb.events_of("flip").is_empty(), "lost event must not fire rules at q={q}");
        assert!(rb.fluent_entries("on").is_empty());
    }
}

#[test]
fn set_initially_after_start_fails_in_compiled_mode() {
    let mut e = Engine::new(two_level_ruleset(), WindowConfig::new(10, 10).unwrap());
    e.set_compiled(true);
    e.set_initially("on", vec![Term::sym("a")], Term::truth()).unwrap();
    e.query(10).unwrap();
    let err = e.set_initially("on", vec![Term::sym("b")], Term::truth()).unwrap_err();
    assert!(matches!(err, RtecError::EngineAlreadyStarted { first_query: 10 }));
}

#[test]
fn plan_rebuild_is_deterministic() {
    let p1 = CompiledPlan::compile(&two_level_ruleset());
    let p2 = CompiledPlan::compile(&two_level_ruleset());
    assert_eq!(p1.signature(), p2.signature());
    assert_eq!(p1.n_slots(), p2.n_slots());
    assert_eq!(p1.n_strata(), p2.n_strata());
    assert_eq!(p1.n_levels(), p2.n_levels());
}

#[test]
fn restore_rebuilds_plan_and_preserves_results() {
    let w = WindowConfig::new(50, 25).unwrap();
    let events = stream();

    // Uninterrupted compiled engine: the reference.
    let mut reference = Engine::new(two_level_ruleset(), w);
    reference.set_compiled(true);
    for e in &events {
        reference.add_stamped_event(e.clone()).unwrap();
    }
    let mut expected = Vec::new();
    for q in [25, 50, 75, 100] {
        expected.push(reference.query(q).unwrap().derived_events.clone());
    }

    // Crash after the second query; restore into a fresh compiled engine.
    let mut original = Engine::new(two_level_ruleset(), w);
    original.set_compiled(true);
    let sig_before = original.compiled_plan().unwrap().signature();
    for e in &events {
        original.add_stamped_event(e.clone()).unwrap();
    }
    original.query(25).unwrap();
    original.query(50).unwrap();
    let snapshot = original.snapshot_state();
    // The snapshot never mentions the plan: it is derived state.
    assert!(!snapshot.contains("plan"), "plan must be excluded from checkpoints");

    let mut restored = Engine::new(two_level_ruleset(), w);
    restored.set_compiled(true);
    restored.restore_state(&snapshot).unwrap();
    let sig_after = restored.compiled_plan().unwrap().signature();
    assert_eq!(sig_before, sig_after, "restored engine must rebuild the identical plan");
    assert_eq!(restored.query(75).unwrap().derived_events, expected[2]);
    assert_eq!(restored.query(100).unwrap().derived_events, expected[3]);
}

#[test]
fn shared_plan_rejects_foreign_rule_set() {
    let plan = CompiledPlan::compile(&two_level_ruleset());
    let mut other = RuleSetBuilder::new();
    other.declare_event("tick", 0);
    let rs = other.build().unwrap();
    let mut e = Engine::new(rs, WindowConfig::new(10, 10).unwrap());
    let err = e.set_compiled_plan(plan).unwrap_err();
    assert!(matches!(err, RtecError::PlanMismatch { .. }));
    assert!(!e.is_compiled());
}

#[test]
fn one_arc_plan_shared_across_replica_engines() {
    let plan = CompiledPlan::compile(&two_level_ruleset());
    let w = WindowConfig::new(50, 25).unwrap();
    let mut a = Engine::new(two_level_ruleset(), w);
    let mut b = Engine::new(two_level_ruleset(), w);
    a.set_compiled_plan(Arc::clone(&plan)).unwrap();
    b.set_compiled_plan(Arc::clone(&plan)).unwrap();
    assert!(Arc::strong_count(&plan) >= 3, "replicas share one plan allocation");
    for e in stream() {
        a.add_stamped_event(e.clone()).unwrap();
        b.add_stamped_event(e).unwrap();
    }
    for q in [25, 50, 75, 100] {
        assert_eq!(a.query(q).unwrap().derived_events, b.query(q).unwrap().derived_events);
    }
}

#[test]
fn compiled_handles_guards_relations_and_negation() {
    // A rule set exercising the remaining compiled operand kinds: a relation
    // join, a numeric guard and negation-as-failure on a derived fluent.
    let build = || {
        let mut b = RuleSetBuilder::new();
        b.declare_event("reading", 2).declare_relation("watched", 1);
        let d = b.var("D");
        let v = b.var("V");
        let t = b.var("T");
        b.initiated(
            fluent("alarm", [pat(d)], val(true)),
            t,
            [
                happens(event_pat("reading", [pat(d), pat(v)]), t),
                relation("watched", [pat(d)]),
                guard(cmp(v, CmpOp::Gt, 10.0)),
            ],
        );
        let d2 = b.var("D2");
        let v2 = b.var("V2");
        let t2 = b.var("T2");
        b.terminated(
            fluent("alarm", [pat(d2)], val(true)),
            t2,
            [
                happens(event_pat("reading", [pat(d2), pat(v2)]), t2),
                guard(cmp(v2, CmpOp::Le, 10.0)),
            ],
        );
        let d3 = b.var("D3");
        let t3 = b.var("T3");
        b.derived_event(
            event_head("quiet", [pat(d3)]),
            t3,
            [
                happens(event_pat("reading", [pat(d3), any()]), t3),
                not_holds(fluent_pat("alarm", [pat(d3)], val(true)), t3),
            ],
        );
        let mut engine = Engine::new(b.build().unwrap(), WindowConfig::new(40, 20).unwrap());
        engine.set_relation("watched", vec![vec![Term::sym("s1")], vec![Term::sym("s2")]]).unwrap();
        engine
    };
    let mut interp = build();
    let mut comp = build();
    comp.set_compiled(true);
    let evs = [
        ("s1", 5, 3),
        ("s1", 20, 12),
        ("s2", 25, 40),
        ("s1", 30, 2),
        ("s3", 35, 99),
        ("s2", 55, 1),
    ];
    for (dev, t, v) in evs {
        let e = Event::new("reading", [Term::sym(dev), Term::int(v)], t);
        interp.add_event(e.clone()).unwrap();
        comp.add_event(e).unwrap();
    }
    for q in [20, 40, 60, 80] {
        let ra = interp.query(q).unwrap();
        let rb = comp.query(q).unwrap();
        assert_eq!(ra.derived_events, rb.derived_events, "q={q}");
        let mut ea: Vec<_> = ra.fluent_entries("alarm").iter().map(|e| (&e.args, &e.ivs)).collect();
        let mut eb: Vec<_> = rb.fluent_entries("alarm").iter().map(|e| (&e.args, &e.ivs)).collect();
        ea.sort_by(|x, y| x.0.cmp(y.0));
        eb.sort_by(|x, y| x.0.cmp(y.0));
        assert_eq!(ea, eb, "q={q}");
    }
}
