//! Steady-state zero-allocation regression test for the compiled solver.
//!
//! The compiled plan's solver runs out of a thread-local scratch arena
//! ([`insight_rtec::compile::scratch_allocations`] counts every capacity
//! growth of its buffers). After a warm-up window has sized the arena, further
//! windows over a stream with the same working-set shape must not grow any
//! scratch buffer. Window construction and output materialisation are outside
//! this claim — only the per-rule solve loop is allocation-free.

use insight_rtec::compile::scratch_allocations;
use insight_rtec::dsl::RuleSet;
use insight_rtec::prelude::*;

fn ruleset() -> RuleSet {
    let mut b = RuleSetBuilder::new();
    b.declare_event("enter", 1).declare_event("leave", 1);
    let d = b.var("D");
    let t1 = b.var("T1");
    b.initiated(
        fluent("inside", [pat(d)], val(true)),
        t1,
        [happens(event_pat("enter", [pat(d)]), t1)],
    );
    let t2 = b.var("T2");
    b.terminated(
        fluent("inside", [pat(d)], val(true)),
        t2,
        [happens(event_pat("leave", [pat(d)]), t2)],
    );
    let d2 = b.var("D2");
    let t3 = b.var("T3");
    b.derived_event(
        event_head("reentry", [pat(d2)]),
        t3,
        [
            happens(event_pat("enter", [pat(d2)]), t3),
            holds(fluent_pat("inside", [pat(d2)], val(true)), t3),
        ],
    );
    b.build().unwrap()
}

/// Runs a steady-state stream through the slot-indexed compiled path and
/// pins the *full window cycle* — refill, rebuild, solve, merge — at zero
/// allocations once the retained tables have sized to the working set.
/// `QueryTiming::window_allocations` counts retained-buffer capacity growth
/// plus solver-scratch growth on the querying thread (output materialisation
/// is outside the counter by definition).
fn assert_full_cycle_allocation_free(wm: Time, step: Time) {
    let mut e = Engine::new(ruleset(), WindowConfig::new(wm, step).unwrap());
    // Pool threads own their own scratch arenas; keep the cycle on this
    // thread so the counter sees every allocation.
    e.set_parallel_strata(false);
    e.set_compiled(true);
    assert!(e.is_arena(), "slot-indexed state is the default compiled path");

    let pairs: i64 = (step / 2).min(20);
    let feed = |e: &mut Engine, base: Time| {
        for i in 0..pairs {
            let d = Term::sym(["a", "b", "c", "d"][(i % 4) as usize]);
            e.add_event(Event::new("enter", [d.clone()], base + 2 * i as Time)).unwrap();
            e.add_event(Event::new("leave", [d], base + 2 * i as Time + 1)).unwrap();
        }
    };

    // Warm-up windows size every retained buffer (stores, grounding tables,
    // pools, scratch) to the steady-state working set. The working set only
    // reaches its full size once the stream has filled the working memory
    // (wm / step windows), so warm up past that point.
    let warm = (wm / step) + 4;
    for w in 0..warm {
        feed(&mut e, w * step);
        e.query((w + 1) * step).unwrap();
    }
    for w in warm..warm + 10 {
        feed(&mut e, w * step);
        let rec = e.query((w + 1) * step).unwrap();
        assert!(rec.sde_count > 0, "stream must stay live");
        assert_eq!(
            rec.timing.window_allocations,
            0,
            "window cycle at q={} allocated (wm={wm}, step={step})",
            (w + 1) * step
        );
    }
}

/// Disjoint windows (step = WM, the paper's ratio-1 configuration): every
/// window re-derives from scratch, so this pins the allocation-free claim
/// for the full-evaluation shape of the cycle.
#[test]
fn disjoint_window_cycle_is_allocation_free() {
    assert_full_cycle_allocation_free(100, 100);
}

/// Overlapping windows (WM = 8 × step, the ratio-1/8 configuration):
/// survivor filtering, set comparison and clamp-reuse dominate, so this pins
/// the allocation-free claim for the incremental shape of the cycle.
#[test]
fn overlapping_window_cycle_is_allocation_free() {
    assert_full_cycle_allocation_free(160, 20);
}

#[test]
fn steady_state_windows_do_not_allocate_scratch() {
    let mut e = Engine::new(ruleset(), WindowConfig::new(100, 50).unwrap());
    // Parallel strata would move solving onto pool threads whose thread-local
    // arenas this test thread cannot observe; keep everything here.
    e.set_parallel_strata(false);
    e.set_compiled(true);

    let feed = |e: &mut Engine, base: Time| {
        for i in 0..20i64 {
            let d = Term::sym(["a", "b", "c", "d"][(i % 4) as usize]);
            e.add_event(Event::new("enter", [d.clone()], base + 2 * i as Time)).unwrap();
            e.add_event(Event::new("leave", [d], base + 2 * i as Time + 1)).unwrap();
        }
    };

    // Warm-up: two windows size the arena to the working set.
    feed(&mut e, 0);
    e.query(50).unwrap();
    feed(&mut e, 50);
    e.query(100).unwrap();

    let before = scratch_allocations();
    for w in 2..12u64 {
        let base = 50 * w as Time;
        feed(&mut e, base);
        let rec = e.query(base + 50).unwrap();
        assert!(!rec.events_of("reentry").is_empty() || rec.sde_count > 0);
    }
    let after = scratch_allocations();
    assert_eq!(
        after - before,
        0,
        "compiled solver scratch grew during steady-state windows ({} allocations)",
        after - before
    );
}
