//! Deterministic boundary tests pinning the §4.2 window semantics: a query
//! at `Qi` with working memory `WM` processes exactly the SDEs that have
//! arrived by `Qi` and occurred in the half-open window `(Qi − WM, Qi]`.

use insight_rtec::prelude::*;

/// A single on/off-switched boolean fluent `f(X)`.
fn ruleset() -> insight_rtec::dsl::RuleSet {
    let mut b = RuleSetBuilder::new();
    b.declare_event("on", 1);
    b.declare_event("off", 1);
    let x = b.var("X");
    let t1 = b.var("T1");
    b.initiated(fluent("f", [pat(x)], val(true)), t1, [happens(event_pat("on", [pat(x)]), t1)]);
    let t2 = b.var("T2");
    b.terminated(fluent("f", [pat(x)], val(true)), t2, [happens(event_pat("off", [pat(x)]), t2)]);
    b.build().unwrap()
}

fn engine(wm: i64, step: i64) -> Engine {
    Engine::new(ruleset(), WindowConfig::new(wm, step).unwrap())
}

fn on(id: i64, t: i64) -> Event {
    Event::new("on", [Term::int(id)], t)
}

#[test]
fn sde_at_exactly_window_start_is_excluded() {
    // Window of q=200 with WM=100 is (100, 200]: an SDE timestamped exactly
    // at q − WM = 100 lies on the open end and must not be processed.
    let mut e = engine(100, 100);
    e.add_event(on(1, 100)).unwrap();
    let rec = e.query(200).unwrap();
    assert_eq!(rec.window_start, 100);
    assert_eq!(rec.sde_count, 0, "SDE at q-WM is outside (q-WM, q]");
    assert!(!rec.holds_at("f", &[Term::int(1)], &Term::truth(), 200));
}

#[test]
fn sde_just_inside_window_start_is_included() {
    // One tick later than q − WM and the same SDE is in the window.
    let mut e = engine(100, 100);
    e.add_event(on(1, 101)).unwrap();
    let rec = e.query(200).unwrap();
    assert_eq!(rec.sde_count, 1);
    assert!(rec.holds_at("f", &[Term::int(1)], &Term::truth(), 200));
}

#[test]
fn sde_at_exactly_query_time_is_included() {
    // The window is closed at q: an SDE timestamped exactly at q counts.
    let mut e = engine(100, 100);
    e.add_event(on(1, 200)).unwrap();
    let rec = e.query(200).unwrap();
    assert_eq!(rec.sde_count, 1, "SDE at q is inside (q-WM, q]");
    assert!(rec.holds_at("f", &[Term::int(1)], &Term::truth(), 200));
}

#[test]
fn sde_after_query_time_is_deferred_to_the_next_window() {
    // Timestamped past q: invisible now, processed by the next query.
    let mut e = engine(200, 100);
    e.add_event(on(1, 250)).unwrap();
    let rec = e.query(200).unwrap();
    assert_eq!(rec.sde_count, 0);
    let rec = e.query(300).unwrap();
    assert_eq!(rec.sde_count, 1);
    assert!(rec.holds_at("f", &[Term::int(1)], &Term::truth(), 250));
}

#[test]
fn delayed_sde_is_amended_into_the_next_result() {
    // The SDE occurs at 150 but only arrives at 230 — after Q1 = 200. Q1
    // must not see it; Q2 = 300 (window (100, 300]) must retro-actively
    // amend the recognition so `f` holds from 150 on.
    let mut e = engine(200, 100);
    e.add_stamped_event(Stamped::arriving_at(on(1, 150), 230)).unwrap();

    let q1 = e.query(200).unwrap();
    assert_eq!(q1.sde_count, 0, "not yet arrived at Q1");
    assert!(!q1.holds_at("f", &[Term::int(1)], &Term::truth(), 150));

    let q2 = e.query(300).unwrap();
    assert_eq!(q2.sde_count, 1, "arrived and still inside the window");
    assert!(
        q2.holds_at("f", &[Term::int(1)], &Term::truth(), 150),
        "delayed SDE amended into the Q2 recognition"
    );
    assert!(q2.holds_at("f", &[Term::int(1)], &Term::truth(), 300));
}

#[test]
fn sde_delayed_past_its_window_is_discarded() {
    // Occurs at 150 with WM=100: by Q2 = 300 the window starts at 200, so
    // the late arrival at 230 can never be processed — exactly the paper's
    // trade-off of bounded working memory against unbounded delays.
    let mut e = engine(100, 100);
    e.add_stamped_event(Stamped::arriving_at(on(1, 150), 230)).unwrap();
    let q1 = e.query(200).unwrap();
    assert_eq!(q1.sde_count, 0);
    let q2 = e.query(300).unwrap();
    assert_eq!(q2.sde_count, 0, "occurrence time fell behind the window");
    assert!(!q2.holds_at("f", &[Term::int(1)], &Term::truth(), 250));
    assert_eq!(e.buffered(), 0, "expired SDEs are evicted from memory");
}

#[test]
fn query_timing_is_populated() {
    let mut e = engine(100, 100);
    e.add_event(on(1, 150)).unwrap();
    let rec = e.query(200).unwrap();
    assert!(rec.timing.total >= rec.timing.windowing);
    assert!(rec.timing.total >= rec.timing.evaluation);
}
