//! Terms: the argument values of events and fluents.
//!
//! Events and fluents in RTEC are n-ary predicates whose arguments are ground
//! terms at run time. Terms must be cheaply comparable and hashable because
//! the engine indexes events and fluent groundings by them, so strings are
//! interned into [`Symbol`]s and floats are stored with a total order.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string. Two symbols are equal iff they intern the same text.
///
/// Interning is process-global: symbols created by different engines compare
/// and hash consistently, which lets rule sets be built independently of the
/// engines that run them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    lookup: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();

fn interner() -> &'static RwLock<Interner> {
    INTERNER.get_or_init(|| RwLock::new(Interner { lookup: HashMap::new(), strings: Vec::new() }))
}

impl Symbol {
    /// Interns `text` and returns its symbol.
    ///
    /// The intern arena is append-only and **never freed**: every distinct
    /// string interned here stays allocated for the process lifetime (that
    /// is what makes [`Symbol::as_str`] a `&'static` borrow). Symbols are
    /// meant for the *vocabulary* — event/fluent/relation names declared by
    /// rule sets, whose cardinality is small and fixed. Avoid interning
    /// per-item payload strings of unbounded cardinality (e.g. per-entity
    /// ids minted by a live stream) in long-running pipelines — every
    /// distinct id grows the arena forever; prefer numeric ids
    /// ([`Term::Int`]) for such data and keep [`Term::Sym`] for labels
    /// drawn from a bounded set.
    pub fn new(text: &str) -> Symbol {
        {
            let guard = interner().read().expect("interner lock poisoned");
            if let Some(&id) = guard.lookup.get(text) {
                return Symbol(id);
            }
        }
        let mut guard = interner().write().expect("interner lock poisoned");
        if let Some(&id) = guard.lookup.get(text) {
            return Symbol(id);
        }
        let id = u32::try_from(guard.strings.len()).expect("interner overflow");
        // The arena is process-global and append-only, so leaking each
        // distinct string once makes `as_str` a borrow instead of an
        // allocation on every call.
        let stored: &'static str = Box::leak(text.into());
        guard.strings.push(stored);
        guard.lookup.insert(stored, id);
        Symbol(id)
    }

    /// Returns the interned text, borrowed from the intern arena.
    pub fn as_str(&self) -> &'static str {
        let guard = interner().read().expect("interner lock poisoned");
        guard.strings[self.0 as usize]
    }

    /// The symbol's dense interner index. Unlike [`Symbol::as_str`] this
    /// takes no lock, so the compiled evaluation path uses it to key
    /// slot tables without ever touching the interner on the hot path.
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

/// An `f64` with total order and hash, stored as its bit pattern.
///
/// NaNs compare equal to themselves and sort after all other values (IEEE
/// total-order semantics via `f64::total_cmp`), which is sufficient for use
/// as an index key; arithmetic guards in rules operate on the raw `f64`.
#[derive(Debug, Clone, Copy)]
pub struct OrderedF64(pub f64);

impl PartialEq for OrderedF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}
impl Eq for OrderedF64 {}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl std::hash::Hash for OrderedF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Normalise -0.0 to 0.0 so that values that compare equal via
        // total_cmp on the common path hash identically.
        let bits = if self.0 == 0.0 { 0f64.to_bits() } else { self.0.to_bits() };
        bits.hash(state);
    }
}

/// A ground term: an event/fluent argument or a fluent value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A signed integer (ids, counts, timestamps used as data).
    Int(i64),
    /// A float with total order (coordinates, delays in fractional units).
    Float(OrderedF64),
    /// An interned atom/string (bus ids, line names, labels).
    Sym(Symbol),
    /// A boolean (congestion flags, fluent truth values).
    Bool(bool),
}

impl Term {
    /// Shorthand for the boolean `true` value commonly used as fluent value.
    pub fn truth() -> Term {
        Term::Bool(true)
    }

    /// Builds a symbol term from text.
    pub fn sym(text: &str) -> Term {
        Term::Sym(Symbol::new(text))
    }

    /// Builds a float term.
    pub fn float(v: f64) -> Term {
        Term::Float(OrderedF64(v))
    }

    /// Builds an integer term.
    pub fn int(v: i64) -> Term {
        Term::Int(v)
    }

    /// Returns the numeric value of an `Int` or `Float` term.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Term::Int(v) => Some(*v as f64),
            Term::Float(v) => Some(v.0),
            _ => None,
        }
    }

    /// Returns the integer value of an `Int` term.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Term::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the boolean value of a `Bool` term.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Term::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the symbol of a `Sym` term.
    pub fn as_symbol(&self) -> Option<Symbol> {
        match self {
            Term::Sym(s) => Some(*s),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Int(v) => write!(f, "{v}"),
            Term::Float(v) => write!(f, "{}", v.0),
            Term::Sym(s) => write!(f, "{s}"),
            Term::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Term {
    fn from(v: i64) -> Term {
        Term::Int(v)
    }
}
impl From<f64> for Term {
    fn from(v: f64) -> Term {
        Term::float(v)
    }
}
impl From<bool> for Term {
    fn from(v: bool) -> Term {
        Term::Bool(v)
    }
}
impl From<&str> for Term {
    fn from(v: &str) -> Term {
        Term::sym(v)
    }
}
impl From<Symbol> for Term {
    fn from(v: Symbol) -> Term {
        Term::Sym(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn symbols_intern_identically() {
        let a = Symbol::new("bus_33009");
        let b = Symbol::new("bus_33009");
        let c = Symbol::new("bus_33010");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "bus_33009");
    }

    #[test]
    fn symbol_display_roundtrip() {
        let a = Symbol::new("r10");
        assert_eq!(a.to_string(), "r10");
    }

    #[test]
    fn terms_compare_and_hash() {
        assert_eq!(Term::float(1.5), Term::float(1.5));
        assert_ne!(Term::float(1.5), Term::float(1.6));
        assert_eq!(hash_of(&Term::float(0.0)), hash_of(&Term::float(-0.0)));
        assert_eq!(Term::sym("a"), Term::from("a"));
        assert_eq!(Term::int(7), Term::from(7i64));
        assert_eq!(Term::Bool(true), Term::truth());
    }

    #[test]
    fn ordered_f64_totality() {
        let nan = OrderedF64(f64::NAN);
        assert_eq!(nan, nan);
        assert!(OrderedF64(1.0) < OrderedF64(2.0));
        assert!(OrderedF64(f64::NEG_INFINITY) < OrderedF64(0.0));
        assert!(nan > OrderedF64(f64::INFINITY)); // total_cmp places NaN last
    }

    #[test]
    fn accessors() {
        assert_eq!(Term::int(4).as_f64(), Some(4.0));
        assert_eq!(Term::float(2.5).as_f64(), Some(2.5));
        assert_eq!(Term::sym("x").as_f64(), None);
        assert_eq!(Term::int(4).as_i64(), Some(4));
        assert_eq!(Term::Bool(true).as_bool(), Some(true));
        assert_eq!(Term::sym("x").as_symbol(), Some(Symbol::new("x")));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    (0..100).map(|j| Symbol::new(&format!("s{}", (i * j) % 50)).0).sum::<u32>()
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // All threads must agree on every symbol id afterwards.
        for j in 0..50 {
            let s = format!("s{j}");
            assert_eq!(Symbol::new(&s), Symbol::new(&s));
        }
    }
}
