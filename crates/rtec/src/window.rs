//! Working-memory windowing (Section 4.2 / Figure 2 of the paper).
//!
//! RTEC performs recognition at query times `Q1, Q2, …`; at `Qi` only the
//! SDEs inside the working memory `(Qi − WM, Qi]` are considered. The *step*
//! `Qi − Qi−1` and `WM` are tuning parameters; making `WM` larger than the
//! step allows delayed SDEs — those that occurred in `(Qi − WM, Qi−1]` but
//! arrived after `Qi−1` — to be amended into the result instead of lost.

use crate::error::RtecError;
use crate::time::Time;

/// Working-memory and step configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    wm: i64,
    step: i64,
}

impl WindowConfig {
    /// Creates a configuration. Requires `wm >= step > 0`: a step larger than
    /// the working memory would leave gaps of time that are never processed.
    pub fn new(wm: i64, step: i64) -> Result<WindowConfig, RtecError> {
        if step <= 0 {
            return Err(RtecError::InvalidWindow {
                detail: format!("step must be positive, got {step}"),
            });
        }
        if wm < step {
            return Err(RtecError::InvalidWindow {
                detail: format!("working memory ({wm}) must be at least the step ({step})"),
            });
        }
        Ok(WindowConfig { wm, step })
    }

    /// The working-memory size.
    pub fn wm(&self) -> i64 {
        self.wm
    }

    /// The step between consecutive query times.
    pub fn step(&self) -> i64 {
        self.step
    }

    /// The window start for a query at `q` (exclusive bound in the paper's
    /// notation; SDEs with occurrence time in `(q − WM, q]` are considered —
    /// with our half-open convention the processed range is `[q − WM + 1,
    /// q]`, which the engine queries as occurrence times `> q − WM`).
    pub fn window_start(&self, q: Time) -> Time {
        q - self.wm
    }

    /// The query time following `q`.
    pub fn next_query(&self, q: Time) -> Time {
        q + self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_parameters() {
        assert!(WindowConfig::new(10, 0).is_err());
        assert!(WindowConfig::new(10, -5).is_err());
        assert!(WindowConfig::new(5, 10).is_err());
        assert!(WindowConfig::new(10, 10).is_ok());
        assert!(WindowConfig::new(100, 31).is_ok());
    }

    #[test]
    fn window_arithmetic() {
        let w = WindowConfig::new(600, 31).unwrap();
        assert_eq!(w.wm(), 600);
        assert_eq!(w.step(), 31);
        assert_eq!(w.window_start(1000), 400);
        assert_eq!(w.next_query(1000), 1031);
    }
}
