//! Rule-set construction: declarations, validation and the builder DSL.
//!
//! A [`RuleSetBuilder`] collects declarations of input SDE types, relations
//! and builtins together with the CE rules, validates them (arity clashes,
//! unbound variables, unanchored head times, unstratifiable negation) and
//! compiles a [`RuleSet`] holding the stratified evaluation plan the engine
//! interprets.
//!
//! Free helper functions ([`pat`], [`any`], [`cnst`], [`happens`], [`holds`],
//! …) make rule construction read close to the paper's Prolog notation.

use crate::error::RtecError;
use crate::pattern::{ArgPat, EventPattern, FluentPattern, VarId};
use crate::rule::{
    BodyAtom, CmpOp, EventRule, EventTemplate, FluentTemplate, GuardExpr, IntervalExpr, NumExpr,
    SfKind, SimpleFluentRule, StaticRule, ValRef,
};
use crate::stratify::{stratify, Stratum};
use crate::term::{Symbol, Term};
use std::collections::{HashMap, HashSet};

// ---------------------------------------------------------------------------
// Free helpers for building patterns and conditions
// ---------------------------------------------------------------------------

/// A variable argument pattern.
pub fn pat(v: VarId) -> ArgPat {
    ArgPat::Var(v)
}

/// The anonymous wildcard `_`.
pub fn any() -> ArgPat {
    ArgPat::Any
}

/// A constant argument pattern.
pub fn cnst<T: Into<Term>>(t: T) -> ArgPat {
    ArgPat::Const(t.into())
}

/// A constant fluent-value pattern (alias of [`cnst`] that reads better in
/// `fluent(…, val(true))` positions).
pub fn val<T: Into<Term>>(t: T) -> ArgPat {
    ArgPat::Const(t.into())
}

/// An event pattern `kind(args…)` for rule bodies.
pub fn event_pat<I: IntoIterator<Item = ArgPat>>(kind: &str, args: I) -> EventPattern {
    EventPattern { kind: Symbol::new(kind), args: args.into_iter().collect() }
}

/// An event head template `kind(args…)` for derived-event rules.
pub fn event_head<I: IntoIterator<Item = ArgPat>>(kind: &str, args: I) -> EventTemplate {
    EventTemplate { kind: Symbol::new(kind), args: args.into_iter().collect() }
}

/// A fluent head template `name(args…) = value`.
pub fn fluent<I: IntoIterator<Item = ArgPat>>(
    name: &str,
    args: I,
    value: ArgPat,
) -> FluentTemplate {
    FluentTemplate { name: Symbol::new(name), args: args.into_iter().collect(), value }
}

/// A fluent pattern `name(args…) = value` for rule bodies.
pub fn fluent_pat<I: IntoIterator<Item = ArgPat>>(
    name: &str,
    args: I,
    value: ArgPat,
) -> FluentPattern {
    FluentPattern { name: Symbol::new(name), args: args.into_iter().collect(), value }
}

/// Condition `happensAt(pattern, T)`.
pub fn happens(pat: EventPattern, time: VarId) -> BodyAtom {
    BodyAtom::Happens { pat, time }
}

/// Condition `holdsAt(pattern = value, T)`.
pub fn holds(pat: FluentPattern, time: VarId) -> BodyAtom {
    BodyAtom::Holds { pat, time, negated: false }
}

/// Condition `not holdsAt(pattern = value, T)` (negation as failure).
pub fn not_holds(pat: FluentPattern, time: VarId) -> BodyAtom {
    BodyAtom::Holds { pat, time, negated: true }
}

/// Condition joining against a finite relation table.
pub fn relation<I: IntoIterator<Item = ArgPat>>(name: &str, args: I) -> BodyAtom {
    BodyAtom::Relation { name: Symbol::new(name), args: args.into_iter().collect() }
}

/// Condition invoking a registered boolean builtin over bound arguments.
pub fn builtin<I: IntoIterator<Item = ValRef>>(name: &str, args: I) -> BodyAtom {
    BodyAtom::Builtin { name: Symbol::new(name), args: args.into_iter().collect() }
}

/// An arithmetic/equality guard condition.
pub fn guard(expr: GuardExpr) -> BodyAtom {
    BodyAtom::Guard(expr)
}

/// Numeric comparison guard `lhs op rhs`.
pub fn cmp<L: Into<NumExpr>, R: Into<NumExpr>>(lhs: L, op: CmpOp, rhs: R) -> GuardExpr {
    GuardExpr::Cmp { lhs: lhs.into(), op, rhs: rhs.into() }
}

/// Term equality guard.
pub fn term_eq<L: Into<ValRef>, R: Into<ValRef>>(lhs: L, rhs: R) -> GuardExpr {
    GuardExpr::TermEq(lhs.into(), rhs.into())
}

/// Term inequality guard.
pub fn term_ne<L: Into<ValRef>, R: Into<ValRef>>(lhs: L, rhs: R) -> GuardExpr {
    GuardExpr::TermNe(lhs.into(), rhs.into())
}

// ---------------------------------------------------------------------------
// Compiled rule set
// ---------------------------------------------------------------------------

/// A validated, stratified rule set ready for execution by the engine.
#[derive(Debug, Clone)]
pub struct RuleSet {
    pub(crate) sf_rules: Vec<SimpleFluentRule>,
    pub(crate) ev_rules: Vec<EventRule>,
    pub(crate) static_rules: Vec<StaticRule>,
    pub(crate) strata: Vec<Stratum>,
    pub(crate) input_events: HashMap<Symbol, usize>,
    pub(crate) input_fluents: HashMap<Symbol, usize>,
    pub(crate) relations: HashMap<Symbol, usize>,
    pub(crate) builtins: HashMap<Symbol, usize>,
    pub(crate) derived_fluents: HashSet<Symbol>,
    pub(crate) derived_events: HashSet<Symbol>,
    pub(crate) n_vars: usize,
    pub(crate) var_names: Vec<String>,
}

impl RuleSet {
    /// The stratified evaluation plan.
    pub fn strata(&self) -> &[Stratum] {
        &self.strata
    }

    /// Declared input event kinds and their arities.
    pub fn input_events(&self) -> &HashMap<Symbol, usize> {
        &self.input_events
    }

    /// Declared input fluents and their arities.
    pub fn input_fluents(&self) -> &HashMap<Symbol, usize> {
        &self.input_fluents
    }

    /// Symbols defined as derived fluents (simple or static).
    pub fn derived_fluents(&self) -> &HashSet<Symbol> {
        &self.derived_fluents
    }

    /// Symbols defined as derived events.
    pub fn derived_events(&self) -> &HashSet<Symbol> {
        &self.derived_events
    }

    /// Declared relation names and arities.
    pub fn relations(&self) -> &HashMap<Symbol, usize> {
        &self.relations
    }

    /// Declared builtin names and arities.
    pub fn builtins(&self) -> &HashMap<Symbol, usize> {
        &self.builtins
    }

    /// Size of the variable environment rules of this set use.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of rules of each kind `(simple-fluent, event, static)`.
    pub fn rule_counts(&self) -> (usize, usize, usize) {
        (self.sf_rules.len(), self.ev_rules.len(), self.static_rules.len())
    }

    /// The compiled simple-fluent rules, indexable by [`Stratum::rule_indices`].
    ///
    /// Exposed for external interpreters (e.g. the conformance oracle) that
    /// re-evaluate the same rule AST with different semantics.
    pub fn sf_rules(&self) -> &[SimpleFluentRule] {
        &self.sf_rules
    }

    /// The compiled event rules, indexable by [`Stratum::rule_indices`].
    pub fn ev_rules(&self) -> &[EventRule] {
        &self.ev_rules
    }

    /// The compiled static-fluent rules, indexable by [`Stratum::rule_indices`].
    pub fn static_rules(&self) -> &[StaticRule] {
        &self.static_rules
    }

    /// Human-readable variable names, indexed by `VarId`.
    pub fn var_names(&self) -> &[String] {
        &self.var_names
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Collects declarations and rules, then compiles a validated [`RuleSet`].
#[derive(Debug, Default)]
pub struct RuleSetBuilder {
    var_ids: HashMap<String, VarId>,
    var_names: Vec<String>,
    input_events: HashMap<Symbol, usize>,
    input_fluents: HashMap<Symbol, usize>,
    relations: HashMap<Symbol, usize>,
    builtins: HashMap<Symbol, usize>,
    sf_rules: Vec<SimpleFluentRule>,
    ev_rules: Vec<EventRule>,
    static_rules: Vec<StaticRule>,
}

impl RuleSetBuilder {
    /// An empty builder.
    pub fn new() -> RuleSetBuilder {
        RuleSetBuilder::default()
    }

    /// Returns the variable named `name`, creating it on first use. The same
    /// name always maps to the same slot within this builder, so variables
    /// may be shared across the conditions of one rule (and reused by
    /// different rules without interference — environments are per-rule).
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.var_ids.get(name) {
            return v;
        }
        let v = VarId(u32::try_from(self.var_names.len()).expect("too many variables"));
        self.var_names.push(name.to_string());
        self.var_ids.insert(name.to_string(), v);
        v
    }

    /// Declares an input event kind (SDE type) with its arity.
    pub fn declare_event(&mut self, name: &str, arity: usize) -> &mut Self {
        self.input_events.insert(Symbol::new(name), arity);
        self
    }

    /// Declares an input fluent (observed at time-points) with its arity.
    pub fn declare_input_fluent(&mut self, name: &str, arity: usize) -> &mut Self {
        self.input_fluents.insert(Symbol::new(name), arity);
        self
    }

    /// Declares a finite relation (tuples supplied to the engine at run time).
    pub fn declare_relation(&mut self, name: &str, arity: usize) -> &mut Self {
        self.relations.insert(Symbol::new(name), arity);
        self
    }

    /// Declares a boolean builtin predicate (function registered with the
    /// engine at run time).
    pub fn declare_builtin(&mut self, name: &str, arity: usize) -> &mut Self {
        self.builtins.insert(Symbol::new(name), arity);
        self
    }

    /// Adds `initiatedAt(head, time) ← body`.
    pub fn initiated<I: IntoIterator<Item = BodyAtom>>(
        &mut self,
        head: FluentTemplate,
        time: VarId,
        body: I,
    ) -> &mut Self {
        let label = format!("initiatedAt({})", head.name);
        self.sf_rules.push(SimpleFluentRule {
            kind: SfKind::Initiated,
            head,
            time,
            body: body.into_iter().collect(),
            n_vars: 0,
            label,
        });
        self
    }

    /// Adds `terminatedAt(head, time) ← body`.
    pub fn terminated<I: IntoIterator<Item = BodyAtom>>(
        &mut self,
        head: FluentTemplate,
        time: VarId,
        body: I,
    ) -> &mut Self {
        let label = format!("terminatedAt({})", head.name);
        self.sf_rules.push(SimpleFluentRule {
            kind: SfKind::Terminated,
            head,
            time,
            body: body.into_iter().collect(),
            n_vars: 0,
            label,
        });
        self
    }

    /// Adds a derived-event rule `happensAt(head, time) ← body`.
    pub fn derived_event<I: IntoIterator<Item = BodyAtom>>(
        &mut self,
        head: EventTemplate,
        time: VarId,
        body: I,
    ) -> &mut Self {
        let label = format!("happensAt({})", head.kind);
        self.ev_rules.push(EventRule {
            head,
            time,
            body: body.into_iter().collect(),
            n_vars: 0,
            label,
        });
        self
    }

    /// Adds a statically-determined fluent `holdsFor(head, I) ← expr`, with
    /// `domain` (relation joins and guards) enumerating head groundings.
    pub fn static_fluent<I: IntoIterator<Item = BodyAtom>>(
        &mut self,
        head: FluentTemplate,
        domain: I,
        expr: IntervalExpr,
    ) -> &mut Self {
        let label = format!("holdsFor({})", head.name);
        self.static_rules.push(StaticRule {
            head,
            domain: domain.into_iter().collect(),
            expr,
            n_vars: 0,
            label,
        });
        self
    }

    fn var_name(&self, v: VarId) -> String {
        self.var_names.get(v.index()).cloned().unwrap_or_else(|| format!("_V{}", v.0))
    }

    /// Validates everything and compiles the stratified rule set.
    pub fn build(mut self) -> Result<RuleSet, RtecError> {
        let n_vars = self.var_names.len();
        for r in &mut self.sf_rules {
            r.n_vars = n_vars;
        }
        for r in &mut self.ev_rules {
            r.n_vars = n_vars;
        }
        for r in &mut self.static_rules {
            r.n_vars = n_vars;
        }

        // --- collect derived symbols + arities, detect clashes -------------
        let mut derived_fluents: HashMap<Symbol, usize> = HashMap::new();
        let mut derived_events: HashMap<Symbol, usize> = HashMap::new();

        let record =
            |map: &mut HashMap<Symbol, usize>, sym: Symbol, arity: usize| match map.get(&sym) {
                Some(&a) if a != arity => Err(RtecError::ArityMismatch {
                    symbol: sym.as_str().to_string(),
                    declared: a,
                    used: arity,
                }),
                _ => {
                    map.insert(sym, arity);
                    Ok(())
                }
            };

        for r in &self.sf_rules {
            record(&mut derived_fluents, r.head.name, r.head.args.len())?;
        }
        let mut simple_heads: HashSet<Symbol> = self.sf_rules.iter().map(|r| r.head.name).collect();
        for r in &self.static_rules {
            if simple_heads.contains(&r.head.name) {
                return Err(RtecError::SymbolClash {
                    symbol: r.head.name.as_str().to_string(),
                    detail: "defined both as simple and statically-determined fluent".into(),
                });
            }
            record(&mut derived_fluents, r.head.name, r.head.args.len())?;
        }
        for r in &self.ev_rules {
            record(&mut derived_events, r.head.kind, r.head.args.len())?;
        }
        simple_heads.clear();

        // Cross-kind clashes.
        for &s in derived_fluents.keys() {
            if self.input_fluents.contains_key(&s) {
                return Err(RtecError::SymbolClash {
                    symbol: s.as_str().to_string(),
                    detail: "derived fluent shadows an input fluent".into(),
                });
            }
            if derived_events.contains_key(&s) || self.input_events.contains_key(&s) {
                return Err(RtecError::SymbolClash {
                    symbol: s.as_str().to_string(),
                    detail: "symbol used both as fluent and as event".into(),
                });
            }
        }
        for &s in derived_events.keys() {
            if self.input_events.contains_key(&s) {
                return Err(RtecError::SymbolClash {
                    symbol: s.as_str().to_string(),
                    detail: "derived event shadows an input event".into(),
                });
            }
            if self.input_fluents.contains_key(&s) {
                return Err(RtecError::SymbolClash {
                    symbol: s.as_str().to_string(),
                    detail: "symbol used both as event and as input fluent".into(),
                });
            }
        }

        // --- per-rule validation -------------------------------------------
        let ev_arity = |b: &Self, sym: Symbol| -> Option<usize> {
            b.input_events.get(&sym).copied().or_else(|| derived_events.get(&sym).copied())
        };
        let fl_arity = |b: &Self, sym: Symbol| -> Option<usize> {
            b.input_fluents.get(&sym).copied().or_else(|| derived_fluents.get(&sym).copied())
        };

        let all_bodies: Vec<(&str, &Vec<BodyAtom>)> = self
            .sf_rules
            .iter()
            .map(|r| (r.label.as_str(), &r.body))
            .chain(self.ev_rules.iter().map(|r| (r.label.as_str(), &r.body)))
            .chain(self.static_rules.iter().map(|r| (r.label.as_str(), &r.domain)))
            .collect();

        for (label, body) in &all_bodies {
            for atom in body.iter() {
                match atom {
                    BodyAtom::Happens { pat, .. } => {
                        let arity =
                            ev_arity(&self, pat.kind).ok_or_else(|| RtecError::Undeclared {
                                symbol: pat.kind.as_str().to_string(),
                                context: format!("happensAt in {label}"),
                            })?;
                        if arity != pat.args.len() {
                            return Err(RtecError::ArityMismatch {
                                symbol: pat.kind.as_str().to_string(),
                                declared: arity,
                                used: pat.args.len(),
                            });
                        }
                    }
                    BodyAtom::Holds { pat, .. } => {
                        let arity =
                            fl_arity(&self, pat.name).ok_or_else(|| RtecError::Undeclared {
                                symbol: pat.name.as_str().to_string(),
                                context: format!("holdsAt in {label}"),
                            })?;
                        if arity != pat.args.len() {
                            return Err(RtecError::ArityMismatch {
                                symbol: pat.name.as_str().to_string(),
                                declared: arity,
                                used: pat.args.len(),
                            });
                        }
                    }
                    BodyAtom::Relation { name, args } => {
                        let arity = self.relations.get(name).copied().ok_or_else(|| {
                            RtecError::UnknownRelation { name: name.as_str().to_string() }
                        })?;
                        if arity != args.len() {
                            return Err(RtecError::ArityMismatch {
                                symbol: name.as_str().to_string(),
                                declared: arity,
                                used: args.len(),
                            });
                        }
                    }
                    BodyAtom::Builtin { name, args } => {
                        let arity = self.builtins.get(name).copied().ok_or_else(|| {
                            RtecError::UnknownBuiltin { name: name.as_str().to_string() }
                        })?;
                        if arity != args.len() {
                            return Err(RtecError::ArityMismatch {
                                symbol: name.as_str().to_string(),
                                declared: arity,
                                used: args.len(),
                            });
                        }
                    }
                    BodyAtom::Guard(_) => {}
                }
            }
        }

        // Static-rule interval expressions: leaves must be derived fluents.
        for r in &self.static_rules {
            let mut leaves = Vec::new();
            r.expr.collect_fluents(&mut leaves);
            for leaf in leaves {
                if !derived_fluents.contains_key(&leaf) {
                    return Err(RtecError::Undeclared {
                        symbol: leaf.as_str().to_string(),
                        context: format!(
                            "interval expression of {} (leaves must be derived fluents)",
                            r.label
                        ),
                    });
                }
            }
        }

        // Bound-ness analysis.
        for r in &self.sf_rules {
            let bound = self.simulate_bounds(&r.label, &r.body)?;
            self.check_head_bound(&r.label, &r.head.args, Some(&r.head.value), &bound)?;
            if !bound.contains(&r.time) {
                return Err(RtecError::UnanchoredTime { rule: r.label.clone() });
            }
        }
        for r in &self.ev_rules {
            let bound = self.simulate_bounds(&r.label, &r.body)?;
            self.check_head_bound(&r.label, &r.head.args, None, &bound)?;
            if !bound.contains(&r.time) {
                return Err(RtecError::UnanchoredTime { rule: r.label.clone() });
            }
        }
        for r in &self.static_rules {
            let bound = self.simulate_bounds(&r.label, &r.domain)?;
            self.check_head_bound(&r.label, &r.head.args, Some(&r.head.value), &bound)?;
            // Expression vars must be head vars or bound by the domain.
            let mut vs = Vec::new();
            r.expr.collect_vars(&mut vs);
            for v in vs {
                if !bound.contains(&v) {
                    return Err(RtecError::UnboundVariable {
                        rule: r.label.clone(),
                        var: self.var_name(v),
                    });
                }
            }
        }

        let inputs: HashSet<Symbol> =
            self.input_events.keys().chain(self.input_fluents.keys()).copied().collect();
        let strata = stratify(&self.sf_rules, &self.ev_rules, &self.static_rules, &inputs)?;

        Ok(RuleSet {
            sf_rules: self.sf_rules,
            ev_rules: self.ev_rules,
            static_rules: self.static_rules,
            strata,
            input_events: self.input_events,
            input_fluents: self.input_fluents,
            relations: self.relations,
            builtins: self.builtins,
            derived_fluents: derived_fluents.into_keys().collect(),
            derived_events: derived_events.into_keys().collect(),
            n_vars,
            var_names: self.var_names,
        })
    }

    /// Walks a body left to right tracking which variables are bound,
    /// erroring on uses of unbound variables.
    fn simulate_bounds(&self, label: &str, body: &[BodyAtom]) -> Result<HashSet<VarId>, RtecError> {
        let mut bound: HashSet<VarId> = HashSet::new();
        let unbound_err = |v: VarId| RtecError::UnboundVariable {
            rule: label.to_string(),
            var: self.var_name(v),
        };
        for atom in body {
            match atom {
                BodyAtom::Happens { pat, time } => {
                    bound.extend(pat.args.iter().filter_map(|a| a.var()));
                    bound.insert(*time);
                }
                BodyAtom::Holds { pat, time, negated } => {
                    if !bound.contains(time) {
                        return Err(unbound_err(*time));
                    }
                    if !*negated {
                        bound.extend(pat.args.iter().filter_map(|a| a.var()));
                        if let ArgPat::Var(v) = pat.value {
                            bound.insert(v);
                        }
                    }
                }
                BodyAtom::Relation { args, .. } => {
                    bound.extend(args.iter().filter_map(|a| a.var()));
                }
                BodyAtom::Builtin { args, .. } => {
                    for a in args {
                        if let ValRef::Var(v) = a {
                            if !bound.contains(v) {
                                return Err(unbound_err(*v));
                            }
                        }
                    }
                }
                BodyAtom::Guard(g) => {
                    let mut vs = Vec::new();
                    g.collect_vars(&mut vs);
                    for v in vs {
                        if !bound.contains(&v) {
                            return Err(unbound_err(v));
                        }
                    }
                }
            }
        }
        Ok(bound)
    }

    fn check_head_bound(
        &self,
        label: &str,
        args: &[ArgPat],
        value: Option<&ArgPat>,
        bound: &HashSet<VarId>,
    ) -> Result<(), RtecError> {
        for a in args.iter().chain(value) {
            match a {
                ArgPat::Any => {
                    return Err(RtecError::UnboundVariable {
                        rule: label.to_string(),
                        var: "_ (wildcard not allowed in heads)".into(),
                    })
                }
                ArgPat::Var(v) if !bound.contains(v) => {
                    return Err(RtecError::UnboundVariable {
                        rule: label.to_string(),
                        var: self.var_name(*v),
                    })
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_builder() -> RuleSetBuilder {
        let mut b = RuleSetBuilder::new();
        b.declare_event("switch_on", 1).declare_event("switch_off", 1);
        b
    }

    fn on_off_rules(b: &mut RuleSetBuilder) {
        let dev = b.var("Dev");
        let t1 = b.var("T1");
        b.initiated(
            fluent("on", [pat(dev)], val(true)),
            t1,
            [happens(event_pat("switch_on", [pat(dev)]), t1)],
        );
        let t2 = b.var("T2");
        b.terminated(
            fluent("on", [pat(dev)], val(true)),
            t2,
            [happens(event_pat("switch_off", [pat(dev)]), t2)],
        );
    }

    #[test]
    fn builds_valid_ruleset() {
        let mut b = minimal_builder();
        on_off_rules(&mut b);
        let rs = b.build().expect("valid rule set");
        assert_eq!(rs.rule_counts(), (2, 0, 0));
        assert_eq!(rs.strata().len(), 1);
        assert!(rs.derived_fluents().contains(&Symbol::new("on")));
    }

    #[test]
    fn same_var_name_same_slot() {
        let mut b = RuleSetBuilder::new();
        assert_eq!(b.var("X"), b.var("X"));
        assert_ne!(b.var("X"), b.var("Y"));
    }

    #[test]
    fn rejects_undeclared_event() {
        let mut b = RuleSetBuilder::new();
        let t = b.var("T");
        b.initiated(fluent("f", [], val(true)), t, [happens(event_pat("ghost", []), t)]);
        assert!(matches!(b.build(), Err(RtecError::Undeclared { .. })));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let mut b = RuleSetBuilder::new();
        b.declare_event("e", 2);
        let t = b.var("T");
        b.initiated(fluent("f", [], val(true)), t, [happens(event_pat("e", [any()]), t)]);
        assert!(matches!(b.build(), Err(RtecError::ArityMismatch { .. })));
    }

    #[test]
    fn rejects_unbound_head_var() {
        let mut b = RuleSetBuilder::new();
        b.declare_event("e", 0);
        let t = b.var("T");
        let x = b.var("X");
        b.initiated(fluent("f", [pat(x)], val(true)), t, [happens(event_pat("e", []), t)]);
        assert!(matches!(b.build(), Err(RtecError::UnboundVariable { .. })));
    }

    #[test]
    fn rejects_wildcard_in_head() {
        let mut b = RuleSetBuilder::new();
        b.declare_event("e", 0);
        let t = b.var("T");
        b.initiated(fluent("f", [any()], val(true)), t, [happens(event_pat("e", []), t)]);
        assert!(matches!(b.build(), Err(RtecError::UnboundVariable { .. })));
    }

    #[test]
    fn rejects_guard_over_unbound_var() {
        let mut b = RuleSetBuilder::new();
        b.declare_event("e", 0);
        let t = b.var("T");
        let x = b.var("Z");
        b.initiated(
            fluent("f", [], val(true)),
            t,
            [happens(event_pat("e", []), t), guard(cmp(x, CmpOp::Gt, 3.0))],
        );
        assert!(matches!(b.build(), Err(RtecError::UnboundVariable { .. })));
    }

    #[test]
    fn rejects_holds_with_unbound_time() {
        let mut b = RuleSetBuilder::new();
        b.declare_event("e", 0);
        b.declare_input_fluent("g", 1);
        let t = b.var("T");
        let t2 = b.var("T2");
        let x = b.var("X");
        b.initiated(
            fluent("f", [], val(true)),
            t,
            [
                happens(event_pat("e", []), t),
                holds(fluent_pat("g", [pat(x)], val(true)), t2), // T2 unbound
            ],
        );
        assert!(matches!(b.build(), Err(RtecError::UnboundVariable { .. })));
    }

    #[test]
    fn rejects_symbol_clash_fluent_vs_event() {
        let mut b = RuleSetBuilder::new();
        b.declare_event("e", 0);
        b.declare_event("f", 0);
        let t = b.var("T");
        b.initiated(fluent("f", [], val(true)), t, [happens(event_pat("e", []), t)]);
        assert!(matches!(b.build(), Err(RtecError::SymbolClash { .. })));
    }

    #[test]
    fn rejects_simple_and_static_same_head() {
        let mut b = RuleSetBuilder::new();
        b.declare_event("e", 0);
        let t = b.var("T");
        b.initiated(fluent("f", [], val(true)), t, [happens(event_pat("e", []), t)]);
        b.initiated(fluent("g", [], val(true)), t, [happens(event_pat("e", []), t)]);
        b.static_fluent(
            fluent("f", [], val(true)),
            [],
            IntervalExpr::Fluent(fluent_pat("g", [], val(true))),
        );
        assert!(matches!(b.build(), Err(RtecError::SymbolClash { .. })));
    }

    #[test]
    fn static_rule_leaf_must_be_derived() {
        let mut b = RuleSetBuilder::new();
        b.declare_input_fluent("raw", 0);
        b.static_fluent(
            fluent("s", [], val(true)),
            [],
            IntervalExpr::Fluent(fluent_pat("raw", [], val(true))),
        );
        assert!(matches!(b.build(), Err(RtecError::Undeclared { .. })));
    }

    #[test]
    fn static_rule_with_domain_relation() {
        let mut b = minimal_builder();
        on_off_rules(&mut b);
        b.declare_relation("loc", 1);
        let dev = b.var("Dev");
        b.static_fluent(
            fluent("everOn", [pat(dev)], val(true)),
            [relation("loc", [pat(dev)])],
            IntervalExpr::Fluent(fluent_pat("on", [pat(dev)], val(true))),
        );
        let rs = b.build().expect("valid static rule");
        assert_eq!(rs.rule_counts(), (2, 0, 1));
        // `everOn` must be in a later stratum than `on`.
        let pos = |n: &str| rs.strata().iter().position(|s| s.symbol == Symbol::new(n)).unwrap();
        assert!(pos("on") < pos("everOn"));
    }

    #[test]
    fn unknown_relation_and_builtin() {
        let mut b = minimal_builder();
        on_off_rules(&mut b);
        let x = b.var("X");
        let t3 = b.var("T3");
        b.derived_event(
            event_head("boom", [pat(x)]),
            t3,
            [happens(event_pat("switch_on", [pat(x)]), t3), relation("nowhere", [pat(x)])],
        );
        assert!(matches!(b.build(), Err(RtecError::UnknownRelation { .. })));

        let mut b = minimal_builder();
        on_off_rules(&mut b);
        let x = b.var("X");
        let t3 = b.var("T3");
        b.derived_event(
            event_head("boom", [pat(x)]),
            t3,
            [happens(event_pat("switch_on", [pat(x)]), t3), builtin("nofn", [ValRef::Var(x)])],
        );
        assert!(matches!(b.build(), Err(RtecError::UnknownBuiltin { .. })));
    }

    #[test]
    fn negated_holds_does_not_bind() {
        let mut b = minimal_builder();
        on_off_rules(&mut b);
        b.declare_input_fluent("mode", 1);
        let x = b.var("X");
        let m = b.var("M");
        let t3 = b.var("T3");
        // M is only "bound" inside a negation, then used in a guard: error.
        b.derived_event(
            event_head("odd", [pat(x)]),
            t3,
            [
                happens(event_pat("switch_on", [pat(x)]), t3),
                not_holds(fluent_pat("mode", [pat(m)], val(true)), t3),
                guard(term_ne(m, Term::sym("a"))),
            ],
        );
        assert!(matches!(b.build(), Err(RtecError::UnboundVariable { .. })));
    }
}
