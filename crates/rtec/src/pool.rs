//! Persistent worker pool for same-level stratum evaluation.
//!
//! Each windowed evaluation of a stratification level used to open a fresh
//! `std::thread::scope` and spawn one OS thread per stratum — at one window
//! per SDE batch that is thousands of thread spawns per run, costing more
//! than the work they parallelise. This pool spawns its threads **once**
//! (lazily, on first use) and reuses them for every window.
//!
//! # Borrowed closures on long-lived threads
//!
//! The tasks borrow from the caller's stack (`&Engine`, `&WindowCtx`), but a
//! pool thread outlives the call. [`run_tasks`] makes this sound the same way
//! `thread::scope` does: the closure lifetime is erased for the transfer, and
//! a completion latch guarantees every task has finished (or panicked)
//! before `run_tasks` returns — no task can touch the borrows after the
//! caller resumes. Panics are caught per task and re-thrown at the caller
//! once all tasks settled, matching `scope`'s join-then-propagate behaviour.
//!
//! # Degenerate cases
//!
//! With fewer than two tasks, or on a single-core host (where
//! `available_parallelism() == 1` leaves the pool empty), tasks run inline
//! on the caller thread in index order — no queueing, no wakeups, and
//! deterministic output order either way (results land in a slot per task).
//! The caller always executes task 0 itself, so a level of `n` strata
//! occupies the caller plus at most `n - 1` pool workers.
//!
//! [`stats`] exposes process-wide spawn/dispatch counters so benchmarks can
//! demonstrate the reduction in thread churn.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A lifetime-erased borrowed task. Soundness: the latch in [`run_tasks`]
/// proves the borrow outlives the execution.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// OS threads ever spawned by the pool (0 or its fixed size, once warmed).
static SPAWNED: AtomicU64 = AtomicU64::new(0);
/// Tasks handed to pool threads (inline executions not counted).
static DISPATCHED: AtomicU64 = AtomicU64::new(0);

/// Process-wide pool counters: `(threads_spawned, tasks_dispatched)`.
/// Spawns saturate at the pool size for the process lifetime — the
/// spawn-per-window regression this pool fixes would instead grow them
/// linearly with the window count.
pub fn stats() -> (u64, u64) {
    (SPAWNED.load(Ordering::Relaxed), DISPATCHED.load(Ordering::Relaxed))
}

struct PoolShared {
    queue: Mutex<Vec<Task>>,
    available: Condvar,
}

struct Pool {
    shared: Arc<PoolShared>,
    workers: usize,
}

impl Pool {
    fn new() -> Pool {
        // One worker per extra core: the caller thread participates in every
        // run_tasks call, so `cores - 1` workers saturate the machine. On a
        // 1-core host the pool is empty and everything runs inline.
        let workers = std::thread::available_parallelism().map_or(0, |n| n.get() - 1);
        let shared =
            Arc::new(PoolShared { queue: Mutex::new(Vec::new()), available: Condvar::new() });
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            SPAWNED.fetch_add(1, Ordering::Relaxed);
            std::thread::Builder::new()
                .name(format!("rtec-pool-{i}"))
                .spawn(move || worker_loop(shared))
                .expect("spawn rtec pool worker");
        }
        Pool { shared, workers }
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let task = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(task) = queue.pop() {
                    break task;
                }
                queue = shared.available.wait(queue).unwrap();
            }
        };
        // The task's own latch/catch_unwind handles panics; a panic can
        // never escape into this loop.
        task();
    }
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(Pool::new)
}

/// Tracks outstanding tasks of one `run_tasks` call and collects the first
/// panic payload.
struct Latch {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Latch {
    fn arrive(&self) {
        let mut pending = self.pending.lock().unwrap();
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut pending = self.pending.lock().unwrap();
        while *pending > 0 {
            pending = self.done.wait(pending).unwrap();
        }
    }
}

/// Runs `tasks(i)` for every `i < n` — task 0 inline on the caller, the rest
/// on pool workers — and returns once **all** of them finished. The task
/// closure may borrow caller-local state (see the module docs for why that
/// is sound). A panicking task is re-thrown here after every sibling
/// settled, like a `thread::scope` join.
pub(crate) fn run_tasks<F>(n: usize, task: F)
where
    F: Fn(usize) + Sync,
{
    if n == 0 {
        return;
    }
    let pool = pool();
    if n < 2 || pool.workers == 0 {
        for i in 0..n {
            task(i);
        }
        return;
    }

    let latch = Arc::new(Latch {
        pending: Mutex::new(n - 1),
        done: Condvar::new(),
        panic: Mutex::new(None),
    });
    let task_ref: &(dyn Fn(usize) + Sync) = &task;
    {
        let mut queue = pool.shared.queue.lock().unwrap();
        for i in 1..n {
            let latch = Arc::clone(&latch);
            // Erase the borrow lifetime for the transfer; the latch.wait()
            // below keeps `task` (and everything it borrows) alive until the
            // worker has called arrive().
            let erased: &(dyn Fn(usize) + Sync) = task_ref;
            let erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(erased) };
            DISPATCHED.fetch_add(1, Ordering::Relaxed);
            queue.push(Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(|| erased(i)));
                if let Err(payload) = result {
                    latch.panic.lock().unwrap().get_or_insert(payload);
                }
                latch.arrive();
            }));
        }
        pool.shared.available.notify_all();
    }

    // The caller works too: task 0 runs here while the workers chew on the
    // rest, so a level of n strata needs only n - 1 pool threads.
    let own = catch_unwind(AssertUnwindSafe(|| task(0)));
    latch.wait();
    if let Some(payload) = latch.panic.lock().unwrap().take() {
        resume_unwind(payload);
    }
    if let Err(payload) = own {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicI64;

    #[test]
    fn runs_every_task_exactly_once() {
        let hits: Vec<AtomicI64> = (0..16).map(|_| AtomicI64::new(0)).collect();
        run_tasks(16, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "task {i}");
        }
    }

    #[test]
    fn borrows_caller_state_mutably_through_slots() {
        // The thread::scope replacement pattern: results land in per-task
        // slots borrowed from the caller's stack.
        let slots: Vec<Mutex<Option<usize>>> = (0..8).map(|_| Mutex::new(None)).collect();
        run_tasks(8, |i| {
            *slots[i].lock().unwrap() = Some(i * i);
        });
        let got: Vec<usize> = slots.iter().map(|s| s.lock().unwrap().unwrap()).collect();
        assert_eq!(got, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn zero_and_single_task_run_inline() {
        run_tasks(0, |_| panic!("never called"));
        let ran = AtomicI64::new(0);
        run_tasks(1, |i| {
            assert_eq!(i, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panic_propagates_after_all_tasks_settle() {
        let settled: Vec<AtomicI64> = (0..6).map(|_| AtomicI64::new(0)).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_tasks(6, |i| {
                settled[i].fetch_add(1, Ordering::Relaxed);
                if i == 3 {
                    panic!("stratum 3 exploded");
                }
            });
        }));
        assert!(result.is_err(), "the panic reaches the caller");
        // Tasks up to the panicking one always run. On a multi-core host the
        // pool runs the rest too before rethrowing; the single-core inline
        // fallback unwinds immediately, like a plain serial loop would.
        for (i, s) in settled.iter().enumerate().take(4) {
            assert_eq!(s.load(Ordering::Relaxed), 1, "task {i} ran");
        }
        for (i, s) in settled.iter().enumerate() {
            assert!(s.load(Ordering::Relaxed) <= 1, "task {i} ran at most once");
        }
    }

    #[test]
    fn reuses_threads_across_calls() {
        let before = stats().0;
        for _ in 0..20 {
            run_tasks(4, |_| {});
        }
        let after = stats().0;
        assert_eq!(after, before, "no spawns after warm-up: the pool persists");
    }
}
