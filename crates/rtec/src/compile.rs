//! Compile-once lowering of a stratified [`RuleSet`] into an immutable
//! execution plan.
//!
//! The interpreter walks the rule AST on every grounding of every window:
//! each body atom re-resolves its event kind, fluent name, relation or
//! builtin through a `HashMap<Symbol, _>` lookup, re-discriminates input
//! fluents from derived ones, and re-allocates a `Bindings` environment, a
//! role vector and an evidence-span stack per rule per window. Once deltas
//! are small (PR 4), those fixed costs dominate.
//!
//! [`CompiledPlan::compile`] pays them **once**: every symbol a rule body
//! can touch is resolved to a dense integer *slot* ([`SlotMap`]), strata are
//! flattened into a topologically-ordered instruction array grouped by
//! dependency level, and each rule body is lowered into [`CAtom`] programs —
//! the PR 4 pivot plans specialised into compiled form, with the
//! delta-bounding role baked into each `Happens` operand. The plan is
//! immutable and `Arc`-shared: shard replicas and region engines built from
//! the same rule set reuse one plan, and checkpoint snapshots exclude it
//! entirely (it is derived state, rebuilt deterministically from the rule
//! set on restore).
//!
//! At query time the compiled solver ([`solve_c`]) runs over slot-indexed
//! window stores ([`CEventStore`], [`CObsStore`], [`CFluentStore`]) — array
//! indexing and binary search only, no string or hash lookups and no
//! interner locks — and draws all of its scratch (bindings, evidence spans,
//! binding trail, builtin argument buffer, inertia point splits) from a
//! per-thread [`SolveScratch`] arena that never allocates in steady state.
//! [`scratch_allocations`] exposes the arena's growth counter so tests can
//! assert the zero-allocation property per window.

use crate::dsl::RuleSet;
use crate::engine::{eval_guard, resolve, term_time, BuiltinFn, FluentEntry, HappensRole};
use crate::event::{Event, FluentObs};
use crate::interval::{Interval, IntervalArena, IntervalList, IvRange};
use crate::pattern::{
    match_args_trail, undo_trail, ArgPat, Bindings, EventPattern, FluentPattern, VarId,
};
use crate::rule::{BodyAtom, GuardExpr, IntervalExpr, StaticRule, ValRef};
use crate::stratify::{body_deps, HeadKind};
use crate::term::{Symbol, Term};
use crate::time::{Time, TIME_MAX, TIME_MIN};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Index of a pre-resolved symbol in a [`CompiledPlan`]'s dense tables.
pub type SlotId = u32;

const NO_SLOT: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Slot resolution
// ---------------------------------------------------------------------------

/// Dense symbol → slot map. The table is indexed by the interner id, so a
/// lookup is one array read — no hashing, no interner lock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SlotMap {
    table: Vec<u32>,
    symbols: Vec<Symbol>,
}

impl SlotMap {
    fn new() -> SlotMap {
        SlotMap { table: Vec::new(), symbols: Vec::new() }
    }

    fn intern(&mut self, sym: Symbol) -> SlotId {
        let idx = sym.index();
        if idx >= self.table.len() {
            self.table.resize(idx + 1, NO_SLOT);
        }
        if self.table[idx] != NO_SLOT {
            return self.table[idx];
        }
        let slot = u32::try_from(self.symbols.len()).expect("slot overflow");
        self.table[idx] = slot;
        self.symbols.push(sym);
        slot
    }

    /// The slot of `sym`, if the compile pass assigned one.
    pub(crate) fn slot(&self, sym: Symbol) -> Option<SlotId> {
        match self.table.get(sym.index()) {
            Some(&s) if s != NO_SLOT => Some(s),
            _ => None,
        }
    }

    /// Number of slots assigned.
    pub(crate) fn len(&self) -> usize {
        self.symbols.len()
    }

    /// The symbol occupying `slot`.
    pub(crate) fn symbol(&self, slot: SlotId) -> Symbol {
        self.symbols[slot as usize]
    }
}

// ---------------------------------------------------------------------------
// Lowered rule bodies
// ---------------------------------------------------------------------------

/// One lowered body atom: the interpreter's [`BodyAtom`] with every name
/// pre-resolved to a slot, input/derived fluent discrimination done at
/// compile time, and the PR 4 delta-bounding role baked in.
#[derive(Debug, Clone)]
pub(crate) enum CAtom {
    /// `happensAt(kind(args…), T)` with its pivot role fixed per program.
    Happens {
        /// Event-kind slot into [`CEventStore`].
        slot: SlotId,
        /// The argument pattern.
        pat: EventPattern,
        /// The time variable.
        time: VarId,
        /// Delta-bounding role relative to the change frontier.
        role: HappensRole,
    },
    /// `[not] holdsAt(name(args…) = V, T)` on an *input* fluent.
    HoldsInput {
        /// Fluent-name slot into [`CObsStore`].
        slot: SlotId,
        /// The fluent pattern.
        pat: FluentPattern,
        /// The (already bound) read-time variable.
        time: VarId,
        /// Negation-as-failure flag.
        negated: bool,
    },
    /// `[not] holdsAt(name(args…) = V, T)` on a *derived* fluent.
    HoldsDerived {
        /// Fluent-name slot into [`CFluentStore`].
        slot: SlotId,
        /// The fluent pattern.
        pat: FluentPattern,
        /// The (already bound) read-time variable.
        time: VarId,
        /// Negation-as-failure flag.
        negated: bool,
    },
    /// A finite-relation membership condition.
    Relation {
        /// Index into the engine's dense relation table.
        idx: u32,
        /// The argument pattern.
        args: Vec<ArgPat>,
    },
    /// A registered boolean builtin.
    Builtin {
        /// Index into the engine's dense builtin table.
        idx: u32,
        /// Argument value references.
        args: Vec<ValRef>,
    },
    /// A pure guard over bound variables.
    Guard(GuardExpr),
}

/// One lowered body: the full-solve program plus one delta-bounded pivot
/// program per `happensAt` atom (the compiled form of the PR 4 pivot
/// plans — same partitioning contract, fixed operand slots, no per-window
/// cloning or role-vector allocation).
#[derive(Debug, Clone)]
pub(crate) struct CBody {
    /// All atoms in body order, every role `Free` (full re-solve).
    pub full: Vec<CAtom>,
    /// Pivot programs: program `k` enumerates exactly the derivations whose
    /// first at-or-after-frontier happens atom is body atom `k`.
    pub pivots: Vec<Vec<CAtom>>,
}

/// A lowered interval expression for statically-determined fluents.
#[derive(Debug, Clone)]
pub(crate) enum CIntervalExpr {
    /// Leaf: union of the matching groundings of one derived fluent.
    Fluent {
        /// Fluent-name slot into [`CFluentStore`].
        slot: SlotId,
        /// The fluent pattern.
        pat: FluentPattern,
    },
    /// `union_all`.
    Union(Vec<CIntervalExpr>),
    /// `intersect_all`.
    Intersect(Vec<CIntervalExpr>),
    /// `relative_complement_all`.
    RelComp(Box<CIntervalExpr>, Vec<CIntervalExpr>),
}

/// One lowered statically-determined fluent rule.
#[derive(Debug, Clone)]
pub(crate) struct CStatic {
    /// Lowered domain atoms (all roles `Free`; statics always solve fully).
    pub domain: Vec<CAtom>,
    /// Lowered interval expression.
    pub expr: CIntervalExpr,
}

// ---------------------------------------------------------------------------
// The instruction array
// ---------------------------------------------------------------------------

/// One instruction of the flat stratum array: everything the evaluator needs
/// to run one stratum, with all per-engine precomputation folded in.
#[derive(Debug, Clone)]
pub(crate) struct StratumInstr {
    /// Index of the stratum in the rule set's stratification (merge order).
    pub si: u32,
    /// The head symbol.
    pub symbol: Symbol,
    /// The head symbol's slot.
    pub slot: SlotId,
    /// What kind of head this stratum derives.
    pub kind: HeadKind,
    /// Rule indices into the rule set's per-kind rule vector.
    pub rules: Vec<u32>,
    /// Slots of the stratum's direct body dependencies (frontier reads).
    pub dep_slots: Vec<SlotId>,
    /// Whether delta-bounded (pivoted) evaluation is complete for every rule.
    pub pivotable: bool,
    /// For static strata: whether the rule domains are free of event/fluent
    /// atoms (clamp-reuse is sound when clean).
    pub static_pure: bool,
}

/// An immutable, `Arc`-shared execution plan compiled once from a
/// [`RuleSet`].
///
/// The plan owns no window state: engines evaluate against it concurrently
/// (PR 5 shard replicas and region engines share one plan), and it is
/// excluded from checkpoint snapshots — restoring an engine rebuilds the
/// plan deterministically from the same rule set (see
/// [`CompiledPlan::signature`]).
pub struct CompiledPlan {
    pub(crate) slots: SlotMap,
    /// Flat instruction array in level-major topological order.
    pub(crate) instrs: Vec<StratumInstr>,
    /// Ranges into `instrs`, one per dependency level.
    pub(crate) levels: Vec<std::ops::Range<usize>>,
    /// Lowered bodies per event rule, aligned with `RuleSet::ev_rules`.
    pub(crate) ev_bodies: Vec<CBody>,
    /// Lowered bodies per simple-fluent rule, aligned with `sf_rules`.
    pub(crate) sf_bodies: Vec<CBody>,
    /// Lowered static rules, aligned with `static_rules`.
    pub(crate) static_bodies: Vec<CStatic>,
    /// Relation symbols in dense-index order.
    pub(crate) relation_syms: Vec<Symbol>,
    /// Builtin symbols in dense-index order.
    pub(crate) builtin_syms: Vec<Symbol>,
    /// Rule counts of the source rule set (for sharing validation).
    rule_counts: (usize, usize, usize),
    signature: u64,
}

impl CompiledPlan {
    /// Compiles `rules` into an immutable execution plan. The pass is
    /// deterministic: compiling the same rule set twice yields plans with
    /// identical instruction arrays and identical [`CompiledPlan::signature`]s.
    pub fn compile(rules: &RuleSet) -> Arc<CompiledPlan> {
        let mut slots = SlotMap::new();
        // Head symbols first (stratum order), then declared inputs (sorted)
        // — a deterministic assignment independent of HashMap iteration.
        for s in &rules.strata {
            slots.intern(s.symbol);
        }
        let mut inputs: Vec<Symbol> =
            rules.input_events.keys().copied().chain(rules.input_fluents.keys().copied()).collect();
        inputs.sort();
        for sym in inputs {
            slots.intern(sym);
        }

        let mut relation_syms: Vec<Symbol> = rules.relations.keys().copied().collect();
        relation_syms.sort();
        let rel_idx: HashMap<Symbol, u32> =
            relation_syms.iter().enumerate().map(|(i, &s)| (s, i as u32)).collect();
        let mut builtin_syms: Vec<Symbol> = rules.builtins.keys().copied().collect();
        builtin_syms.sort();
        let bi_idx: HashMap<Symbol, u32> =
            builtin_syms.iter().enumerate().map(|(i, &s)| (s, i as u32)).collect();

        let lower_body = |body: &[BodyAtom]| -> CBody {
            let full: Vec<CAtom> =
                body.iter().map(|a| lower_atom(a, rules, &slots, &rel_idx, &bi_idx)).collect();
            let mut pivots = Vec::new();
            for (pi, atom) in full.iter().enumerate() {
                if !matches!(atom, CAtom::Happens { .. }) {
                    continue;
                }
                // Same partitioning as the interpreter's pivot plans: the
                // pivot moves to the front (pattern atoms only add bindings,
                // so prerequisites still hold), earlier happens atoms become
                // `Before`, everything else stays `Free`.
                let mut prog = Vec::with_capacity(full.len());
                prog.push(with_role(atom.clone(), HappensRole::Pivot));
                for (j, a) in full.iter().enumerate() {
                    if j == pi {
                        continue;
                    }
                    let role = if j < pi && matches!(a, CAtom::Happens { .. }) {
                        HappensRole::Before
                    } else {
                        HappensRole::Free
                    };
                    prog.push(with_role(a.clone(), role));
                }
                pivots.push(prog);
            }
            CBody { full, pivots }
        };

        let ev_bodies: Vec<CBody> = rules.ev_rules.iter().map(|r| lower_body(&r.body)).collect();
        let sf_bodies: Vec<CBody> = rules.sf_rules.iter().map(|r| lower_body(&r.body)).collect();
        let static_bodies: Vec<CStatic> = rules
            .static_rules
            .iter()
            .map(|r| CStatic {
                domain: r
                    .domain
                    .iter()
                    .map(|a| lower_atom(a, rules, &slots, &rel_idx, &bi_idx))
                    .collect(),
                expr: lower_expr(&r.expr, &slots),
            })
            .collect();

        // Per-stratum metadata, mirroring Engine::new's precomputation.
        let mut instr_by_si: Vec<StratumInstr> = Vec::with_capacity(rules.strata.len());
        for (si, s) in rules.strata.iter().enumerate() {
            let mut deps: HashSet<Symbol> = HashSet::new();
            let mut pivotable = true;
            let mut static_pure = true;
            match s.kind {
                HeadKind::Event => {
                    for &i in &s.rule_indices {
                        body_deps(&rules.ev_rules[i].body, &mut deps);
                        pivotable &= body_pivotable(&rules.ev_rules[i].body);
                    }
                }
                HeadKind::SimpleFluent => {
                    for &i in &s.rule_indices {
                        body_deps(&rules.sf_rules[i].body, &mut deps);
                        pivotable &= body_pivotable(&rules.sf_rules[i].body);
                    }
                }
                HeadKind::StaticFluent => {
                    for &i in &s.rule_indices {
                        let r: &StaticRule = &rules.static_rules[i];
                        body_deps(&r.domain, &mut deps);
                        let mut fl = Vec::new();
                        r.expr.collect_fluents(&mut fl);
                        deps.extend(fl);
                        static_pure &= r.domain.iter().all(|a| {
                            !matches!(a, BodyAtom::Happens { .. } | BodyAtom::Holds { .. })
                        });
                    }
                }
            }
            let mut dep_slots: Vec<SlotId> = deps.iter().filter_map(|&d| slots.slot(d)).collect();
            dep_slots.sort_unstable();
            instr_by_si.push(StratumInstr {
                si: si as u32,
                symbol: s.symbol,
                slot: slots.slot(s.symbol).expect("head symbol interned above"),
                kind: s.kind,
                rules: s.rule_indices.iter().map(|&i| i as u32).collect(),
                dep_slots,
                pivotable,
                static_pure,
            });
        }

        // Dependency depth per stratum (identical to Engine::new), then a
        // level-major flat instruction array.
        let sym_to_idx: HashMap<Symbol, usize> =
            rules.strata.iter().enumerate().map(|(i, s)| (s.symbol, i)).collect();
        let mut level = vec![0usize; rules.strata.len()];
        for i in 0..rules.strata.len() {
            level[i] = instr_by_si[i]
                .dep_slots
                .iter()
                .filter_map(|&d| sym_to_idx.get(&slots.symbol(d)).copied().filter(|&j| j < i))
                .map(|j| level[j] + 1)
                .max()
                .unwrap_or(0);
        }
        let depth = level.iter().copied().max().map_or(0, |m| m + 1);
        let mut instrs: Vec<StratumInstr> = Vec::with_capacity(instr_by_si.len());
        let mut levels: Vec<std::ops::Range<usize>> = Vec::with_capacity(depth);
        for l in 0..depth {
            let begin = instrs.len();
            for (i, instr) in instr_by_si.iter().enumerate() {
                if level[i] == l {
                    instrs.push(instr.clone());
                }
            }
            levels.push(begin..instrs.len());
        }

        let rule_counts = (rules.sf_rules.len(), rules.ev_rules.len(), rules.static_rules.len());
        let mut plan = CompiledPlan {
            slots,
            instrs,
            levels,
            ev_bodies,
            sf_bodies,
            static_bodies,
            relation_syms,
            builtin_syms,
            rule_counts,
            signature: 0,
        };
        plan.signature = plan.fingerprint();
        Arc::new(plan)
    }

    /// A deterministic fingerprint of the plan's structure: two plans
    /// compiled from the same rule set have equal signatures, which is how
    /// checkpoint-restore tests prove the plan rebuilds identically.
    pub fn signature(&self) -> u64 {
        self.signature
    }

    /// Number of dense symbol slots.
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// Number of strata in the instruction array.
    pub fn n_strata(&self) -> usize {
        self.instrs.len()
    }

    /// Number of dependency levels (independent strata share a level).
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Validates that this plan was compiled from a rule set with the same
    /// stratification as `rules` (used when sharing one plan across shard
    /// replicas / region engines).
    pub(crate) fn matches(&self, rules: &RuleSet) -> Result<(), String> {
        if rules.strata.len() != self.instrs.len() {
            return Err(format!(
                "plan has {} strata, rule set has {}",
                self.instrs.len(),
                rules.strata.len()
            ));
        }
        let counts = (rules.sf_rules.len(), rules.ev_rules.len(), rules.static_rules.len());
        if counts != self.rule_counts {
            return Err(format!(
                "plan rule counts {:?} do not match rule set {:?}",
                self.rule_counts, counts
            ));
        }
        for instr in &self.instrs {
            let s = &rules.strata[instr.si as usize];
            if s.symbol != instr.symbol || s.kind != instr.kind {
                return Err(format!(
                    "stratum {} is `{}` in the plan but `{}` in the rule set",
                    instr.si, instr.symbol, s.symbol
                ));
            }
            if s.rule_indices.len() != instr.rules.len()
                || s.rule_indices.iter().zip(&instr.rules).any(|(&a, &b)| a as u32 != b)
            {
                return Err(format!("stratum `{}` has different rule indices", instr.symbol));
            }
        }
        Ok(())
    }

    fn fingerprint(&self) -> u64 {
        // FNV-1a over the structural facts that define the plan.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&(self.slots.len() as u64).to_le_bytes());
        for instr in &self.instrs {
            eat(instr.symbol.as_str().as_bytes());
            eat(&[match instr.kind {
                HeadKind::Event => 0,
                HeadKind::SimpleFluent => 1,
                HeadKind::StaticFluent => 2,
            }]);
            eat(&instr.si.to_le_bytes());
            eat(&instr.slot.to_le_bytes());
            for &r in &instr.rules {
                eat(&r.to_le_bytes());
            }
            for &d in &instr.dep_slots {
                eat(&d.to_le_bytes());
            }
            eat(&[u8::from(instr.pivotable), u8::from(instr.static_pure)]);
        }
        for (i, range) in self.levels.iter().enumerate() {
            eat(&(i as u32).to_le_bytes());
            eat(&(range.len() as u32).to_le_bytes());
        }
        h
    }
}

impl std::fmt::Debug for CompiledPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledPlan")
            .field("slots", &self.slots.len())
            .field("strata", &self.instrs.len())
            .field("levels", &self.levels.len())
            .field("signature", &format_args!("{:016x}", self.signature))
            .finish()
    }
}

/// Whether pivoted (delta-bounded) evaluation is complete for `body` —
/// the same predicate the interpreter uses (see `engine::body_pivotable`),
/// duplicated here so the compile pass is self-contained.
fn body_pivotable(body: &[BodyAtom]) -> bool {
    let mut happens_times: Vec<VarId> = Vec::new();
    for atom in body {
        match atom {
            BodyAtom::Happens { time, .. } => happens_times.push(*time),
            BodyAtom::Holds { time, .. } if !happens_times.contains(time) => return false,
            _ => {}
        }
    }
    true
}

fn with_role(atom: CAtom, role: HappensRole) -> CAtom {
    match atom {
        CAtom::Happens { slot, pat, time, .. } => CAtom::Happens { slot, pat, time, role },
        other => other,
    }
}

fn lower_atom(
    atom: &BodyAtom,
    rules: &RuleSet,
    slots: &SlotMap,
    rel_idx: &HashMap<Symbol, u32>,
    bi_idx: &HashMap<Symbol, u32>,
) -> CAtom {
    match atom {
        BodyAtom::Happens { pat, time } => CAtom::Happens {
            slot: slots.slot(pat.kind).expect("event kind declared or derived"),
            pat: pat.clone(),
            time: *time,
            role: HappensRole::Free,
        },
        BodyAtom::Holds { pat, time, negated } => {
            let slot = slots.slot(pat.name).expect("fluent declared or derived");
            if rules.input_fluents.contains_key(&pat.name) {
                CAtom::HoldsInput { slot, pat: pat.clone(), time: *time, negated: *negated }
            } else {
                CAtom::HoldsDerived { slot, pat: pat.clone(), time: *time, negated: *negated }
            }
        }
        BodyAtom::Relation { name, args } => CAtom::Relation {
            idx: *rel_idx.get(name).expect("relation declared"),
            args: args.clone(),
        },
        BodyAtom::Builtin { name, args } => {
            CAtom::Builtin { idx: *bi_idx.get(name).expect("builtin declared"), args: args.clone() }
        }
        BodyAtom::Guard(g) => CAtom::Guard(g.clone()),
    }
}

fn lower_expr(expr: &IntervalExpr, slots: &SlotMap) -> CIntervalExpr {
    match expr {
        IntervalExpr::Fluent(pat) => CIntervalExpr::Fluent {
            slot: slots.slot(pat.name).expect("fluent declared or derived"),
            pat: pat.clone(),
        },
        IntervalExpr::Union(es) => {
            CIntervalExpr::Union(es.iter().map(|e| lower_expr(e, slots)).collect())
        }
        IntervalExpr::Intersect(es) => {
            CIntervalExpr::Intersect(es.iter().map(|e| lower_expr(e, slots)).collect())
        }
        IntervalExpr::RelComp(base, subs) => CIntervalExpr::RelComp(
            Box::new(lower_expr(base, slots)),
            subs.iter().map(|e| lower_expr(e, slots)).collect(),
        ),
    }
}

// ---------------------------------------------------------------------------
// Slot-indexed window stores
// ---------------------------------------------------------------------------

/// Events of one kind, sorted by time. Argument terms live in a per-kind
/// pool (`items` holds `(time, offset, len)` triples) so refilling the store
/// each window reuses capacity instead of cloning a `Vec<Term>` per event; a
/// sorted `(first-arg, index)` side table replaces the interpreter's per-kind
/// `HashMap<Term, Vec<u32>>` (binary search instead of hashing).
#[derive(Default)]
pub(crate) struct CEventKind {
    items: Vec<(Time, u32, u16)>,
    pool: Vec<Term>,
    by_first: Vec<(Term, u32)>,
}

impl CEventKind {
    fn clear(&mut self) {
        self.items.clear();
        self.pool.clear();
        self.by_first.clear();
    }

    fn push(&mut self, time: Time, args: &[Term]) {
        let off = self.pool.len() as u32;
        self.pool.extend(args.iter().cloned());
        self.items.push((time, off, args.len() as u16));
    }

    fn rebuild(&mut self) {
        self.items.sort_by_key(|it| it.0);
        self.by_first.clear();
        for (i, &(_, off, len)) in self.items.iter().enumerate() {
            if len > 0 {
                self.by_first.push((self.pool[off as usize].clone(), i as u32));
            }
        }
        // Items are already time-sorted, so a stable sort by term keeps each
        // term's index run time-sorted too.
        self.by_first.sort_by(|a, b| a.0.cmp(&b.0));
    }

    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn time(&self, i: usize) -> Time {
        self.items[i].0
    }

    fn args(&self, i: usize) -> &[Term] {
        let (_, off, len) = self.items[i];
        &self.pool[off as usize..off as usize + len as usize]
    }

    /// Indices of items whose first argument equals `t` and whose time is in
    /// `[lo, hi]`.
    fn first_range(&self, t: &Term, lo: Time, hi: Time) -> &[(Term, u32)] {
        let a = self
            .by_first
            .partition_point(|(k, i)| k < t || (k == t && self.items[*i as usize].0 < lo));
        let z = self
            .by_first
            .partition_point(|(k, i)| k < t || (k == t && self.items[*i as usize].0 <= hi));
        &self.by_first[a..z]
    }

    fn visit_caps(&self, f: &mut impl FnMut(usize)) {
        f(self.items.capacity());
        f(self.pool.capacity());
        f(self.by_first.capacity());
    }
}

/// All window events, slot-indexed by kind. Retained across windows by the
/// slot-state cycle: `clear` + `push` + `rebuild_all` refill it in place.
pub(crate) struct CEventStore {
    kinds: Vec<CEventKind>,
}

impl CEventStore {
    pub(crate) fn new(n_slots: usize) -> CEventStore {
        let mut kinds: Vec<CEventKind> = Vec::with_capacity(n_slots);
        kinds.resize_with(n_slots, CEventKind::default);
        CEventStore { kinds }
    }

    pub(crate) fn clear(&mut self) {
        for k in &mut self.kinds {
            k.clear();
        }
    }

    pub(crate) fn push(&mut self, slot: SlotId, time: Time, args: &[Term]) {
        self.kinds[slot as usize].push(time, args);
    }

    pub(crate) fn rebuild_all(&mut self) {
        for k in &mut self.kinds {
            if !k.is_empty() {
                k.rebuild();
            }
        }
    }

    pub(crate) fn rebuild_slot(&mut self, slot: SlotId) {
        self.kinds[slot as usize].rebuild();
    }

    pub(crate) fn build(n_slots: usize, events: Vec<Event>, slots: &SlotMap) -> CEventStore {
        let mut store = CEventStore::new(n_slots);
        for e in events {
            let slot = slots.slot(e.kind).expect("declared input event has a slot");
            store.push(slot, e.time, &e.args);
        }
        store.rebuild_all();
        store
    }

    pub(crate) fn add_derived(&mut self, slot: SlotId, events: &[Event]) {
        if events.is_empty() {
            return;
        }
        for e in events {
            self.kinds[slot as usize].push(e.time, &e.args);
        }
        self.kinds[slot as usize].rebuild();
    }

    pub(crate) fn visit_caps(&self, f: &mut impl FnMut(usize)) {
        for k in &self.kinds {
            k.visit_caps(f);
        }
    }
}

/// Input fluent observations of one name, sorted by time, with argument
/// terms pooled per kind like [`CEventKind`].
#[derive(Default)]
pub(crate) struct CObsKind {
    /// `(time, args offset, args len, value)`, sorted by time.
    items: Vec<(Time, u32, u16, Term)>,
    pool: Vec<Term>,
}

impl CObsKind {
    fn clear(&mut self) {
        self.items.clear();
        self.pool.clear();
    }

    fn push(&mut self, time: Time, args: &[Term], value: &Term) {
        let off = self.pool.len() as u32;
        self.pool.extend(args.iter().cloned());
        self.items.push((time, off, args.len() as u16, value.clone()));
    }

    fn sort(&mut self) {
        self.items.sort_by_key(|it| it.0);
    }

    fn range_at(&self, t: Time) -> std::ops::Range<usize> {
        let lo = self.items.partition_point(|it| it.0 < t);
        let hi = self.items.partition_point(|it| it.0 <= t);
        lo..hi
    }

    fn args(&self, i: usize) -> &[Term] {
        let (_, off, len, _) = self.items[i];
        &self.pool[off as usize..off as usize + len as usize]
    }

    fn value(&self, i: usize) -> &Term {
        &self.items[i].3
    }

    fn visit_caps(&self, f: &mut impl FnMut(usize)) {
        f(self.items.capacity());
        f(self.pool.capacity());
    }
}

/// All window observations, slot-indexed by fluent name. Retained across
/// windows like [`CEventStore`].
pub(crate) struct CObsStore {
    kinds: Vec<CObsKind>,
}

impl CObsStore {
    pub(crate) fn new(n_slots: usize) -> CObsStore {
        let mut kinds: Vec<CObsKind> = Vec::with_capacity(n_slots);
        kinds.resize_with(n_slots, CObsKind::default);
        CObsStore { kinds }
    }

    pub(crate) fn clear(&mut self) {
        for k in &mut self.kinds {
            k.clear();
        }
    }

    pub(crate) fn push(&mut self, slot: SlotId, time: Time, args: &[Term], value: &Term) {
        self.kinds[slot as usize].push(time, args, value);
    }

    pub(crate) fn sort_all(&mut self) {
        for k in &mut self.kinds {
            if !k.items.is_empty() {
                k.sort();
            }
        }
    }

    pub(crate) fn build(n_slots: usize, obs: Vec<FluentObs>, slots: &SlotMap) -> CObsStore {
        let mut store = CObsStore::new(n_slots);
        for o in obs {
            let slot = slots.slot(o.name).expect("declared input fluent has a slot");
            store.push(slot, o.time, &o.args, &o.value);
        }
        store.sort_all();
        store
    }

    pub(crate) fn visit_caps(&self, f: &mut impl FnMut(usize)) {
        for k in &self.kinds {
            k.visit_caps(f);
        }
    }
}

/// Derived fluent groundings of one name with a sorted first-arg side table
/// and pooled argument terms.
#[derive(Default)]
pub(crate) struct CFluentSlot {
    /// `(args offset, args len, value, intervals)` per grounding.
    entries: Vec<(u32, u16, Term, IntervalList)>,
    pool: Vec<Term>,
    by_first: Vec<(Term, u32)>,
}

impl CFluentSlot {
    fn clear(&mut self) {
        self.entries.clear();
        self.pool.clear();
        self.by_first.clear();
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn args(&self, i: usize) -> &[Term] {
        let (off, len, _, _) = self.entries[i];
        &self.pool[off as usize..off as usize + len as usize]
    }

    fn value(&self, i: usize) -> &Term {
        &self.entries[i].2
    }

    fn ivs(&self, i: usize) -> &IntervalList {
        &self.entries[i].3
    }

    fn first_indices(&self, t: &Term) -> &[(Term, u32)] {
        let a = self.by_first.partition_point(|(k, _)| k < t);
        let z = self.by_first.partition_point(|(k, _)| k <= t);
        &self.by_first[a..z]
    }

    fn visit_caps(&self, f: &mut impl FnMut(usize)) {
        f(self.entries.capacity());
        f(self.pool.capacity());
        f(self.by_first.capacity());
    }
}

/// All derived fluent groundings computed so far this window, slot-indexed.
/// Retained across windows by the slot-state cycle.
pub(crate) struct CFluentStore {
    slots: Vec<CFluentSlot>,
}

impl CFluentStore {
    pub(crate) fn new(n_slots: usize) -> CFluentStore {
        let mut slots = Vec::with_capacity(n_slots);
        slots.resize_with(n_slots, CFluentSlot::default);
        CFluentStore { slots }
    }

    pub(crate) fn clear(&mut self) {
        for s in &mut self.slots {
            s.clear();
        }
    }

    /// Appends one grounding to a slot without rebuilding the index; call
    /// [`CFluentStore::finish_slot`] after the slot's stratum completes.
    pub(crate) fn insert_entry(
        &mut self,
        slot: SlotId,
        args: &[Term],
        value: &Term,
        ivs: &IntervalList,
    ) {
        let fs = &mut self.slots[slot as usize];
        if let Some(first) = args.first() {
            fs.by_first.push((first.clone(), fs.entries.len() as u32));
        }
        let off = fs.pool.len() as u32;
        fs.pool.extend(args.iter().cloned());
        fs.entries.push((off, args.len() as u16, value.clone(), ivs.clone()));
    }

    /// Sorts the slot's first-arg index (once per stratum, not per lookup).
    pub(crate) fn finish_slot(&mut self, slot: SlotId) {
        self.slots[slot as usize].by_first.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    }

    /// Appends one stratum's output entries and rebuilds the slot's
    /// first-arg index.
    pub(crate) fn insert_entries<'a>(
        &mut self,
        slot: SlotId,
        entries: impl Iterator<Item = &'a FluentEntry>,
    ) {
        for e in entries {
            self.insert_entry(slot, &e.args, &e.value, &e.ivs);
        }
        self.finish_slot(slot);
    }

    pub(crate) fn visit_caps(&self, f: &mut impl FnMut(usize)) {
        for s in &self.slots {
            s.visit_caps(f);
        }
    }
}

/// The compiled evaluation context: dense stores plus dense operand tables.
pub(crate) struct CCtx<'a> {
    pub(crate) events: &'a CEventStore,
    pub(crate) obs: &'a CObsStore,
    pub(crate) fluents: &'a CFluentStore,
    pub(crate) relations: &'a [Vec<Vec<Term>>],
    pub(crate) builtins: &'a [Option<BuiltinFn>],
}

// ---------------------------------------------------------------------------
// Per-thread scratch arena
// ---------------------------------------------------------------------------

/// Reusable per-thread evaluation scratch: the bindings environment, the
/// evidence-span stack, the binding trail, the builtin argument buffer and
/// the inertia point-split buffers. All buffers retain their capacity across
/// windows, so steady-state evaluation performs **zero** allocations here —
/// [`scratch_allocations`] counts every capacity growth so tests can prove
/// it.
pub(crate) struct SolveScratch {
    pub(crate) b: Bindings,
    pub(crate) spans: Vec<Time>,
    pub(crate) trail: Vec<VarId>,
    pub(crate) args_buf: Vec<Term>,
    pub(crate) inits: Vec<Time>,
    pub(crate) terms: Vec<Time>,
    pub(crate) ivs: Vec<Interval>,
    active: bool,
    allocations: u64,
}

impl SolveScratch {
    fn new() -> SolveScratch {
        SolveScratch {
            b: Bindings::new(0),
            spans: Vec::new(),
            trail: Vec::new(),
            args_buf: Vec::new(),
            inits: Vec::new(),
            terms: Vec::new(),
            ivs: Vec::new(),
            active: false,
            allocations: 0,
        }
    }

    fn capacities(&self) -> [usize; 7] {
        [
            self.b.capacity(),
            self.spans.capacity(),
            self.trail.capacity(),
            self.args_buf.capacity(),
            self.inits.capacity(),
            self.terms.capacity(),
            self.ivs.capacity(),
        ]
    }
}

thread_local! {
    static SCRATCH: RefCell<SolveScratch> = RefCell::new(SolveScratch::new());
}

/// Runs `f` with this thread's solve scratch checked out. Balanced and
/// non-reentrant by construction (`RefCell` + debug guard); capacity growth
/// during `f` is charged to the allocation counter.
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut SolveScratch) -> R) -> R {
    SCRATCH.with(|cell| {
        let mut s = cell.borrow_mut();
        debug_assert!(!s.active, "solve scratch checked out twice");
        s.active = true;
        let before = s.capacities();
        let r = f(&mut s);
        let after = s.capacities();
        s.allocations += before.iter().zip(&after).filter(|(b, a)| a > b).count() as u64;
        debug_assert!(s.active, "solve scratch released early");
        s.active = false;
        debug_assert!(s.trail.is_empty(), "binding trail must unwind fully");
        debug_assert!(s.spans.is_empty(), "evidence spans must unwind fully");
        r
    })
}

/// Number of scratch-arena allocations (buffer growths) performed by the
/// calling thread's compiled evaluation so far. Steady-state compiled
/// windows leave this counter unchanged — the hot-path allocation
/// regression test asserts exactly that.
pub fn scratch_allocations() -> u64 {
    SCRATCH.with(|cell| cell.borrow().allocations)
}

// ---------------------------------------------------------------------------
// The compiled solver
// ---------------------------------------------------------------------------

/// Solves one lowered body relative to a change frontier: the full program
/// when the frontier is at or below the window start, otherwise one pivot
/// program per happens atom (the PR 4 delta-bounding contract, with roles
/// baked into the instruction stream instead of a per-call role vector).
pub(crate) fn solve_frontier_c(
    ctx: &CCtx<'_>,
    body: &CBody,
    n_vars: usize,
    frontier: Time,
    window_start: Time,
    out: &mut dyn FnMut(&mut Bindings, &[Time]),
) {
    with_scratch(|s| {
        if frontier <= window_start {
            s.b.reset(n_vars);
            let SolveScratch { b, spans, trail, args_buf, .. } = s;
            solve_c(ctx, &body.full, TIME_MIN, b, spans, trail, args_buf, out);
        } else {
            for prog in &body.pivots {
                s.b.reset(n_vars);
                let SolveScratch { b, spans, trail, args_buf, .. } = s;
                solve_c(ctx, prog, frontier, b, spans, trail, args_buf, out);
            }
        }
    });
}

/// Fully solves a static rule's lowered domain program (statics never
/// delta-bound — expiry can shrink event-driven domains silently).
pub(crate) fn solve_domain_c(
    ctx: &CCtx<'_>,
    atoms: &[CAtom],
    n_vars: usize,
    out: &mut dyn FnMut(&mut Bindings, &[Time]),
) {
    with_scratch(|s| {
        s.b.reset(n_vars);
        let SolveScratch { b, spans, trail, args_buf, .. } = s;
        solve_c(ctx, atoms, TIME_MIN, b, spans, trail, args_buf, out);
    });
}

/// Splits a set of `(time, is_initiation)` points into the scratch
/// init/term buffers and builds the inertia intervals — the compiled
/// equivalent of the interpreter's thread-local `POINT_SCRATCH`.
pub(crate) fn intervals_from_points(
    points: impl Iterator<Item = (Time, bool)>,
    initially: bool,
    start: Time,
) -> crate::interval::IntervalList {
    with_scratch(|s| {
        s.inits.clear();
        s.terms.clear();
        for (t, init) in points {
            if init {
                s.inits.push(t);
            } else {
                s.terms.push(t);
            }
        }
        let SolveScratch { inits, terms, ivs, .. } = s;
        crate::interval::points_into(inits, terms, initially, start, ivs);
        crate::interval::IntervalList::from_normalised(ivs)
    })
}

/// Matches one event against a pattern + time variable using the binding
/// trail; on success calls `k`, then rolls everything back.
fn with_event_match_c(
    pat: &EventPattern,
    time: VarId,
    t: Time,
    args: &[Term],
    b: &mut Bindings,
    trail: &mut Vec<VarId>,
    k: &mut dyn FnMut(&mut Bindings, &mut Vec<VarId>),
) {
    let t_term = Term::Int(t);
    let time_was_bound = b.is_bound(time);
    if time_was_bound {
        if b.get(time) != Some(&t_term) {
            return;
        }
    } else if !b.bind(time, &t_term) {
        return;
    }
    let mark = trail.len();
    if match_args_trail(&pat.args, args, b, trail) {
        k(b, trail);
        undo_trail(trail, mark, b);
    }
    if !time_was_bound {
        b.unbind(time);
    }
}

/// Matches a fluent pattern against `(args, value)` using the trail; calls
/// `k` on success and rolls back afterwards.
fn with_fluent_match_c(
    pat: &FluentPattern,
    args: &[Term],
    value: &Term,
    b: &mut Bindings,
    trail: &mut Vec<VarId>,
    k: &mut dyn FnMut(&mut Bindings, &mut Vec<VarId>),
) {
    let mark = trail.len();
    if match_args_trail(&pat.args, args, b, trail) {
        if match_args_trail(std::slice::from_ref(&pat.value), std::slice::from_ref(value), b, trail)
        {
            k(b, trail);
        }
        undo_trail(trail, mark, b);
    }
}

/// Whether a fluent pattern matches `(args, value)`; always rolls back.
fn fluent_matches_c(
    pat: &FluentPattern,
    args: &[Term],
    value: &Term,
    b: &mut Bindings,
    trail: &mut Vec<VarId>,
) -> bool {
    let mark = trail.len();
    let mut hit = false;
    with_fluent_match_c(pat, args, value, b, trail, &mut |_, _| hit = true);
    debug_assert_eq!(trail.len(), mark);
    hit
}

/// Depth-first resolution of one compiled program — the allocation-free
/// twin of the interpreter's `solve_spanned`: roles come baked into the
/// `Happens` operands, symbol lookups are slot-indexed array reads, newly
/// bound variables go onto the shared trail, and builtin arguments resolve
/// into a reusable buffer.
#[allow(clippy::too_many_arguments)]
fn solve_c(
    ctx: &CCtx<'_>,
    atoms: &[CAtom],
    frontier: Time,
    b: &mut Bindings,
    spans: &mut Vec<Time>,
    trail: &mut Vec<VarId>,
    args_buf: &mut Vec<Term>,
    out: &mut dyn FnMut(&mut Bindings, &[Time]),
) {
    let Some((atom, rest)) = atoms.split_first() else {
        out(b, spans);
        return;
    };
    match atom {
        CAtom::Happens { slot, pat, time, role } => {
            let ks = &ctx.events.kinds[*slot as usize];
            if ks.is_empty() {
                return;
            }
            let (lo, hi) = match role {
                HappensRole::Pivot => (frontier, TIME_MAX),
                HappensRole::Before => (TIME_MIN, frontier.saturating_sub(1)),
                HappensRole::Free => (TIME_MIN, TIME_MAX),
            };
            if lo > hi {
                return;
            }
            if let Some(t) = b.get(*time).and_then(term_time) {
                if t < lo || t > hi {
                    return;
                }
                let a = ks.items.partition_point(|it| it.0 < t);
                let z = ks.items.partition_point(|it| it.0 <= t);
                for i in a..z {
                    spans.push(ks.time(i));
                    with_event_match_c(
                        pat,
                        *time,
                        ks.time(i),
                        ks.args(i),
                        b,
                        trail,
                        &mut |b, trail| {
                            solve_c(ctx, rest, frontier, b, spans, trail, args_buf, out)
                        },
                    );
                    spans.pop();
                }
            } else {
                // Narrow by a bound first argument where possible. Terms are
                // fully inline (no heap), so this clone is free.
                let first_bound: Option<Term> = match pat.args.first() {
                    Some(ArgPat::Const(c)) => Some(c.clone()),
                    Some(ArgPat::Var(v)) => b.get(*v).cloned(),
                    _ => None,
                };
                match first_bound {
                    Some(first) => {
                        for &(_, idx) in ks.first_range(&first, lo, hi) {
                            let i = idx as usize;
                            spans.push(ks.time(i));
                            with_event_match_c(
                                pat,
                                *time,
                                ks.time(i),
                                ks.args(i),
                                b,
                                trail,
                                &mut |b, trail| {
                                    solve_c(ctx, rest, frontier, b, spans, trail, args_buf, out)
                                },
                            );
                            spans.pop();
                        }
                    }
                    None => {
                        let a = ks.items.partition_point(|it| it.0 < lo);
                        let z = ks.items.partition_point(|it| it.0 <= hi);
                        for i in a..z {
                            spans.push(ks.time(i));
                            with_event_match_c(
                                pat,
                                *time,
                                ks.time(i),
                                ks.args(i),
                                b,
                                trail,
                                &mut |b, trail| {
                                    solve_c(ctx, rest, frontier, b, spans, trail, args_buf, out)
                                },
                            );
                            spans.pop();
                        }
                    }
                }
            }
        }
        CAtom::HoldsInput { slot, pat, time, negated } => {
            let Some(t) = b.get(*time).and_then(term_time) else { return };
            spans.push(t);
            let ks = &ctx.obs.kinds[*slot as usize];
            let candidates = ks.range_at(t);
            if *negated {
                let exists = candidates
                    .clone()
                    .any(|i| fluent_matches_c(pat, ks.args(i), ks.value(i), b, trail));
                if !exists {
                    solve_c(ctx, rest, frontier, b, spans, trail, args_buf, out);
                }
            } else {
                for i in candidates {
                    with_fluent_match_c(pat, ks.args(i), ks.value(i), b, trail, &mut |b, trail| {
                        solve_c(ctx, rest, frontier, b, spans, trail, args_buf, out)
                    });
                }
            }
            spans.pop();
        }
        CAtom::HoldsDerived { slot, pat, time, negated } => {
            let Some(t) = b.get(*time).and_then(term_time) else { return };
            spans.push(t);
            let fs = &ctx.fluents.slots[*slot as usize];
            let first_bound: Option<Term> = match pat.args.first() {
                Some(ArgPat::Const(c)) => Some(c.clone()),
                Some(ArgPat::Var(v)) => b.get(*v).cloned(),
                _ => None,
            };
            if *negated {
                let exists = match &first_bound {
                    Some(first) => fs.first_indices(first).iter().any(|&(_, idx)| {
                        let i = idx as usize;
                        fs.ivs(i).contains(t)
                            && fluent_matches_c(pat, fs.args(i), fs.value(i), b, trail)
                    }),
                    None => (0..fs.len()).any(|i| {
                        fs.ivs(i).contains(t)
                            && fluent_matches_c(pat, fs.args(i), fs.value(i), b, trail)
                    }),
                };
                if !exists {
                    solve_c(ctx, rest, frontier, b, spans, trail, args_buf, out);
                }
            } else {
                match &first_bound {
                    Some(first) => {
                        for &(_, idx) in fs.first_indices(first) {
                            let i = idx as usize;
                            if !fs.ivs(i).contains(t) {
                                continue;
                            }
                            with_fluent_match_c(
                                pat,
                                fs.args(i),
                                fs.value(i),
                                b,
                                trail,
                                &mut |b, trail| {
                                    solve_c(ctx, rest, frontier, b, spans, trail, args_buf, out)
                                },
                            );
                        }
                    }
                    None => {
                        for i in 0..fs.len() {
                            if !fs.ivs(i).contains(t) {
                                continue;
                            }
                            with_fluent_match_c(
                                pat,
                                fs.args(i),
                                fs.value(i),
                                b,
                                trail,
                                &mut |b, trail| {
                                    solve_c(ctx, rest, frontier, b, spans, trail, args_buf, out)
                                },
                            );
                        }
                    }
                }
            }
            spans.pop();
        }
        CAtom::Relation { idx, args } => {
            let tuples = &ctx.relations[*idx as usize];
            let mark = trail.len();
            for tuple in tuples {
                if match_args_trail(args, tuple, b, trail) {
                    solve_c(ctx, rest, frontier, b, spans, trail, args_buf, out);
                    undo_trail(trail, mark, b);
                }
            }
        }
        CAtom::Builtin { idx, args } => {
            let Some(f) = ctx.builtins[*idx as usize].as_ref() else { return };
            args_buf.clear();
            for a in args {
                match resolve(a, b) {
                    Some(t) => args_buf.push(t),
                    None => {
                        args_buf.clear();
                        return;
                    }
                }
            }
            let ok = f(args_buf);
            // Cleared before recursing so a later builtin in `rest` can
            // reuse the same buffer.
            args_buf.clear();
            if ok {
                solve_c(ctx, rest, frontier, b, spans, trail, args_buf, out);
            }
        }
        CAtom::Guard(g) => {
            if eval_guard(g, b) {
                solve_c(ctx, rest, frontier, b, spans, trail, args_buf, out);
            }
        }
    }
}

/// Evaluates a lowered interval expression under one solution environment —
/// the compiled twin of the interpreter's `eval_interval_expr`, probing
/// entries through the trail instead of cloning the environment per entry.
pub(crate) fn eval_interval_expr_c(
    expr: &CIntervalExpr,
    b: &mut Bindings,
    trail: &mut Vec<VarId>,
    fluents: &CFluentStore,
) -> crate::interval::IntervalList {
    match expr {
        CIntervalExpr::Fluent { slot, pat } => {
            let fs = &fluents.slots[*slot as usize];
            let mut acc: Vec<&IntervalList> = Vec::new();
            for i in 0..fs.len() {
                if fluent_matches_c(pat, fs.args(i), fs.value(i), b, trail) {
                    acc.push(fs.ivs(i));
                }
            }
            IntervalList::union_all(acc)
        }
        CIntervalExpr::Union(es) => {
            let lists: Vec<IntervalList> =
                es.iter().map(|e| eval_interval_expr_c(e, b, trail, fluents)).collect();
            IntervalList::union_all(lists.iter())
        }
        CIntervalExpr::Intersect(es) => {
            let lists: Vec<IntervalList> =
                es.iter().map(|e| eval_interval_expr_c(e, b, trail, fluents)).collect();
            IntervalList::intersect_all(lists.iter())
        }
        CIntervalExpr::RelComp(base, subs) => {
            let base_l = eval_interval_expr_c(base, b, trail, fluents);
            let sub_ls: Vec<IntervalList> =
                subs.iter().map(|e| eval_interval_expr_c(e, b, trail, fluents)).collect();
            IntervalList::relative_complement_all(&base_l, sub_ls.iter())
        }
    }
}

/// Arena-backed twin of [`eval_interval_expr_c`]: every node writes its
/// (normalised, contiguous) result into `arena` scratch and returns an
/// index range, so expression evaluation allocates nothing once the arena
/// and `ranges` buffer are warm. The caller owns the arena lifetime — mark
/// before, truncate after consuming the returned range.
pub(crate) fn eval_interval_expr_into(
    expr: &CIntervalExpr,
    b: &mut Bindings,
    trail: &mut Vec<VarId>,
    fluents: &CFluentStore,
    arena: &mut IntervalArena,
    ranges: &mut Vec<IvRange>,
) -> IvRange {
    match expr {
        CIntervalExpr::Fluent { slot, pat } => {
            let mark = arena.mark();
            let fs = &fluents.slots[*slot as usize];
            for i in 0..fs.len() {
                if fluent_matches_c(pat, fs.args(i), fs.value(i), b, trail) {
                    arena.copy_in(fs.ivs(i).as_slice());
                }
            }
            arena.union_finish(mark)
        }
        CIntervalExpr::Union(es) => {
            let mark = arena.mark();
            for e in es {
                eval_interval_expr_into(e, b, trail, fluents, arena, ranges);
            }
            arena.union_finish(mark)
        }
        CIntervalExpr::Intersect(es) => {
            let mark = arena.mark();
            let rs = ranges.len();
            for e in es {
                let r = eval_interval_expr_into(e, b, trail, fluents, arena, ranges);
                ranges.push(r);
            }
            let out = arena.intersect_all_into(mark, &ranges[rs..]);
            ranges.truncate(rs);
            out
        }
        CIntervalExpr::RelComp(base, subs) => {
            let mark = arena.mark();
            let base_r = eval_interval_expr_into(base, b, trail, fluents, arena, ranges);
            let sub_mark = arena.mark();
            for e in subs {
                eval_interval_expr_into(e, b, trail, fluents, arena, ranges);
            }
            let d = arena.relative_complement_all_into(base_r, sub_mark);
            arena.collapse(mark, d)
        }
    }
}
