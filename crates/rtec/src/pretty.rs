//! Pretty-printing of rule sets in the paper's Prolog-ish notation.
//!
//! Rendering compiled rules back into readable Event Calculus syntax makes
//! rule libraries reviewable (compare against the paper's formalisation)
//! and is invaluable when debugging stratification or binding issues.

use crate::dsl::RuleSet;
use crate::pattern::{ArgPat, VarId};
use crate::rule::{
    BodyAtom, CmpOp, EventRule, GuardExpr, IntervalExpr, NumExpr, SfKind, SimpleFluentRule,
    StaticRule, ValRef,
};
use crate::stratify::HeadKind;

fn var_name(rs: &RuleSet, v: VarId) -> String {
    rs.var_names.get(v.index()).cloned().unwrap_or_else(|| format!("_V{}", v.0))
}

fn fmt_arg(rs: &RuleSet, a: &ArgPat) -> String {
    match a {
        ArgPat::Any => "_".to_string(),
        ArgPat::Const(t) => t.to_string(),
        ArgPat::Var(v) => var_name(rs, *v),
    }
}

fn fmt_args(rs: &RuleSet, args: &[ArgPat]) -> String {
    args.iter().map(|a| fmt_arg(rs, a)).collect::<Vec<_>>().join(", ")
}

fn fmt_valref(rs: &RuleSet, v: &ValRef) -> String {
    match v {
        ValRef::Var(v) => var_name(rs, *v),
        ValRef::Const(t) => t.to_string(),
    }
}

fn fmt_num(rs: &RuleSet, e: &NumExpr) -> String {
    match e {
        NumExpr::Var(v) => var_name(rs, *v),
        NumExpr::Const(c) => format!("{c}"),
        NumExpr::Add(a, b) => format!("({} + {})", fmt_num(rs, a), fmt_num(rs, b)),
        NumExpr::Sub(a, b) => format!("({} - {})", fmt_num(rs, a), fmt_num(rs, b)),
        NumExpr::Mul(a, b) => format!("({} * {})", fmt_num(rs, a), fmt_num(rs, b)),
        NumExpr::Abs(a) => format!("|{}|", fmt_num(rs, a)),
    }
}

fn fmt_cmp(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Lt => "<",
        CmpOp::Le => "=<",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
        CmpOp::Eq => "=:=",
        CmpOp::Ne => "=\\=",
    }
}

fn fmt_guard(rs: &RuleSet, g: &GuardExpr) -> String {
    match g {
        GuardExpr::Cmp { lhs, op, rhs } => {
            format!("{} {} {}", fmt_num(rs, lhs), fmt_cmp(*op), fmt_num(rs, rhs))
        }
        GuardExpr::TermEq(a, b) => format!("{} == {}", fmt_valref(rs, a), fmt_valref(rs, b)),
        GuardExpr::TermNe(a, b) => format!("{} \\== {}", fmt_valref(rs, a), fmt_valref(rs, b)),
        GuardExpr::And(gs) => gs.iter().map(|g| fmt_guard(rs, g)).collect::<Vec<_>>().join(", "),
        GuardExpr::Or(gs) => {
            format!("({})", gs.iter().map(|g| fmt_guard(rs, g)).collect::<Vec<_>>().join(" ; "))
        }
        GuardExpr::Not(g) => format!("not ({})", fmt_guard(rs, g)),
    }
}

fn fmt_atom(rs: &RuleSet, atom: &BodyAtom) -> String {
    match atom {
        BodyAtom::Happens { pat, time } => {
            format!("happensAt({}({}), {})", pat.kind, fmt_args(rs, &pat.args), var_name(rs, *time))
        }
        BodyAtom::Holds { pat, time, negated } => {
            let core = format!(
                "holdsAt({}({}) = {}, {})",
                pat.name,
                fmt_args(rs, &pat.args),
                fmt_arg(rs, &pat.value),
                var_name(rs, *time)
            );
            if *negated {
                format!("not {core}")
            } else {
                core
            }
        }
        BodyAtom::Relation { name, args } => format!("{}({})", name, fmt_args(rs, args)),
        BodyAtom::Builtin { name, args } => format!(
            "{}({})",
            name,
            args.iter().map(|a| fmt_valref(rs, a)).collect::<Vec<_>>().join(", ")
        ),
        BodyAtom::Guard(g) => fmt_guard(rs, g),
    }
}

fn fmt_body(rs: &RuleSet, body: &[BodyAtom]) -> String {
    body.iter().map(|a| format!("    {}", fmt_atom(rs, a))).collect::<Vec<_>>().join(",\n")
}

fn fmt_sf_rule(rs: &RuleSet, r: &SimpleFluentRule) -> String {
    let head_pred = match r.kind {
        SfKind::Initiated => "initiatedAt",
        SfKind::Terminated => "terminatedAt",
    };
    format!(
        "{}({}({}) = {}, {}) <-\n{}.",
        head_pred,
        r.head.name,
        fmt_args(rs, &r.head.args),
        fmt_arg(rs, &r.head.value),
        var_name(rs, r.time),
        fmt_body(rs, &r.body)
    )
}

fn fmt_ev_rule(rs: &RuleSet, r: &EventRule) -> String {
    format!(
        "happensAt({}({}), {}) <-\n{}.",
        r.head.kind,
        fmt_args(rs, &r.head.args),
        var_name(rs, r.time),
        fmt_body(rs, &r.body)
    )
}

fn fmt_interval_expr(rs: &RuleSet, e: &IntervalExpr) -> String {
    match e {
        IntervalExpr::Fluent(p) => {
            format!("holdsFor({}({}) = {})", p.name, fmt_args(rs, &p.args), fmt_arg(rs, &p.value))
        }
        IntervalExpr::Union(es) => format!(
            "union_all([{}])",
            es.iter().map(|e| fmt_interval_expr(rs, e)).collect::<Vec<_>>().join(", ")
        ),
        IntervalExpr::Intersect(es) => format!(
            "intersect_all([{}])",
            es.iter().map(|e| fmt_interval_expr(rs, e)).collect::<Vec<_>>().join(", ")
        ),
        IntervalExpr::RelComp(base, subs) => format!(
            "relative_complement_all({}, [{}])",
            fmt_interval_expr(rs, base),
            subs.iter().map(|e| fmt_interval_expr(rs, e)).collect::<Vec<_>>().join(", ")
        ),
    }
}

fn fmt_static_rule(rs: &RuleSet, r: &StaticRule) -> String {
    let domain =
        if r.domain.is_empty() { String::new() } else { format!("{},\n", fmt_body(rs, &r.domain)) };
    format!(
        "holdsFor({}({}) = {}, I) <-\n{}    I = {}.",
        r.head.name,
        fmt_args(rs, &r.head.args),
        fmt_arg(rs, &r.head.value),
        domain,
        fmt_interval_expr(rs, &r.expr)
    )
}

impl RuleSet {
    /// Renders the whole rule set in Prolog-ish Event Calculus notation,
    /// grouped by evaluation stratum.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        for (i, stratum) in self.strata.iter().enumerate() {
            out.push_str(&format!("% --- stratum {} : {} ---\n", i, stratum.symbol));
            for &idx in &stratum.rule_indices {
                let rule = match stratum.kind {
                    HeadKind::Event => fmt_ev_rule(self, &self.ev_rules[idx]),
                    HeadKind::SimpleFluent => fmt_sf_rule(self, &self.sf_rules[idx]),
                    HeadKind::StaticFluent => fmt_static_rule(self, &self.static_rules[idx]),
                };
                out.push_str(&rule);
                out.push_str("\n\n");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {

    use crate::dsl::*;
    use crate::term::Term;

    fn sample_ruleset() -> RuleSet {
        let mut b = RuleSetBuilder::new();
        b.declare_event("traffic", 3);
        b.declare_relation("loc", 1);
        let (int, d, f) = (b.var("Int"), b.var("D"), b.var("F"));
        let t = b.var("T");
        b.initiated(
            fluent("scatsCongestion", [pat(int)], val(true)),
            t,
            [
                happens(event_pat("traffic", [pat(int), pat(d), pat(f)]), t),
                guard(cmp(d, crate::rule::CmpOp::Ge, 84.0)),
                guard(cmp(f, crate::rule::CmpOp::Le, 1512.0)),
            ],
        );
        let t2 = b.var("T2");
        b.terminated(
            fluent("scatsCongestion", [pat(int)], val(true)),
            t2,
            [
                happens(event_pat("traffic", [pat(int), pat(d), pat(f)]), t2),
                guard(cmp(d, crate::rule::CmpOp::Lt, 84.0)),
            ],
        );
        b.static_fluent(
            fluent("anyCongestion", [pat(int)], val(true)),
            [relation("loc", [pat(int)])],
            crate::rule::IntervalExpr::Fluent(fluent_pat("scatsCongestion", [pat(int)], val(true))),
        );
        let t3 = b.var("T3");
        b.derived_event(
            event_head("alarm", [pat(int)]),
            t3,
            [
                happens(event_pat("traffic", [pat(int), pat(d), pat(f)]), t3),
                not_holds(fluent_pat("scatsCongestion", [pat(int)], val(true)), t3),
                guard(term_ne(int, Term::int(0))),
            ],
        );
        b.build().unwrap()
    }

    #[test]
    fn renders_all_rule_forms() {
        let rs = sample_ruleset();
        let text = rs.pretty();
        assert!(text.contains("initiatedAt(scatsCongestion(Int) = true, T) <-"));
        assert!(text.contains("terminatedAt(scatsCongestion(Int) = true, T2) <-"));
        assert!(text.contains("happensAt(traffic(Int, D, F), T)"));
        assert!(text.contains("D >= 84"));
        assert!(text.contains("F =< 1512"));
        assert!(text.contains("holdsFor(anyCongestion(Int) = true, I) <-"));
        assert!(text.contains("holdsFor(scatsCongestion(Int) = true)"));
        assert!(text.contains("not holdsAt(scatsCongestion(Int) = true, T3)"));
        assert!(text.contains("Int \\== 0"));
        assert!(text.contains("% --- stratum"));
    }

    #[test]
    fn strata_appear_in_evaluation_order() {
        let rs = sample_ruleset();
        let text = rs.pretty();
        let scats_pos = text.find("initiatedAt(scatsCongestion").unwrap();
        let any_pos = text.find("holdsFor(anyCongestion").unwrap();
        assert!(scats_pos < any_pos, "dependencies print before dependents");
    }
}
