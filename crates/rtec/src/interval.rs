//! Maximal intervals and the RTEC interval algebra.
//!
//! `holdsFor(F=V, I)` in RTEC computes the list `I` of *maximal* intervals
//! for which fluent `F` continuously has value `V`. Statically-determined
//! fluents are then defined through the interval manipulation constructs
//! `union_all`, `intersect_all` and `relative_complement_all` (Table 1 of the
//! paper). This module implements those constructs over normalised interval
//! lists.
//!
//! # Convention
//!
//! Intervals are half-open over discrete time: `[start, end)` contains `t`
//! iff `start <= t < end`. An initiation at `T` starts an interval at `T`; a
//! termination at `T` ends it at `T` (exclusive). This is the standard
//! implementation convention and differs from the textbook Event Calculus
//! (`initiatedAt` strictly earlier than `T`) only by a uniform one-tick
//! shift, which is unobservable at the 20 s–6 min granularity of the Dublin
//! SDE streams. When a fluent has been initiated but not yet terminated the
//! interval is *open* (`end() == None`), meaning "holds since `start`,
//! ongoing".

use crate::time::{Time, TIME_MAX};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A non-empty half-open interval `[start, end)`; `end = None` means the
/// interval is ongoing (right-open to infinity).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    start: Time,
    /// Exclusive end; `TIME_MAX` encodes an ongoing interval.
    end_raw: Time,
}

impl Interval {
    /// A bounded interval `[start, end)`. Panics if `end <= start` (empty
    /// intervals are not representable; construct lists instead).
    pub fn span(start: Time, end: Time) -> Interval {
        assert!(end > start, "Interval::span requires end > start ({start}..{end})");
        Interval { start, end_raw: end }
    }

    /// Fallible version of [`Interval::span`]: returns `None` when the
    /// interval would be empty.
    pub fn try_span(start: Time, end: Time) -> Option<Interval> {
        (end > start).then_some(Interval { start, end_raw: end })
    }

    /// An ongoing interval `[start, ∞)`.
    pub fn open_from(start: Time) -> Interval {
        Interval { start, end_raw: TIME_MAX }
    }

    /// Inclusive start.
    pub fn start(&self) -> Time {
        self.start
    }

    /// Exclusive end, or `None` when ongoing.
    pub fn end(&self) -> Option<Time> {
        (self.end_raw != TIME_MAX).then_some(self.end_raw)
    }

    /// Whether the interval is ongoing (no known end).
    pub fn is_open(&self) -> bool {
        self.end_raw == TIME_MAX
    }

    /// Whether `t` lies inside the interval.
    pub fn contains(&self, t: Time) -> bool {
        t >= self.start && t < self.end_raw
    }

    /// Duration, clipping ongoing intervals at `now`. Returns 0 when the
    /// interval starts at or after `now`.
    pub fn duration_until(&self, now: Time) -> i64 {
        let end = self.end_raw.min(now);
        (end - self.start).max(0)
    }

    fn intersect_raw(&self, other: &Interval) -> Option<Interval> {
        let s = self.start.max(other.start);
        let e = self.end_raw.min(other.end_raw);
        (e > s).then_some(Interval { start: s, end_raw: e })
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.end() {
            Some(e) => write!(f, "[{}, {})", self.start, e),
            None => write!(f, "[{}, ∞)", self.start),
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A normalised list of maximal intervals: sorted by start, pairwise
/// disjoint, non-adjacent (no `[a,b) [b,c)` pairs) and non-empty.
///
/// All constructors normalise, so the invariant holds for every reachable
/// value; the algebra operations exploit it for linear-time merges.
///
/// The interval storage is shared behind an [`Arc`]: `clone()` is a
/// reference-count bump, never a copy of the intervals. Lists are immutable
/// once built (every operation returns a new list), so sharing is safe and
/// makes the engine's cache snapshots and windowed merge loops allocation
/// free on unchanged fluents.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IntervalList {
    items: Arc<Vec<Interval>>,
}

impl Default for IntervalList {
    fn default() -> IntervalList {
        IntervalList::empty()
    }
}

/// The one shared allocation behind every empty list.
fn empty_items() -> Arc<Vec<Interval>> {
    static EMPTY: OnceLock<Arc<Vec<Interval>>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::new(Vec::new())))
}

impl IntervalList {
    /// The empty list.
    pub fn empty() -> IntervalList {
        IntervalList { items: empty_items() }
    }

    /// A list holding a single interval.
    pub fn single(iv: Interval) -> IntervalList {
        IntervalList { items: Arc::new(vec![iv]) }
    }

    /// Builds a normalised list from arbitrary intervals (sorts, merges
    /// overlapping and adjacent intervals).
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(intervals: I) -> IntervalList {
        let mut items: Vec<Interval> = intervals.into_iter().collect();
        normalise_in_place(&mut items);
        IntervalList { items: Arc::new(items) }
    }

    /// Normalises `buf` in place (caller-provided scratch: no allocation
    /// beyond the buffer's own capacity) and materialises the list from it.
    /// The buffer is left holding the normalised intervals, so a caller can
    /// compare against a previous result before deciding to materialise.
    pub fn from_intervals_in(buf: &mut Vec<Interval>) -> IntervalList {
        normalise_in_place(buf);
        IntervalList::from_normalised(buf)
    }

    /// Materialises a list from an already-normalised slice (one allocation:
    /// the backing storage). Debug-asserts the invariant.
    pub fn from_normalised(items: &[Interval]) -> IntervalList {
        if items.is_empty() {
            return IntervalList::empty();
        }
        let result = IntervalList { items: Arc::new(items.to_vec()) };
        debug_assert!(result.is_normalised(), "from_normalised got {result:?}");
        result
    }

    /// Reconstructs maximal intervals from initiation and termination
    /// time-points, implementing the law of inertia for simple fluents.
    ///
    /// `initially` states whether the fluent already holds at `from` (the
    /// window start); if so the first interval starts at `from`. At equal
    /// time-points terminations are processed before initiations, so a
    /// simultaneous terminate+initiate keeps the fluent continuously true
    /// (the intervals amalgamate) while on a non-holding fluent the
    /// initiation wins — matching RTEC's semantics.
    pub fn from_points(
        inits: &[Time],
        terms: &[Time],
        initially: bool,
        from: Time,
    ) -> IntervalList {
        let mut i = inits.to_vec();
        let mut t = terms.to_vec();
        let mut out: Vec<Interval> = Vec::new();
        points_into(&mut i, &mut t, initially, from, &mut out);
        IntervalList { items: Arc::new(out) }
    }

    /// [`IntervalList::from_points`] with caller-provided scratch: the
    /// init/term buffers are sorted in place and the intervals are written
    /// into `out` (cleared first). The only allocation left to the caller is
    /// the final materialisation — or none at all, when `out` is arena
    /// scratch and the result is compared against a cached list instead.
    pub fn from_points_in(
        inits: &mut [Time],
        terms: &mut [Time],
        initially: bool,
        from: Time,
        out: &mut Vec<Interval>,
    ) -> IntervalList {
        points_into(inits, terms, initially, from, out);
        IntervalList::from_normalised(out)
    }

    /// Number of maximal intervals.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the list is empty (fluent never holds).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over the maximal intervals in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Interval> {
        self.items.iter()
    }

    /// The maximal intervals as a slice.
    pub fn as_slice(&self) -> &[Interval] {
        &self.items
    }

    /// `holdsAt`: whether some interval contains `t`.
    pub fn contains(&self, t: Time) -> bool {
        self.items
            .binary_search_by(|iv| {
                if iv.end_raw <= t {
                    std::cmp::Ordering::Less
                } else if iv.start > t {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Sum of durations, clipping ongoing intervals at `now`.
    pub fn total_duration(&self, now: Time) -> i64 {
        self.items.iter().map(|iv| iv.duration_until(now)).sum()
    }

    /// Set union, preserving maximality.
    pub fn union(&self, other: &IntervalList) -> IntervalList {
        IntervalList::from_intervals(self.items.iter().chain(other.items.iter()).copied())
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IntervalList) -> IntervalList {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            let (a, b) = (&self.items[i], &other.items[j]);
            if let Some(iv) = a.intersect_raw(b) {
                out.push(iv);
            }
            if a.end_raw <= b.end_raw {
                i += 1;
            } else {
                j += 1;
            }
        }
        let result = IntervalList { items: Arc::new(out) };
        debug_assert!(result.is_normalised(), "intersect broke normalisation: {result:?}");
        result
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &IntervalList) -> IntervalList {
        let mut out = Vec::new();
        let mut j = 0;
        for a in self.items.iter() {
            let mut cur = *a;
            // Skip intervals of `other` entirely before `cur`.
            while j < other.items.len() && other.items[j].end_raw <= cur.start {
                j += 1;
            }
            let mut k = j;
            let mut alive = true;
            while alive && k < other.items.len() && other.items[k].start < cur.end_raw {
                let b = &other.items[k];
                if b.start > cur.start {
                    out.push(Interval::span(cur.start, b.start));
                }
                if b.end_raw < cur.end_raw {
                    cur = Interval { start: b.end_raw, end_raw: cur.end_raw };
                    k += 1;
                } else {
                    alive = false;
                }
            }
            if alive {
                out.push(cur);
            }
        }
        let result = IntervalList { items: Arc::new(out) };
        debug_assert!(result.is_normalised(), "difference broke normalisation: {result:?}");
        result
    }

    /// Restricts the list to `[lo, hi)`.
    pub fn clip(&self, lo: Time, hi: Time) -> IntervalList {
        if hi <= lo {
            return IntervalList::empty();
        }
        let window = Interval { start: lo, end_raw: hi };
        let result = IntervalList {
            items: Arc::new(self.items.iter().filter_map(|iv| iv.intersect_raw(&window)).collect()),
        };
        debug_assert!(result.is_normalised(), "clip broke normalisation: {result:?}");
        result
    }

    /// Keeps only intervals that end strictly after `t` (plus ongoing ones),
    /// truncating any interval that straddles `t` to start no earlier than
    /// `t`. Used to discard history that fell out of the working memory.
    pub fn after(&self, t: Time) -> IntervalList {
        // Identity fast path: the list is sorted, so if the first interval
        // starts at or after `t` nothing is dropped or truncated — share the
        // existing storage instead of copying it.
        match self.items.first() {
            None => return self.clone(),
            Some(first) if first.start >= t => return self.clone(),
            _ => {}
        }
        let result = IntervalList {
            items: Arc::new(
                self.items
                    .iter()
                    .filter(|iv| iv.end_raw > t)
                    .map(|iv| Interval { start: iv.start.max(t), end_raw: iv.end_raw })
                    .collect(),
            ),
        };
        debug_assert!(result.is_normalised(), "after broke normalisation: {result:?}");
        result
    }

    /// Earliest time at which `self` and `other` disagree about membership,
    /// or `None` when the lists are identical. Used by the incremental engine
    /// to propagate the smallest change frontier downstream.
    pub fn first_divergence(&self, other: &IntervalList) -> Option<Time> {
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            let (a, b) = (&self.items[i], &other.items[j]);
            if a.start != b.start {
                return Some(a.start.min(b.start));
            }
            if a.end_raw != b.end_raw {
                return Some(a.end_raw.min(b.end_raw));
            }
            i += 1;
            j += 1;
        }
        match (self.items.get(i), other.items.get(j)) {
            (Some(a), None) => Some(a.start),
            (None, Some(b)) => Some(b.start),
            _ => None,
        }
    }

    /// `union_all(L, I)`: union of several interval lists (Table 1).
    pub fn union_all<'a, I: IntoIterator<Item = &'a IntervalList>>(lists: I) -> IntervalList {
        IntervalList::from_intervals(lists.into_iter().flat_map(|l| l.items.iter().copied()))
    }

    /// `intersect_all(L, I)`: intersection of several interval lists
    /// (Table 1). The intersection of an empty collection is empty.
    pub fn intersect_all<'a, I: IntoIterator<Item = &'a IntervalList>>(lists: I) -> IntervalList {
        let mut it = lists.into_iter();
        let Some(first) = it.next() else {
            return IntervalList::empty();
        };
        let mut acc = first.clone();
        for l in it {
            if acc.is_empty() {
                break;
            }
            acc = acc.intersect(l);
        }
        acc
    }

    /// `relative_complement_all(I', L, I)`: the relative complement of `base`
    /// with respect to every list in `lists` (Table 1) — i.e.
    /// `base \ (l1 ∪ l2 ∪ …)`.
    pub fn relative_complement_all<'a, I: IntoIterator<Item = &'a IntervalList>>(
        base: &IntervalList,
        lists: I,
    ) -> IntervalList {
        base.difference(&IntervalList::union_all(lists))
    }

    /// Checks the normalisation invariant; used by tests and debug asserts.
    pub fn is_normalised(&self) -> bool {
        self.items.windows(2).all(|w| w[0].end_raw < w[1].start)
            && self.items.iter().all(|iv| iv.end_raw > iv.start)
    }
}

/// Sorts and merges `buf` in place so it satisfies the [`IntervalList`]
/// normalisation invariant. No allocation beyond the buffer's capacity.
pub fn normalise_in_place(buf: &mut Vec<Interval>) {
    buf.sort_unstable_by_key(|iv| (iv.start, iv.end_raw));
    let mut w = 0usize;
    for r in 0..buf.len() {
        let iv = buf[r];
        if w > 0 && iv.start <= buf[w - 1].end_raw {
            buf[w - 1].end_raw = buf[w - 1].end_raw.max(iv.end_raw);
        } else {
            buf[w] = iv;
            w += 1;
        }
    }
    buf.truncate(w);
}

/// Core of [`IntervalList::from_points`]: sorts the init/term buffers in
/// place (terminations before initiations at equal time-points, by merge
/// order) and writes the inertia intervals into `out` (cleared first).
pub fn points_into(
    inits: &mut [Time],
    terms: &mut [Time],
    initially: bool,
    from: Time,
    out: &mut Vec<Interval>,
) {
    inits.sort_unstable();
    terms.sort_unstable();
    out.clear();
    let mut open_since: Option<Time> = initially.then_some(from);
    let (mut i, mut j) = (0usize, 0usize);
    loop {
        // Merge the two sorted streams; a termination at time t is
        // processed before an initiation at the same t.
        let take_term = match (inits.get(i), terms.get(j)) {
            (None, None) => break,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(&it), Some(&tt)) => tt <= it,
        };
        if take_term {
            let t = terms[j];
            j += 1;
            if let Some(s) = open_since.take() {
                if t > s {
                    out.push(Interval::span(s, t));
                }
                // t <= s would be an empty interval: drop it, the fluent
                // never observably held.
            }
        } else {
            let t = inits[i];
            i += 1;
            if open_since.is_none() && t >= from {
                open_since = Some(t);
            }
        }
    }
    if let Some(s) = open_since {
        out.push(Interval::open_from(s));
    }
    // The inertia construction emits sorted disjoint intervals, but repeated
    // term-then-init at one time-point can emit adjacent spans; merge them.
    let mut w = 0usize;
    for r in 0..out.len() {
        let iv = out[r];
        if w > 0 && iv.start <= out[w - 1].end_raw {
            out[w - 1].end_raw = out[w - 1].end_raw.max(iv.end_raw);
        } else {
            out[w] = iv;
            w += 1;
        }
    }
    out.truncate(w);
}

/// [`IntervalList::first_divergence`] over raw normalised slices, with the
/// left slice viewed *clamped at `t`* (the `after(t)` view) — what the
/// engine's divergence checks need without materialising the clamped list.
pub fn first_divergence_clamped(prev: &[Interval], t: Time, new: &[Interval]) -> Option<Time> {
    let skip = prev.partition_point(|iv| iv.end_raw <= t);
    let mut i = skip;
    let mut j = 0usize;
    while i < prev.len() && j < new.len() {
        let a = Interval { start: prev[i].start.max(t), end_raw: prev[i].end_raw };
        let b = new[j];
        if a.start != b.start {
            return Some(a.start.min(b.start));
        }
        if a.end_raw != b.end_raw {
            return Some(a.end_raw.min(b.end_raw));
        }
        i += 1;
        j += 1;
    }
    match (prev.get(i), new.get(j)) {
        (Some(a), None) => Some(a.start.max(t)),
        (None, Some(b)) => Some(b.start),
        _ => None,
    }
}

/// Whether the clamped-at-`t` view of `prev` equals `new` exactly.
pub fn clamped_eq(prev: &[Interval], t: Time, new: &[Interval]) -> bool {
    first_divergence_clamped(prev, t, new).is_none()
}

// ---------------------------------------------------------------------------
// Interval arena
// ---------------------------------------------------------------------------

/// An index range into an [`IntervalArena`]'s slab — the arena-backed stand-in
/// for an owned interval list. Only meaningful against the arena that issued
/// it, and only until that arena is truncated below `off`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvRange {
    off: u32,
    len: u32,
}

impl IvRange {
    /// Number of intervals in the range.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the range holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A slab of intervals reused across evaluations: the interval algebra's
/// `*_into` variants write their results here instead of allocating a fresh
/// `Arc<Vec<Interval>>` per operation. Operations follow a stack discipline —
/// [`IntervalArena::mark`] before a computation, operate, read the result
/// slice, [`IntervalArena::truncate`] back — so a steady-state window cycle
/// touches only already-reserved capacity.
///
/// The arena is *derived state*: like the compiled plan it is excluded from
/// checkpoint snapshots and rebuilt (empty) on restore.
#[derive(Default)]
pub struct IntervalArena {
    buf: Vec<Interval>,
}

impl IntervalArena {
    /// An empty arena.
    pub fn new() -> IntervalArena {
        IntervalArena::default()
    }

    /// Current stack top; pass to [`IntervalArena::truncate`] to release
    /// everything pushed after this point.
    pub fn mark(&self) -> u32 {
        self.buf.len() as u32
    }

    /// Releases the stack down to `mark`.
    pub fn truncate(&mut self, mark: u32) {
        self.buf.truncate(mark as usize);
    }

    /// Reserved capacity of the slab (for allocation accounting).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// The intervals of a range issued by this arena.
    pub fn slice(&self, r: IvRange) -> &[Interval] {
        &self.buf[r.off as usize..(r.off + r.len) as usize]
    }

    /// Copies an external interval slice onto the stack.
    pub fn copy_in(&mut self, items: &[Interval]) -> IvRange {
        let off = self.buf.len() as u32;
        self.buf.extend_from_slice(items);
        IvRange { off, len: items.len() as u32 }
    }

    /// Pushes the clamped-at-`t` view of `items` (the `after(t)` operation)
    /// onto the stack.
    pub fn after_into(&mut self, items: &[Interval], t: Time) -> IvRange {
        let off = self.buf.len() as u32;
        for iv in items {
            if iv.end_raw > t {
                self.buf.push(Interval { start: iv.start.max(t), end_raw: iv.end_raw });
            }
        }
        IvRange { off, len: self.buf.len() as u32 - off }
    }

    /// Builds the inertia intervals from sorted-in-place init/term buffers
    /// onto the stack — the arena twin of [`IntervalList::from_points`].
    pub fn from_points_into(
        &mut self,
        inits: &mut [Time],
        terms: &mut [Time],
        initially: bool,
        from: Time,
        scratch: &mut Vec<Interval>,
    ) -> IvRange {
        points_into(inits, terms, initially, from, scratch);
        self.copy_in(scratch)
    }

    /// Normalises everything pushed since `mark` in place, merging it into a
    /// single normalised range — the n-ary union over all operand slices
    /// copied in since the mark.
    pub fn union_finish(&mut self, mark: u32) -> IvRange {
        let region = &mut self.buf[mark as usize..];
        region.sort_unstable_by_key(|iv| (iv.start, iv.end_raw));
        let base = mark as usize;
        let n = self.buf.len() - base;
        let mut w = 0usize;
        for r in 0..n {
            let iv = self.buf[base + r];
            if w > 0 && iv.start <= self.buf[base + w - 1].end_raw {
                self.buf[base + w - 1].end_raw = self.buf[base + w - 1].end_raw.max(iv.end_raw);
            } else {
                self.buf[base + w] = iv;
                w += 1;
            }
        }
        self.buf.truncate(base + w);
        IvRange { off: mark, len: w as u32 }
    }

    /// `union_all` over arena ranges: the operands must already live on the
    /// stack at or above `mark`; everything from `mark` up is merged.
    pub fn union_all_into(&mut self, mark: u32) -> IvRange {
        self.union_finish(mark)
    }

    /// Pairwise intersection of two ranges, pushed onto the stack top.
    fn intersect_pair(&mut self, a: IvRange, b: IvRange) -> IvRange {
        let off = self.buf.len() as u32;
        let (mut i, mut j) = (0u32, 0u32);
        while i < a.len && j < b.len {
            let x = self.buf[(a.off + i) as usize];
            let y = self.buf[(b.off + j) as usize];
            let s = x.start.max(y.start);
            let e = x.end_raw.min(y.end_raw);
            if e > s {
                self.buf.push(Interval { start: s, end_raw: e });
            }
            if x.end_raw <= y.end_raw {
                i += 1;
            } else {
                j += 1;
            }
        }
        IvRange { off, len: self.buf.len() as u32 - off }
    }

    /// `intersect_all` over ranges already on the stack at or above `mark`;
    /// the result is collapsed down to `mark`. An empty operand list yields
    /// the empty range (matching [`IntervalList::intersect_all`]).
    pub fn intersect_all_into(&mut self, mark: u32, operands: &[IvRange]) -> IvRange {
        let Some((&first, rest)) = operands.split_first() else {
            self.truncate(mark);
            return IvRange { off: mark, len: 0 };
        };
        let mut acc = first;
        for &next in rest {
            if acc.is_empty() {
                break;
            }
            acc = self.intersect_pair(acc, next);
        }
        self.collapse(mark, acc)
    }

    /// Set difference `a \ b`, pushed onto the stack top.
    pub fn difference_into(&mut self, a: IvRange, b: IvRange) -> IvRange {
        let off = self.buf.len() as u32;
        let mut j = 0u32;
        for ii in 0..a.len {
            let mut cur = self.buf[(a.off + ii) as usize];
            while j < b.len && self.buf[(b.off + j) as usize].end_raw <= cur.start {
                j += 1;
            }
            let mut k = j;
            let mut alive = true;
            while alive && k < b.len && self.buf[(b.off + k) as usize].start < cur.end_raw {
                let sub = self.buf[(b.off + k) as usize];
                if sub.start > cur.start {
                    self.buf.push(Interval { start: cur.start, end_raw: sub.start });
                }
                if sub.end_raw < cur.end_raw {
                    cur = Interval { start: sub.end_raw, end_raw: cur.end_raw };
                    k += 1;
                } else {
                    alive = false;
                }
            }
            if alive {
                self.buf.push(cur);
            }
        }
        IvRange { off, len: self.buf.len() as u32 - off }
    }

    /// `relative_complement_all`: `base \ (sub₁ ∪ sub₂ ∪ …)` where the sub
    /// ranges (not `base`) sit on the stack at or above `sub_mark`; the
    /// result is collapsed down to `sub_mark`.
    pub fn relative_complement_all_into(&mut self, base: IvRange, sub_mark: u32) -> IvRange {
        let union = self.union_finish(sub_mark);
        let d = self.difference_into(base, union);
        self.collapse(sub_mark, d)
    }

    /// Moves the intervals of `r` (which must sit at or above `mark`) down
    /// to `mark` and truncates — releasing every temporary between.
    pub fn collapse(&mut self, mark: u32, r: IvRange) -> IvRange {
        debug_assert!(r.off >= mark, "collapse target below mark");
        if r.off != mark {
            self.buf.copy_within(r.off as usize..(r.off + r.len) as usize, mark as usize);
        }
        self.buf.truncate((mark + r.len) as usize);
        IvRange { off: mark, len: r.len }
    }

    /// Materialises a range as an owned [`IntervalList`], reusing `cached`'s
    /// storage (an `Arc` bump, no allocation) when the contents are equal.
    pub fn materialise(&self, r: IvRange, cached: &IntervalList) -> IntervalList {
        let s = self.slice(r);
        if s == cached.as_slice() {
            cached.clone()
        } else {
            IntervalList::from_normalised(s)
        }
    }
}

impl fmt::Debug for IntervalList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, iv) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{iv:?}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Interval> for IntervalList {
    fn from_iter<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        IntervalList::from_intervals(iter)
    }
}

impl<'a> IntoIterator for &'a IntervalList {
    type Item = &'a Interval;
    type IntoIter = std::slice::Iter<'a, Interval>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn il(pairs: &[(Time, Time)]) -> IntervalList {
        IntervalList::from_intervals(pairs.iter().map(|&(a, b)| Interval::span(a, b)))
    }

    #[test]
    #[should_panic]
    fn empty_span_panics() {
        let _ = Interval::span(5, 5);
    }

    #[test]
    fn try_span_rejects_empty() {
        assert!(Interval::try_span(5, 5).is_none());
        assert!(Interval::try_span(5, 6).is_some());
    }

    #[test]
    fn interval_contains_half_open() {
        let iv = Interval::span(10, 20);
        assert!(!iv.contains(9));
        assert!(iv.contains(10));
        assert!(iv.contains(19));
        assert!(!iv.contains(20));
        let open = Interval::open_from(5);
        assert!(open.contains(TIME_MAX - 1));
        assert!(open.is_open());
        assert_eq!(open.end(), None);
    }

    #[test]
    fn duration_clips_open_intervals() {
        assert_eq!(Interval::span(10, 20).duration_until(100), 10);
        assert_eq!(Interval::span(10, 20).duration_until(15), 5);
        assert_eq!(Interval::open_from(10).duration_until(25), 15);
        assert_eq!(Interval::span(10, 20).duration_until(5), 0);
    }

    #[test]
    fn from_intervals_normalises() {
        let l = IntervalList::from_intervals(vec![
            Interval::span(8, 12),
            Interval::span(1, 5),
            Interval::span(5, 8), // adjacent: must merge with both neighbours
            Interval::span(20, 25),
            Interval::span(22, 30),
        ]);
        assert_eq!(l.as_slice(), &[Interval::span(1, 12), Interval::span(20, 30)]);
        assert!(l.is_normalised());
    }

    #[test]
    fn contains_binary_search() {
        let l = il(&[(1, 5), (10, 15), (20, 25)]);
        for t in [1, 4, 10, 14, 20, 24] {
            assert!(l.contains(t), "t={t}");
        }
        for t in [0, 5, 9, 15, 19, 25, 100] {
            assert!(!l.contains(t), "t={t}");
        }
    }

    #[test]
    fn union_merges_maximally() {
        let a = il(&[(1, 5), (10, 15)]);
        let b = il(&[(5, 10), (20, 22)]);
        assert_eq!(a.union(&b).as_slice(), &[Interval::span(1, 15), Interval::span(20, 22)]);
    }

    #[test]
    fn intersect_pairs() {
        let a = il(&[(1, 10), (20, 30)]);
        let b = il(&[(5, 25)]);
        assert_eq!(a.intersect(&b).as_slice(), &[Interval::span(5, 10), Interval::span(20, 25)]);
        assert!(a.intersect(&IntervalList::empty()).is_empty());
    }

    #[test]
    fn intersect_with_open() {
        let a = IntervalList::from_intervals(vec![Interval::open_from(10)]);
        let b = il(&[(5, 15), (20, 25)]);
        assert_eq!(a.intersect(&b).as_slice(), &[Interval::span(10, 15), Interval::span(20, 25)]);
    }

    #[test]
    fn difference_carves_holes() {
        let a = il(&[(0, 100)]);
        let b = il(&[(10, 20), (30, 40)]);
        assert_eq!(
            a.difference(&b).as_slice(),
            &[Interval::span(0, 10), Interval::span(20, 30), Interval::span(40, 100)]
        );
    }

    #[test]
    fn difference_total_and_disjoint() {
        let a = il(&[(5, 10)]);
        assert!(a.difference(&il(&[(0, 20)])).is_empty());
        assert_eq!(a.difference(&il(&[(15, 20)])).as_slice(), a.as_slice());
    }

    #[test]
    fn difference_open_base() {
        let a = IntervalList::single(Interval::open_from(0));
        let b = il(&[(10, 20)]);
        let d = a.difference(&b);
        assert_eq!(d.as_slice(), &[Interval::span(0, 10), Interval::open_from(20)]);
    }

    #[test]
    fn relative_complement_all_matches_paper_table() {
        // sourceDisagreement = busCongestion \ scatsIntCongestion
        let bus = il(&[(0, 50)]);
        let scats = il(&[(10, 20), (40, 60)]);
        let d = IntervalList::relative_complement_all(&bus, [&scats]);
        assert_eq!(d.as_slice(), &[Interval::span(0, 10), Interval::span(20, 40)]);
        // with several lists the complement is w.r.t. their union
        let extra = il(&[(0, 5)]);
        let d2 = IntervalList::relative_complement_all(&bus, [&scats, &extra]);
        assert_eq!(d2.as_slice(), &[Interval::span(5, 10), Interval::span(20, 40)]);
    }

    #[test]
    fn union_all_and_intersect_all() {
        let ls = [il(&[(0, 10)]), il(&[(5, 15)]), il(&[(8, 20)])];
        assert_eq!(IntervalList::union_all(ls.iter()).as_slice(), &[Interval::span(0, 20)]);
        assert_eq!(IntervalList::intersect_all(ls.iter()).as_slice(), &[Interval::span(8, 10)]);
        assert!(IntervalList::intersect_all(std::iter::empty()).is_empty());
        assert!(IntervalList::union_all(std::iter::empty()).is_empty());
    }

    #[test]
    fn from_points_basic_inertia() {
        // initiated at 10, terminated at 40 -> [10, 40)
        let l = IntervalList::from_points(&[10], &[40], false, 0);
        assert_eq!(l.as_slice(), &[Interval::span(10, 40)]);
    }

    #[test]
    fn from_points_ongoing() {
        let l = IntervalList::from_points(&[10], &[], false, 0);
        assert_eq!(l.as_slice(), &[Interval::open_from(10)]);
    }

    #[test]
    fn from_points_initially_true() {
        // Holding at window start 100; terminated at 150; re-initiated at 170.
        let l = IntervalList::from_points(&[170], &[150], true, 100);
        assert_eq!(l.as_slice(), &[Interval::span(100, 150), Interval::open_from(170)]);
    }

    #[test]
    fn from_points_repeated_initiations_are_idempotent() {
        // Re-initiating an already holding fluent does not split intervals.
        let l = IntervalList::from_points(&[10, 20, 30], &[40], false, 0);
        assert_eq!(l.as_slice(), &[Interval::span(10, 40)]);
    }

    #[test]
    fn from_points_simultaneous_term_then_init_keeps_continuity() {
        // Holding fluent terminated and re-initiated at 20: stays continuous.
        let l = IntervalList::from_points(&[10, 20], &[20, 40], false, 0);
        assert_eq!(l.as_slice(), &[Interval::span(10, 40)]);
    }

    #[test]
    fn from_points_simultaneous_on_idle_fluent_starts() {
        // Not holding; term and init both at 10: term processed first (no-op),
        // init starts the interval.
        let l = IntervalList::from_points(&[10], &[10], false, 0);
        assert_eq!(l.as_slice(), &[Interval::open_from(10)]);
    }

    #[test]
    fn from_points_termination_without_initiation_is_noop() {
        let l = IntervalList::from_points(&[], &[5, 15], false, 0);
        assert!(l.is_empty());
    }

    #[test]
    fn from_points_ignores_initiations_before_window() {
        let l = IntervalList::from_points(&[50], &[], false, 100);
        assert!(l.is_empty(), "initiation before window start must not leak in");
    }

    #[test]
    fn clip_and_after() {
        let l = il(&[(0, 10), (20, 30)]);
        assert_eq!(l.clip(5, 25).as_slice(), &[Interval::span(5, 10), Interval::span(20, 25)]);
        assert!(l.clip(10, 10).is_empty());
        assert_eq!(l.after(25).as_slice(), &[Interval::span(25, 30)]);
        assert_eq!(l.after(35).as_slice(), &[] as &[Interval]);
    }

    #[test]
    fn total_duration() {
        let l = IntervalList::from_intervals(vec![Interval::span(0, 10), Interval::open_from(20)]);
        assert_eq!(l.total_duration(25), 15);
    }

    #[test]
    fn debug_format() {
        let l = il(&[(1, 5)]);
        assert_eq!(format!("{l:?}"), "{[1, 5)}");
        let o = IntervalList::single(Interval::open_from(3));
        assert_eq!(format!("{o:?}"), "{[3, ∞)}");
    }
}
