//! Error types for rule-set compilation and engine operation.

use std::fmt;

/// Errors produced when compiling a rule set or running the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtecError {
    /// A rule referenced a variable that is not bound at the point of use
    /// (e.g. a guard or negated condition over an unbound variable).
    UnboundVariable {
        /// Name of the offending rule head.
        rule: String,
        /// Human-readable variable name.
        var: String,
    },
    /// The head time variable of a simple-fluent or event rule is never bound
    /// by a `happensAt` condition in the body.
    UnanchoredTime {
        /// Name of the offending rule head.
        rule: String,
    },
    /// The dependency graph of the rule set contains a cycle, so the rules
    /// cannot be stratified.
    CyclicRuleSet {
        /// Symbols participating in the cycle, in discovery order.
        cycle: Vec<String>,
    },
    /// A symbol was used both as an event kind and as a fluent name (or with
    /// inconsistent arity).
    SymbolClash {
        /// The clashing symbol.
        symbol: String,
        /// Description of the clash.
        detail: String,
    },
    /// A builtin predicate was invoked but never registered with the engine.
    UnknownBuiltin {
        /// Name of the missing builtin.
        name: String,
    },
    /// A relation was referenced but never declared.
    UnknownRelation {
        /// Name of the missing relation.
        name: String,
    },
    /// Window configuration is invalid (non-positive sizes, step > WM, …).
    InvalidWindow {
        /// Description of the problem.
        detail: String,
    },
    /// An operation that must precede the first query (e.g. `set_initially`)
    /// was attempted after recognition had already started.
    EngineAlreadyStarted {
        /// The first query time the engine answered.
        first_query: crate::time::Time,
    },
    /// A query time was not ahead of the previous query time.
    NonMonotonicQuery {
        /// The previous query time.
        previous: crate::time::Time,
        /// The requested query time.
        requested: crate::time::Time,
    },
    /// A symbol was used in a rule body without being declared as an input
    /// or defined by any rule head.
    Undeclared {
        /// The unknown symbol.
        symbol: String,
        /// Where it appeared (e.g. "happensAt", "holdsAt").
        context: String,
    },
    /// Arity mismatch between a declaration and a use site.
    ArityMismatch {
        /// The symbol with mismatching arity.
        symbol: String,
        /// Declared arity.
        declared: usize,
        /// Arity at the use site.
        used: usize,
    },
    /// A serialised engine state (see [`crate::engine::Engine::restore_state`])
    /// could not be decoded, or does not fit the engine's rule set.
    CorruptState {
        /// Description of the problem.
        detail: String,
    },
    /// A shared [`crate::compile::CompiledPlan`] was installed into an engine
    /// whose rule set it was not compiled from.
    PlanMismatch {
        /// Description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for RtecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtecError::UnboundVariable { rule, var } => {
                write!(f, "rule `{rule}`: variable `{var}` used before being bound")
            }
            RtecError::UnanchoredTime { rule } => write!(
                f,
                "rule `{rule}`: head time variable is not bound by any happensAt condition"
            ),
            RtecError::CyclicRuleSet { cycle } => {
                write!(f, "rule set is cyclic: {}", cycle.join(" -> "))
            }
            RtecError::SymbolClash { symbol, detail } => {
                write!(f, "symbol `{symbol}` declared inconsistently: {detail}")
            }
            RtecError::UnknownBuiltin { name } => write!(f, "unknown builtin predicate `{name}`"),
            RtecError::UnknownRelation { name } => write!(f, "unknown relation `{name}`"),
            RtecError::InvalidWindow { detail } => write!(f, "invalid window: {detail}"),
            RtecError::EngineAlreadyStarted { first_query } => write!(
                f,
                "operation must precede the first query (recognition started at {first_query})"
            ),
            RtecError::NonMonotonicQuery { previous, requested } => write!(
                f,
                "query times must be strictly increasing (previous {previous}, requested {requested})"
            ),
            RtecError::Undeclared { symbol, context } => {
                write!(f, "symbol `{symbol}` used in {context} but never declared or defined")
            }
            RtecError::ArityMismatch { symbol, declared, used } => write!(
                f,
                "symbol `{symbol}` declared with arity {declared} but used with arity {used}"
            ),
            RtecError::CorruptState { detail } => {
                write!(f, "corrupt engine state snapshot: {detail}")
            }
            RtecError::PlanMismatch { detail } => {
                write!(f, "compiled plan does not fit this engine's rule set: {detail}")
            }
        }
    }
}

impl std::error::Error for RtecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RtecError::UnboundVariable { rule: "noisy".into(), var: "Bus".into() };
        assert!(e.to_string().contains("noisy") && e.to_string().contains("Bus"));
        let e = RtecError::CyclicRuleSet { cycle: vec!["a".into(), "b".into()] };
        assert!(e.to_string().contains("a -> b"));
    }
}
