//! Stratification of rule sets.
//!
//! RTEC evaluates derived symbols bottom-up: a complex event or fluent may
//! only depend on input SDEs and on symbols defined in earlier strata. This
//! guarantees that negation-as-failure (`not holdsAt`) is *stratified* — the
//! negated fluent is fully computed before any rule reads it — and yields the
//! deterministic evaluation plan the engine follows at every query time.
//!
//! Cyclic definitions are rejected at rule-set build time with the offending
//! cycle reported.

use crate::error::RtecError;
use crate::rule::{BodyAtom, EventRule, SimpleFluentRule, StaticRule};
use crate::term::Symbol;
use std::collections::{HashMap, HashSet};

/// What kind of definition a stratum evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadKind {
    /// A derived event (`happensAt` rules).
    Event,
    /// A simple fluent (`initiatedAt`/`terminatedAt` rules + inertia).
    SimpleFluent,
    /// A statically-determined fluent (interval expression).
    StaticFluent,
}

/// One evaluation step: all rules defining `symbol`, evaluated together.
#[derive(Debug, Clone)]
pub struct Stratum {
    /// The derived symbol this stratum defines.
    pub symbol: Symbol,
    /// The definition kind.
    pub kind: HeadKind,
    /// Indices into the corresponding rule vector of the rule set.
    pub rule_indices: Vec<usize>,
}

pub(crate) fn body_deps(body: &[BodyAtom], out: &mut HashSet<Symbol>) {
    for atom in body {
        match atom {
            BodyAtom::Happens { pat, .. } => {
                out.insert(pat.kind);
            }
            BodyAtom::Holds { pat, .. } => {
                out.insert(pat.name);
            }
            BodyAtom::Relation { .. } | BodyAtom::Builtin { .. } | BodyAtom::Guard(_) => {}
        }
    }
}

/// Computes a stratified evaluation order for the given rules.
///
/// `inputs` are the declared input symbols (events and fluents); dependencies
/// on them impose no ordering. Returns the strata in evaluation order, or
/// [`RtecError::CyclicRuleSet`] when the definitions are mutually recursive.
pub fn stratify(
    sf_rules: &[SimpleFluentRule],
    ev_rules: &[EventRule],
    static_rules: &[StaticRule],
    inputs: &HashSet<Symbol>,
) -> Result<Vec<Stratum>, RtecError> {
    // Gather, per derived head symbol, its kind, rule indices and deps.
    let mut kinds: HashMap<Symbol, HeadKind> = HashMap::new();
    let mut rules_of: HashMap<Symbol, Vec<usize>> = HashMap::new();
    let mut deps_of: HashMap<Symbol, HashSet<Symbol>> = HashMap::new();

    for (i, r) in ev_rules.iter().enumerate() {
        kinds.insert(r.head.kind, HeadKind::Event);
        rules_of.entry(r.head.kind).or_default().push(i);
        body_deps(&r.body, deps_of.entry(r.head.kind).or_default());
    }
    for (i, r) in sf_rules.iter().enumerate() {
        kinds.insert(r.head.name, HeadKind::SimpleFluent);
        rules_of.entry(r.head.name).or_default().push(i);
        body_deps(&r.body, deps_of.entry(r.head.name).or_default());
    }
    for (i, r) in static_rules.iter().enumerate() {
        kinds.insert(r.head.name, HeadKind::StaticFluent);
        rules_of.entry(r.head.name).or_default().push(i);
        let entry = deps_of.entry(r.head.name).or_default();
        body_deps(&r.domain, entry);
        let mut fluents = Vec::new();
        r.expr.collect_fluents(&mut fluents);
        entry.extend(fluents);
    }

    // Kahn's algorithm over derived symbols only; ties broken by symbol id
    // for deterministic plans.
    let derived: HashSet<Symbol> = kinds.keys().copied().collect();
    let mut indegree: HashMap<Symbol, usize> = derived.iter().map(|&s| (s, 0)).collect();
    let mut dependents: HashMap<Symbol, Vec<Symbol>> = HashMap::new();
    for (&head, deps) in &deps_of {
        for &d in deps {
            if derived.contains(&d) && !inputs.contains(&d) && d != head {
                *indegree.get_mut(&head).expect("head registered") += 1;
                dependents.entry(d).or_default().push(head);
            } else if d == head && !inputs.contains(&d) {
                // Self-recursion is a cycle of length one.
                return Err(RtecError::CyclicRuleSet {
                    cycle: vec![head.as_str().to_string(), head.as_str().to_string()],
                });
            }
        }
    }

    let mut ready: Vec<Symbol> =
        indegree.iter().filter_map(|(&s, &d)| (d == 0).then_some(s)).collect();
    ready.sort();

    let mut order = Vec::with_capacity(derived.len());
    while let Some(s) = ready.pop() {
        order.push(s);
        let mut newly: Vec<Symbol> = Vec::new();
        if let Some(dep) = dependents.get(&s) {
            for &h in dep {
                let d = indegree.get_mut(&h).expect("dependent registered");
                *d -= 1;
                if *d == 0 {
                    newly.push(h);
                }
            }
        }
        newly.sort();
        // Push in reverse so that pop() yields smallest-symbol-first.
        for h in newly.into_iter().rev() {
            ready.push(h);
        }
    }

    if order.len() != derived.len() {
        let mut cycle: Vec<String> =
            derived.iter().filter(|s| !order.contains(s)).map(|s| s.as_str().to_string()).collect();
        cycle.sort();
        return Err(RtecError::CyclicRuleSet { cycle });
    }

    Ok(order
        .into_iter()
        .map(|symbol| Stratum {
            symbol,
            kind: kinds[&symbol],
            rule_indices: rules_of.remove(&symbol).unwrap_or_default(),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{ArgPat, EventPattern, FluentPattern, VarId};
    use crate::rule::{EventTemplate, FluentTemplate, IntervalExpr, SfKind};
    use crate::term::Term;

    fn happens(kind: &str) -> BodyAtom {
        BodyAtom::Happens {
            pat: EventPattern { kind: Symbol::new(kind), args: vec![] },
            time: VarId(0),
        }
    }

    fn holds(name: &str) -> BodyAtom {
        BodyAtom::Holds {
            pat: FluentPattern {
                name: Symbol::new(name),
                args: vec![],
                value: ArgPat::Const(Term::truth()),
            },
            time: VarId(0),
            negated: false,
        }
    }

    fn sf(head: &str, body: Vec<BodyAtom>) -> SimpleFluentRule {
        SimpleFluentRule {
            kind: SfKind::Initiated,
            head: FluentTemplate {
                name: Symbol::new(head),
                args: vec![],
                value: ArgPat::Const(Term::truth()),
            },
            time: VarId(0),
            body,
            n_vars: 1,
            label: head.to_string(),
        }
    }

    fn ev(head: &str, body: Vec<BodyAtom>) -> EventRule {
        EventRule {
            head: EventTemplate { kind: Symbol::new(head), args: vec![] },
            time: VarId(0),
            body,
            n_vars: 1,
            label: head.to_string(),
        }
    }

    fn static_rule(head: &str, leaf: &str) -> StaticRule {
        StaticRule {
            head: FluentTemplate {
                name: Symbol::new(head),
                args: vec![],
                value: ArgPat::Const(Term::truth()),
            },
            domain: vec![],
            expr: IntervalExpr::Fluent(FluentPattern {
                name: Symbol::new(leaf),
                args: vec![],
                value: ArgPat::Const(Term::truth()),
            }),
            n_vars: 0,
            label: head.to_string(),
        }
    }

    fn inputs(names: &[&str]) -> HashSet<Symbol> {
        names.iter().map(|n| Symbol::new(n)).collect()
    }

    #[test]
    fn orders_chain_dependencies() {
        // c depends on b depends on a (a from input e).
        let sfs = vec![sf("a", vec![happens("e")]), sf("b", vec![happens("e"), holds("a")])];
        let statics = vec![static_rule("c", "b")];
        let strata = stratify(&sfs, &[], &statics, &inputs(&["e"])).unwrap();
        let pos = |n: &str| strata.iter().position(|s| s.symbol == Symbol::new(n)).unwrap();
        assert!(pos("a") < pos("b"));
        assert!(pos("b") < pos("c"));
        assert_eq!(strata[pos("c")].kind, HeadKind::StaticFluent);
    }

    #[test]
    fn groups_rules_of_same_head() {
        let sfs = vec![sf("a", vec![happens("e")]), sf("a", vec![happens("e2")])];
        let strata = stratify(&sfs, &[], &[], &inputs(&["e", "e2"])).unwrap();
        assert_eq!(strata.len(), 1);
        assert_eq!(strata[0].rule_indices, vec![0, 1]);
    }

    #[test]
    fn detects_cycles() {
        let sfs =
            vec![sf("a", vec![happens("e"), holds("b")]), sf("b", vec![happens("e"), holds("a")])];
        let err = stratify(&sfs, &[], &[], &inputs(&["e"])).unwrap_err();
        assert!(matches!(err, RtecError::CyclicRuleSet { .. }));
    }

    #[test]
    fn detects_self_recursion() {
        let sfs = vec![sf("a", vec![happens("e"), holds("a")])];
        let err = stratify(&sfs, &[], &[], &inputs(&["e"])).unwrap_err();
        assert!(matches!(err, RtecError::CyclicRuleSet { .. }));
    }

    #[test]
    fn derived_events_participate() {
        // derived event `d` from input `e`; fluent `f` from `d`.
        let evs = vec![ev("d", vec![happens("e")])];
        let sfs = vec![sf("f", vec![happens("d")])];
        let strata = stratify(&sfs, &evs, &[], &inputs(&["e"])).unwrap();
        let pos = |n: &str| strata.iter().position(|s| s.symbol == Symbol::new(n)).unwrap();
        assert!(pos("d") < pos("f"));
        assert_eq!(strata[pos("d")].kind, HeadKind::Event);
    }

    #[test]
    fn deterministic_order_for_independent_symbols() {
        let sfs = vec![sf("za", vec![happens("e")]), sf("ab", vec![happens("e")])];
        let a = stratify(&sfs, &[], &[], &inputs(&["e"])).unwrap();
        let b = stratify(&sfs, &[], &[], &inputs(&["e"])).unwrap();
        let names = |s: &[Stratum]| s.iter().map(|x| x.symbol.as_str()).collect::<Vec<_>>();
        assert_eq!(names(&a), names(&b));
    }
}
