//! The recognition engine: windowed, stratified evaluation of rule sets.
//!
//! An [`Engine`] buffers arriving SDEs, and at each query time `Qi` evaluates
//! the rule set over the working memory `(Qi − WM, Qi]` (Section 4.2 of the
//! paper):
//!
//! 1. input events and fluent observations that have arrived by `Qi` and
//!    occurred inside the window are indexed;
//! 2. strata are evaluated bottom-up — derived events are added to the event
//!    index, simple fluents go through initiation/termination point collection
//!    and the law of inertia, statically-determined fluents evaluate their
//!    interval expressions;
//! 3. fluent intervals are cached so that the next query can seed the value
//!    each fluent has at its window start (inertia across windows).
//!
//! Re-deriving everything inside the window is what lets SDEs that arrive
//! *late* (but still inside the window) be amended into the results, exactly
//! as Figure 2 of the paper illustrates; SDEs older than the window are
//! irrevocably lost.

use crate::dsl::RuleSet;
use crate::error::RtecError;
use crate::event::{Event, FluentObs, Stamped};
use crate::interval::{Interval, IntervalList};
use crate::pattern::{
    match_args, unbind_all, ArgPat, Bindings, EventPattern, FluentPattern, VarId,
};
use crate::rule::{BodyAtom, GuardExpr, IntervalExpr, NumExpr, SfKind, StaticRule, ValRef};
use crate::slotstate::{CDeriv, CPoint, CycleState, EvTable, SfTable, StTable, StratumState};
use crate::stratify::{body_deps, HeadKind};
use crate::term::{Symbol, Term};
use crate::time::{Time, TIME_MAX, TIME_MIN};
use crate::window::WindowConfig;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// A registered boolean builtin predicate (e.g. the spatial `close/4`).
pub type BuiltinFn = Arc<dyn Fn(&[Term]) -> bool + Send + Sync>;

// ---------------------------------------------------------------------------
// Window-local stores
// ---------------------------------------------------------------------------

#[derive(Default)]
struct KindStore {
    /// Events of one kind, sorted by occurrence time.
    items: Vec<Event>,
    /// Indices into `items` grouped by first argument, each sorted by time.
    by_first: HashMap<Term, Vec<u32>>,
}

impl KindStore {
    fn rebuild_index(&mut self) {
        self.items.sort_by_key(|e| e.time);
        self.by_first.clear();
        for (i, e) in self.items.iter().enumerate() {
            if let Some(first) = e.args.first() {
                self.by_first.entry(first.clone()).or_default().push(i as u32);
            }
        }
    }
}

#[derive(Default)]
struct EventStore {
    by_kind: HashMap<Symbol, KindStore>,
}

impl EventStore {
    fn build(events: impl IntoIterator<Item = Event>) -> EventStore {
        let mut store = EventStore::default();
        for e in events {
            store.by_kind.entry(e.kind).or_default().items.push(e);
        }
        for ks in store.by_kind.values_mut() {
            ks.rebuild_index();
        }
        store
    }

    fn add_derived(&mut self, events: Vec<Event>) {
        let mut touched: HashSet<Symbol> = HashSet::new();
        for e in events {
            touched.insert(e.kind);
            self.by_kind.entry(e.kind).or_default().items.push(e);
        }
        for k in touched {
            self.by_kind.get_mut(&k).expect("just inserted").rebuild_index();
        }
    }
}

#[derive(Default)]
struct ObsStore {
    by_name: HashMap<Symbol, KindObsStore>,
}

#[derive(Default)]
struct KindObsStore {
    items: Vec<FluentObs>,
    by_first: HashMap<Term, Vec<u32>>,
}

impl KindObsStore {
    fn rebuild_index(&mut self) {
        self.items.sort_by_key(|o| o.time);
        self.by_first.clear();
        for (i, o) in self.items.iter().enumerate() {
            if let Some(first) = o.args.first() {
                self.by_first.entry(first.clone()).or_default().push(i as u32);
            }
        }
    }

    fn range_at(&self, t: Time) -> &[FluentObs] {
        let lo = self.items.partition_point(|o| o.time < t);
        let hi = self.items.partition_point(|o| o.time <= t);
        &self.items[lo..hi]
    }
}

impl ObsStore {
    fn build(obs: impl IntoIterator<Item = FluentObs>) -> ObsStore {
        let mut store = ObsStore::default();
        for o in obs {
            store.by_name.entry(o.name).or_default().items.push(o);
        }
        for ks in store.by_name.values_mut() {
            ks.rebuild_index();
        }
        store
    }
}

// ---------------------------------------------------------------------------
// Derived fluent store
// ---------------------------------------------------------------------------

/// One computed fluent grounding and its maximal intervals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FluentEntry {
    /// Ground arguments.
    pub args: Vec<Term>,
    /// The fluent value.
    pub value: Term,
    /// Maximal intervals where `name(args) = value` holds.
    pub ivs: IntervalList,
}

/// All derived fluent groundings computed at one query time.
#[derive(Debug, Clone, Default)]
pub struct FluentStore {
    by_name: HashMap<Symbol, Vec<FluentEntry>>,
    /// Indices into the entry vector, grouped by first argument — narrows
    /// `holdsAt` lookups with a bound leading argument (e.g. `noisy(Bus)`).
    by_first: HashMap<(Symbol, Term), Vec<u32>>,
}

impl FluentStore {
    /// The computed groundings of fluent `name` (empty slice if none).
    pub fn entries(&self, name: Symbol) -> &[FluentEntry] {
        self.by_name.get(&name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Entry indices of `name` whose first argument equals `first`.
    fn indices_by_first(&self, name: Symbol, first: &Term) -> Option<&[u32]> {
        self.by_first.get(&(name, first.clone())).map(Vec::as_slice)
    }

    /// Fluent names with at least one grounding.
    pub fn names(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.by_name.keys().copied()
    }

    fn insert(&mut self, name: Symbol, entry: FluentEntry) {
        let entries = self.by_name.entry(name).or_default();
        if let Some(first) = entry.args.first() {
            self.by_first.entry((name, first.clone())).or_default().push(entries.len() as u32);
        }
        entries.push(entry);
    }

    /// Looks up the intervals of one exact grounding.
    pub fn intervals(&self, name: Symbol, args: &[Term], value: &Term) -> Option<&IntervalList> {
        self.by_name
            .get(&name)?
            .iter()
            .find(|e| e.args == args && &e.value == value)
            .map(|e| &e.ivs)
    }
}

type FluentKey = (Symbol, Vec<Term>, Term);

// ---------------------------------------------------------------------------
// Recognition result
// ---------------------------------------------------------------------------

/// Aggregate counts of one recognition query (diagnostics/benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecognitionStats {
    /// Derived (complex) events recognised.
    pub derived_events: usize,
    /// Derived fluent groundings with at least one interval.
    pub fluent_groundings: usize,
    /// Total maximal intervals across all groundings.
    pub intervals: usize,
}

/// Wall-clock timing of one recognition query, split by phase.
///
/// Measured with `std::time::Instant` only, so the crate stays
/// dependency-free; callers (e.g. the pipeline layer) copy these into their
/// own metrics registries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryTiming {
    /// The whole `query` call.
    pub total: std::time::Duration,
    /// Selecting visible window contents, expiring old items and building
    /// the event/observation stores.
    pub windowing: std::time::Duration,
    /// Stratified rule evaluation (events, simple fluents, static fluents).
    pub evaluation: std::time::Duration,
    /// Strata on which rule bodies were actually (re-)solved this query; a
    /// stratum whose input delta is empty reuses its cached results and is
    /// not counted.
    pub strata_evaluated: usize,
    /// Fluent groundings whose interval lists were recomputed (inertia
    /// reconstruction or static interval expressions); groundings untouched
    /// by the delta reuse their previous intervals and are not counted.
    pub groundings_recomputed: usize,
    /// Heap allocations attributable to the window cycle on the slot-indexed
    /// path: retained-buffer capacity growths (stores, grounding tables,
    /// arenas) plus solver-scratch growths on the querying thread. Excludes
    /// result delivery (the returned `Recognition`) and is `0` on the
    /// interpreter and legacy compiled paths, which do not track it.
    pub window_allocations: u64,
    /// Time spent refilling the retained slot-indexed stores and merging
    /// stratum output back into them (the cache-maintenance share of the
    /// cycle; a subset of `windowing` + `evaluation`). Zero on paths that do
    /// not track it.
    pub cache_rebuild: std::time::Duration,
}

/// The result of one recognition query.
#[derive(Debug, Clone)]
pub struct Recognition {
    /// All derived (complex) events recognised in the window, time-sorted.
    pub derived_events: Vec<Event>,
    /// The query time.
    pub query_time: Time,
    /// The window start (`query_time − WM`).
    pub window_start: Time,
    /// Number of input SDEs (events + fluent observations) in the window.
    pub sde_count: usize,
    /// Wall-clock cost of producing this result.
    pub timing: QueryTiming,
    fluents: FluentStore,
}

impl Recognition {
    /// The full derived fluent store.
    pub fn fluent_store(&self) -> &FluentStore {
        &self.fluents
    }

    /// Intervals of one exact fluent grounding, if computed.
    pub fn intervals_of(&self, name: &str, args: &[Term], value: &Term) -> Option<&IntervalList> {
        self.fluents.intervals(Symbol::new(name), args, value)
    }

    /// All computed groundings of fluent `name`.
    pub fn fluent_entries(&self, name: &str) -> &[FluentEntry] {
        self.fluents.entries(Symbol::new(name))
    }

    /// Derived events of the given kind, time-sorted.
    pub fn events_of(&self, kind: &str) -> Vec<&Event> {
        let k = Symbol::new(kind);
        self.derived_events.iter().filter(|e| e.kind == k).collect()
    }

    /// `holdsAt` on a derived fluent grounding.
    pub fn holds_at(&self, name: &str, args: &[Term], value: &Term, t: Time) -> bool {
        self.intervals_of(name, args, value).is_some_and(|l| l.contains(t))
    }

    /// Aggregate counts for diagnostics.
    pub fn stats(&self) -> RecognitionStats {
        let mut stats = RecognitionStats {
            derived_events: self.derived_events.len(),
            ..RecognitionStats::default()
        };
        for name in self.fluents.names() {
            for e in self.fluents.entries(name) {
                stats.fluent_groundings += 1;
                stats.intervals += e.ivs.len();
            }
        }
        stats
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// A buffered input item plus whether it has been visible to a query yet.
/// Items never seen by any query are the *delta* when they become visible
/// (new arrivals and late amendments alike).
struct Seen<T> {
    item: Stamped<T>,
    seen: bool,
}

/// One cached derivation of a derived event: the ground head plus the
/// *evidence span* — the min/max of every event/fluent time on the solution
/// path. The derivation stays valid exactly while its whole span is inside
/// the window (`span_min > window_start`) and below the change frontier
/// (`span_max < frontier`), because everything the body consulted at those
/// times is unchanged.
#[derive(Clone)]
pub(crate) struct CachedDeriv {
    args: Vec<Term>,
    time: Time,
    span_min: Time,
    span_max: Time,
}

/// One cached initiation/termination point of a simple fluent grounding,
/// with the evidence span of the rule body that produced it.
#[derive(Clone)]
struct CachedPoint {
    kind: SfKind,
    time: Time,
    span_min: Time,
    span_max: Time,
}

/// Role of a body atom inside one pivoted evaluation plan (see
/// [`pivot_plans`]). Only `Happens` atoms carry a non-`Free` role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HappensRole {
    /// The pivot: its event time must be `>= frontier`.
    Pivot,
    /// A happens atom preceding the pivot in the original body: its event
    /// time must be `< frontier` (so the union over all plans partitions
    /// the delta-reachable derivations without duplicates).
    Before,
    /// No time restriction.
    Free,
}

/// Cached initiation/termination points per fluent symbol, keyed by the
/// grounding's `(args, value)` pair.
type PointsCache = HashMap<Symbol, HashMap<(Vec<Term>, Term), Vec<CachedPoint>>>;

/// One semi-naive evaluation plan: the body with one `Happens` atom moved to
/// the front (safe — pattern atoms only *add* bindings, and all other atoms
/// keep their relative order, so binding prerequisites still hold) plus the
/// per-atom time roles.
struct PivotPlan {
    atoms: Vec<BodyAtom>,
    roles: Vec<HappensRole>,
}

/// Whether pivoted (delta-bounded) evaluation is complete for `body`: every
/// `Holds` atom must read its fluent at a time bound by a preceding
/// `happensAt` condition. A time taken from an event argument or a relation
/// tuple can reach upstream changes that no happens-time bound sees, so such
/// rules must be fully re-solved when their stratum is dirty.
fn body_pivotable(body: &[BodyAtom]) -> bool {
    let mut happens_times: Vec<VarId> = Vec::new();
    for atom in body {
        match atom {
            BodyAtom::Happens { time, .. } => happens_times.push(*time),
            BodyAtom::Holds { time, .. } if !happens_times.contains(time) => return false,
            _ => {}
        }
    }
    true
}

/// Builds one plan per `Happens` atom in `body`. Plan `k` enumerates exactly
/// the derivations whose *first* happens atom (in body order) with event time
/// `>= frontier` is atom `k`; the union over plans is exactly the set of
/// derivations touching the delta, each found once.
fn pivot_plans(body: &[BodyAtom]) -> Vec<PivotPlan> {
    let mut plans = Vec::new();
    for (pi, pivot) in body.iter().enumerate() {
        if !matches!(pivot, BodyAtom::Happens { .. }) {
            continue;
        }
        let mut atoms = Vec::with_capacity(body.len());
        let mut roles = Vec::with_capacity(body.len());
        atoms.push(pivot.clone());
        roles.push(HappensRole::Pivot);
        for (j, a) in body.iter().enumerate() {
            if j == pi {
                continue;
            }
            atoms.push(a.clone());
            roles.push(if j < pi && matches!(a, BodyAtom::Happens { .. }) {
                HappensRole::Before
            } else {
                HappensRole::Free
            });
        }
        plans.push(PivotPlan { atoms, roles });
    }
    plans
}

/// A windowed RTEC recognition engine for one rule set.
///
/// Evaluation is *incremental* by default: between queries the engine tracks
/// which input SDEs became newly visible (fresh arrivals and late amendments
/// inside the window overlap), derives a per-symbol change frontier, and
/// re-solves rule bodies only for derivations that can reach the delta.
/// Cached derivations whose evidence span is unaffected are reused verbatim,
/// which makes the cost of a query proportional to the window *delta* rather
/// than the window size. The first query, relation/builtin changes and
/// [`Engine::set_incremental`]`(false)` fall back to full re-evaluation.
pub struct Engine {
    ruleset: RuleSet,
    window: WindowConfig,
    buffered_events: Vec<Seen<Event>>,
    buffered_obs: Vec<Seen<FluentObs>>,
    relations: HashMap<Symbol, Vec<Vec<Term>>>,
    builtins: HashMap<Symbol, BuiltinFn>,
    prev_fluents: HashMap<FluentKey, IntervalList>,
    /// Cached static-fluent outputs of the previous query (clamp-reused when
    /// every dependency is clean).
    prev_static: HashMap<FluentKey, IntervalList>,
    /// Cached derived-event derivations with evidence spans, per head symbol.
    event_cache: HashMap<Symbol, Vec<CachedDeriv>>,
    /// Cached initiation/termination points with evidence spans, per fluent
    /// symbol and grounding.
    points_cache: PointsCache,
    /// Direct body dependencies (event/fluent symbols) of each stratum,
    /// aligned with `ruleset.strata`.
    stratum_deps: Vec<Vec<Symbol>>,
    /// Whether a static stratum's rule domains are free of `Happens`/`Holds`
    /// atoms (pure relation/guard domains can be clamp-reused; event-driven
    /// domains must be re-solved because expiry can shrink them silently).
    static_pure: Vec<bool>,
    /// Pivoted evaluation plans per event rule / simple-fluent rule.
    ev_pivots: Vec<Vec<PivotPlan>>,
    sf_pivots: Vec<Vec<PivotPlan>>,
    /// Whether every rule of the stratum can be evaluated by happens-time
    /// pivoting (all `Holds` times are happens times). Strata with rules
    /// that read fluents at times taken from event arguments or relation
    /// tuples re-solve fully whenever the window start has advanced: such a
    /// read can flip with *no* input delta once its time falls behind the
    /// new window start (e.g. a negated `holdsAt` at an expired time-point
    /// becomes true), so neither cached derivations nor a clean-dependency
    /// skip are sound for them.
    stratum_pivotable: Vec<bool>,
    /// Strata grouped by dependency depth: level 0 depends only on inputs,
    /// level `k+1` only on inputs and strata of levels `≤ k`. Strata within
    /// one level are mutually independent — no body of one references the
    /// head symbol of another — so they can be evaluated in any order, or in
    /// parallel, without changing any output.
    stratum_levels: Vec<Vec<usize>>,
    last_query: Option<Time>,
    first_query: Option<Time>,
    /// Relations/builtins changed since the last query: every stratum must
    /// re-evaluate because those dependencies are outside frontier tracking.
    dirty_all: bool,
    incremental: bool,
    parallel_strata: bool,
    /// The compiled execution plan, present once [`Engine::set_compiled`] or
    /// [`Engine::set_compiled_plan`] has been called. Derived state: never
    /// serialised, rebuilt deterministically from the rule set.
    plan: Option<Arc<crate::compile::CompiledPlan>>,
    /// Whether queries run on the compiled plan (the interpreter remains
    /// available as the differential reference).
    compiled: bool,
    /// Relation tuples in the plan's dense index order.
    relations_dense: Vec<Vec<Vec<Term>>>,
    /// Builtin implementations in the plan's dense index order.
    builtins_dense: Vec<Option<BuiltinFn>>,
    /// Retained slot-indexed window state for the arena-backed compiled
    /// path. Derived state like the plan: checkpoint-excluded, reseeded from
    /// the canonical caches whenever it is out of sync.
    cstate: Option<Box<crate::slotstate::CycleState>>,
    /// Whether compiled queries run on the retained slot-indexed state
    /// (default) or the legacy per-window rebuild path (the arena-off A/B
    /// reference).
    arena_mode: bool,
    /// Whether the canonical `HashMap` caches (`prev_fluents` etc.) lag
    /// behind the slot-indexed tables; refreshed lazily when the legacy
    /// paths or the snapshotter need them.
    legacy_stale: bool,
}

struct EvalCtx<'a> {
    events: &'a EventStore,
    obs: &'a ObsStore,
    fluents: &'a FluentStore,
    relations: &'a HashMap<Symbol, Vec<Vec<Term>>>,
    builtins: &'a HashMap<Symbol, BuiltinFn>,
    input_fluents: &'a HashMap<Symbol, usize>,
}

impl Engine {
    /// Creates an engine for `ruleset` with the given window configuration.
    pub fn new(ruleset: RuleSet, window: WindowConfig) -> Engine {
        let stratum_deps: Vec<Vec<Symbol>> = ruleset
            .strata
            .iter()
            .map(|s| {
                let mut deps: HashSet<Symbol> = HashSet::new();
                match s.kind {
                    HeadKind::Event => {
                        for &i in &s.rule_indices {
                            body_deps(&ruleset.ev_rules[i].body, &mut deps);
                        }
                    }
                    HeadKind::SimpleFluent => {
                        for &i in &s.rule_indices {
                            body_deps(&ruleset.sf_rules[i].body, &mut deps);
                        }
                    }
                    HeadKind::StaticFluent => {
                        for &i in &s.rule_indices {
                            let r = &ruleset.static_rules[i];
                            body_deps(&r.domain, &mut deps);
                            let mut fluents = Vec::new();
                            r.expr.collect_fluents(&mut fluents);
                            deps.extend(fluents);
                        }
                    }
                }
                let mut v: Vec<Symbol> = deps.into_iter().collect();
                v.sort();
                v
            })
            .collect();
        let static_pure: Vec<bool> = ruleset
            .strata
            .iter()
            .map(|s| match s.kind {
                HeadKind::StaticFluent => s.rule_indices.iter().all(|&i| {
                    ruleset.static_rules[i]
                        .domain
                        .iter()
                        .all(|a| !matches!(a, BodyAtom::Happens { .. } | BodyAtom::Holds { .. }))
                }),
                _ => true,
            })
            .collect();
        let ev_pivots: Vec<Vec<PivotPlan>> =
            ruleset.ev_rules.iter().map(|r| pivot_plans(&r.body)).collect();
        let sf_pivots: Vec<Vec<PivotPlan>> =
            ruleset.sf_rules.iter().map(|r| pivot_plans(&r.body)).collect();
        let stratum_pivotable: Vec<bool> = ruleset
            .strata
            .iter()
            .map(|s| match s.kind {
                HeadKind::Event => {
                    s.rule_indices.iter().all(|&i| body_pivotable(&ruleset.ev_rules[i].body))
                }
                HeadKind::SimpleFluent => {
                    s.rule_indices.iter().all(|&i| body_pivotable(&ruleset.sf_rules[i].body))
                }
                HeadKind::StaticFluent => true,
            })
            .collect();
        // Dependency depth of each stratum: 0 for input-only bodies, else one
        // more than the deepest derived dependency. Stratification orders
        // strata topologically, so every derived dependency has a smaller
        // stratum index and its level is already known.
        let sym_to_idx: HashMap<Symbol, usize> =
            ruleset.strata.iter().enumerate().map(|(i, s)| (s.symbol, i)).collect();
        let mut level = vec![0usize; ruleset.strata.len()];
        for i in 0..ruleset.strata.len() {
            level[i] = stratum_deps[i]
                .iter()
                .filter_map(|d| sym_to_idx.get(d).copied().filter(|&j| j < i))
                .map(|j| level[j] + 1)
                .max()
                .unwrap_or(0);
        }
        let depth = level.iter().copied().max().map_or(0, |m| m + 1);
        let mut stratum_levels: Vec<Vec<usize>> = vec![Vec::new(); depth];
        for (i, &l) in level.iter().enumerate() {
            stratum_levels[l].push(i);
        }
        Engine {
            ruleset,
            window,
            buffered_events: Vec::new(),
            buffered_obs: Vec::new(),
            relations: HashMap::new(),
            builtins: HashMap::new(),
            prev_fluents: HashMap::new(),
            prev_static: HashMap::new(),
            event_cache: HashMap::new(),
            points_cache: HashMap::new(),
            stratum_deps,
            static_pure,
            ev_pivots,
            sf_pivots,
            stratum_pivotable,
            stratum_levels,
            last_query: None,
            first_query: None,
            dirty_all: false,
            incremental: true,
            parallel_strata: true,
            plan: None,
            compiled: false,
            relations_dense: Vec::new(),
            builtins_dense: Vec::new(),
            cstate: None,
            arena_mode: true,
            legacy_stale: false,
        }
    }

    /// Enables or disables incremental (delta-aware) evaluation. With `false`
    /// every query re-evaluates the full window, which is the reference
    /// behaviour incremental mode must reproduce exactly — useful for A/B
    /// correctness tests and benchmarks.
    pub fn set_incremental(&mut self, on: bool) {
        self.incremental = on;
    }

    /// Enables or disables parallel evaluation of independent strata. Strata
    /// at the same dependency level never reference each other's head
    /// symbols, so they are evaluated on scoped threads and their outputs
    /// merged in stratum order — every result is identical to serial
    /// evaluation. Parallelism is only used while incremental mode is on
    /// (`set_incremental(false)` implies serial evaluation, the reference
    /// behaviour), and only for levels holding more than one stratum.
    pub fn set_parallel_strata(&mut self, on: bool) {
        self.parallel_strata = on;
    }

    /// Switches query evaluation onto the compiled execution plan (or back
    /// to the interpreter with `false`).
    ///
    /// The first `set_compiled(true)` compiles the engine's rule set into a
    /// [`crate::compile::CompiledPlan`]; the plan is retained across
    /// toggles. Compiled and interpreted evaluation are output-identical —
    /// the interpreter stays available as the differential reference — and
    /// their caches share one format, but a mode switch still marks the
    /// engine dirty so the next query re-derives from scratch, keeping the
    /// equivalence contract independent of cache contents.
    pub fn set_compiled(&mut self, on: bool) {
        if on && self.plan.is_none() {
            let plan = crate::compile::CompiledPlan::compile(&self.ruleset);
            self.install_plan(plan).expect("a plan compiled from the engine's own rule set fits");
        }
        if on != self.compiled {
            self.dirty_all = true;
        }
        self.compiled = on;
    }

    /// Installs a pre-compiled plan (e.g. one `Arc` shared across shard
    /// replicas or region engines) and switches compiled evaluation on.
    ///
    /// Fails with [`RtecError::PlanMismatch`] when the plan was not compiled
    /// from a rule set with this engine's stratification.
    pub fn set_compiled_plan(
        &mut self,
        plan: Arc<crate::compile::CompiledPlan>,
    ) -> Result<(), RtecError> {
        self.install_plan(plan)?;
        if !self.compiled {
            self.dirty_all = true;
        }
        self.compiled = true;
        Ok(())
    }

    /// Switches the compiled path between the retained slot-indexed state
    /// with arena-backed intervals (`true`, the default) and the legacy
    /// per-window cache rebuild (`false`). Output-identical by construction
    /// — the legacy path stays available as the arena A/B differential
    /// reference. Like every mode toggle, switching marks the engine dirty.
    pub fn set_arena(&mut self, on: bool) {
        if on != self.arena_mode {
            self.dirty_all = true;
        }
        self.arena_mode = on;
    }

    /// Whether the compiled path runs on the retained slot-indexed state.
    pub fn is_arena(&self) -> bool {
        self.arena_mode
    }

    /// Whether queries currently run on the compiled plan.
    pub fn is_compiled(&self) -> bool {
        self.compiled
    }

    /// The installed compiled plan, if any (clone the `Arc` to share it with
    /// other engines built from the same rule set).
    pub fn compiled_plan(&self) -> Option<&Arc<crate::compile::CompiledPlan>> {
        self.plan.as_ref()
    }

    fn install_plan(&mut self, plan: Arc<crate::compile::CompiledPlan>) -> Result<(), RtecError> {
        plan.matches(&self.ruleset).map_err(|detail| RtecError::PlanMismatch { detail })?;
        self.plan = Some(plan);
        self.refresh_dense_tables();
        Ok(())
    }

    /// Rebuilds the dense relation/builtin operand tables the compiled
    /// solver indexes into. Cheap and rare: only on plan install and on
    /// relation/builtin registration (which dirty every cache anyway).
    fn refresh_dense_tables(&mut self) {
        let Some(plan) = &self.plan else { return };
        self.relations_dense = plan
            .relation_syms
            .iter()
            .map(|s| self.relations.get(s).cloned().unwrap_or_default())
            .collect();
        self.builtins_dense =
            plan.builtin_syms.iter().map(|s| self.builtins.get(s).cloned()).collect();
    }

    /// The window configuration.
    pub fn window(&self) -> WindowConfig {
        self.window
    }

    /// The rule set being executed.
    pub fn ruleset(&self) -> &RuleSet {
        &self.ruleset
    }

    /// Registers the implementation of a declared builtin predicate.
    pub fn register_builtin<F>(&mut self, name: &str, f: F) -> Result<(), RtecError>
    where
        F: Fn(&[Term]) -> bool + Send + Sync + 'static,
    {
        let sym = Symbol::new(name);
        if !self.ruleset.builtins.contains_key(&sym) {
            return Err(RtecError::UnknownBuiltin { name: name.to_string() });
        }
        self.builtins.insert(sym, Arc::new(f));
        // Builtin results are outside frontier tracking; invalidate caches.
        self.dirty_all = true;
        self.refresh_dense_tables();
        Ok(())
    }

    /// Replaces the tuples of a declared relation.
    pub fn set_relation(&mut self, name: &str, tuples: Vec<Vec<Term>>) -> Result<(), RtecError> {
        let sym = Symbol::new(name);
        let arity = *self
            .ruleset
            .relations
            .get(&sym)
            .ok_or_else(|| RtecError::UnknownRelation { name: name.to_string() })?;
        if let Some(bad) = tuples.iter().find(|t| t.len() != arity) {
            return Err(RtecError::ArityMismatch {
                symbol: name.to_string(),
                declared: arity,
                used: bad.len(),
            });
        }
        self.relations.insert(sym, tuples);
        // Relation tuples are outside frontier tracking; invalidate caches.
        self.dirty_all = true;
        self.refresh_dense_tables();
        Ok(())
    }

    /// Declares that a simple fluent grounding holds *initially* — before
    /// any event of the stream (the Event Calculus `initially` predicate).
    /// Must be called before the first query; the value persists by inertia
    /// until a termination rule fires.
    pub fn set_initially(
        &mut self,
        name: &str,
        args: Vec<Term>,
        value: Term,
    ) -> Result<(), RtecError> {
        if let Some(first_query) = self.first_query {
            return Err(RtecError::EngineAlreadyStarted { first_query });
        }
        let sym = Symbol::new(name);
        if !self.ruleset.derived_fluents.contains(&sym) {
            return Err(RtecError::Undeclared {
                symbol: name.to_string(),
                context: "set_initially (must be a derived simple fluent)".into(),
            });
        }
        self.prev_fluents.insert(
            (sym, args, value),
            IntervalList::single(crate::interval::Interval::open_from(crate::time::TIME_MIN)),
        );
        Ok(())
    }

    /// Buffers an event that arrives exactly when it occurs.
    pub fn add_event(&mut self, event: Event) -> Result<(), RtecError> {
        self.add_stamped_event(Stamped::<Event>::punctual(event))
    }

    /// Buffers an event with an explicit arrival time (possibly delayed).
    pub fn add_stamped_event(&mut self, ev: Stamped<Event>) -> Result<(), RtecError> {
        match self.ruleset.input_events.get(&ev.item.kind) {
            Some(&arity) if arity == ev.item.args.len() => {
                self.buffered_events.push(Seen { item: ev, seen: false });
                Ok(())
            }
            Some(&arity) => Err(RtecError::ArityMismatch {
                symbol: ev.item.kind.as_str().to_string(),
                declared: arity,
                used: ev.item.args.len(),
            }),
            None => Err(RtecError::Undeclared {
                symbol: ev.item.kind.as_str().to_string(),
                context: "add_event (declare it with declare_event)".into(),
            }),
        }
    }

    /// Buffers an input fluent observation arriving when it occurs.
    pub fn add_obs(&mut self, obs: FluentObs) -> Result<(), RtecError> {
        self.add_stamped_obs(Stamped::<FluentObs>::punctual(obs))
    }

    /// Buffers an input fluent observation with an explicit arrival time.
    pub fn add_stamped_obs(&mut self, obs: Stamped<FluentObs>) -> Result<(), RtecError> {
        match self.ruleset.input_fluents.get(&obs.item.name) {
            Some(&arity) if arity == obs.item.args.len() => {
                self.buffered_obs.push(Seen { item: obs, seen: false });
                Ok(())
            }
            Some(&arity) => Err(RtecError::ArityMismatch {
                symbol: obs.item.name.as_str().to_string(),
                declared: arity,
                used: obs.item.args.len(),
            }),
            None => Err(RtecError::Undeclared {
                symbol: obs.item.name.as_str().to_string(),
                context: "add_obs (declare it with declare_input_fluent)".into(),
            }),
        }
    }

    /// Number of buffered (not yet expired) input items.
    pub fn buffered(&self) -> usize {
        self.buffered_events.len() + self.buffered_obs.len()
    }

    /// Runs recognition at query time `q`.
    ///
    /// Query times must be strictly increasing. Items that have arrived by
    /// `q` and occurred in `(q − WM, q]` are processed; items whose
    /// occurrence time has fallen behind the window are discarded.
    pub fn query(&mut self, q: Time) -> Result<Recognition, RtecError> {
        if let Some(prev) = self.last_query {
            if q <= prev {
                return Err(RtecError::NonMonotonicQuery { previous: prev, requested: q });
            }
        }
        // All declared builtins must have implementations.
        for name in self.ruleset.builtins.keys() {
            if !self.builtins.contains_key(name) {
                return Err(RtecError::UnknownBuiltin { name: name.as_str().to_string() });
            }
        }
        if self.compiled {
            if self.arena_mode {
                return self.query_compiled_slots(q);
            }
            return self.query_compiled(q);
        }
        // The interpreter works off the canonical caches; bring them up to
        // date if slot-state queries ran since, and mark the tables as
        // needing a reseed before the next slot-state query.
        if self.legacy_stale {
            self.refresh_legacy_caches();
        }
        if let Some(cs) = self.cstate.as_mut() {
            cs.synced = false;
        }

        let query_started = std::time::Instant::now();
        let start = self.window.window_start(q);

        // Select the visible window contents, classifying the delta: items
        // never seen by any previous query (fresh arrivals and late
        // amendments alike) push the per-symbol change frontier down to
        // their occurrence time. Below the frontier the inputs are exactly
        // what the previous query saw — in-window items are never mutated,
        // only added (tracked here) or expired (tracked by evidence spans).
        let mut input_frontiers: HashMap<Symbol, Time> = HashMap::new();
        let mut visible_events: Vec<Event> = Vec::new();
        for s in &mut self.buffered_events {
            if s.item.arrival <= q && s.item.item.time > start && s.item.item.time <= q {
                if !s.seen {
                    s.seen = true;
                    let f = input_frontiers.entry(s.item.item.kind).or_insert(TIME_MAX);
                    *f = (*f).min(s.item.item.time);
                }
                visible_events.push(s.item.item.clone());
            }
        }
        let mut visible_obs: Vec<FluentObs> = Vec::new();
        for s in &mut self.buffered_obs {
            if s.item.arrival <= q && s.item.item.time > start && s.item.item.time <= q {
                if !s.seen {
                    s.seen = true;
                    let f = input_frontiers.entry(s.item.item.name).or_insert(TIME_MAX);
                    *f = (*f).min(s.item.item.time);
                }
                visible_obs.push(s.item.item.clone());
            }
        }
        let sde_count = visible_events.len() + visible_obs.len();

        // Drop items that can never be in a future window (occurrence behind
        // the current window start; window starts only move forward).
        self.buffered_events.retain(|s| s.item.item.time > start);
        self.buffered_obs.retain(|s| s.item.item.time > start);

        let full_eval = !self.incremental || self.first_query.is_none() || self.dirty_all;
        self.dirty_all = false;
        // Window-start advance changes what non-pivotable strata can read
        // even with an empty input delta (their fluent reads may target
        // times that just expired), so it dirties them unconditionally.
        let window_advanced =
            self.last_query.is_some_and(|prev| self.window.window_start(prev) < start);

        let mut events = EventStore::build(visible_events);
        let obs = ObsStore::build(visible_obs);
        let windowing = query_started.elapsed();
        let evaluation_started = std::time::Instant::now();
        let mut fluents = FluentStore::default();
        let mut derived_events_all: Vec<Event> = Vec::new();

        // Change frontiers per symbol: seeded with the input delta, extended
        // with each derived stratum's first output divergence as it is
        // evaluated. Absent symbols are clean (frontier = TIME_MAX).
        let mut frontiers = input_frontiers;
        let mut new_event_cache: HashMap<Symbol, Vec<CachedDeriv>> = HashMap::new();
        let mut new_points_cache: PointsCache = HashMap::new();
        let mut new_prev_fluents: HashMap<FluentKey, IntervalList> = HashMap::new();
        let mut new_prev_static: HashMap<FluentKey, IntervalList> = HashMap::new();
        let mut strata_evaluated = 0usize;
        let mut groundings_recomputed = 0usize;

        // Strata are processed level by level (see `stratum_levels`): the
        // frontiers and outputs a stratum reads all belong to lower levels,
        // so every stratum of one level can be evaluated against the same
        // pre-level stores — in any order, or on parallel threads — and the
        // outputs merged in stratum index order, reproducing the sequential
        // result exactly.
        let parallel = self.parallel_strata && self.incremental;
        for level in &self.stratum_levels {
            let level_frontiers: Vec<Time> = level
                .iter()
                .map(|&si| {
                    // Everything strictly below the stratum frontier is
                    // untouched by this query's delta; TIME_MAX means the
                    // stratum is clean.
                    let mut frontier = if full_eval {
                        TIME_MIN
                    } else {
                        self.stratum_deps[si]
                            .iter()
                            .map(|d| frontiers.get(d).copied().unwrap_or(TIME_MAX))
                            .min()
                            .unwrap_or(TIME_MAX)
                    };
                    if !self.stratum_pivotable[si] && (window_advanced || frontier < TIME_MAX) {
                        // Delta-bounded solving would be incomplete, and a
                        // clean skip is unsound once the window start moved:
                        // a holdsAt read at an event-argument time can change
                        // truth value purely because that time left the
                        // window. Re-solve fully.
                        frontier = TIME_MIN;
                    }
                    frontier
                })
                .collect();
            let ctx = EvalCtx {
                events: &events,
                obs: &obs,
                fluents: &fluents,
                relations: &self.relations,
                builtins: &self.builtins,
                input_fluents: &self.ruleset.input_fluents,
            };
            let outs: Vec<StratumOut> = if parallel && level.len() > 1 {
                // Same-level strata are independent; evaluate them on the
                // persistent pool instead of spawning a thread per stratum
                // per window. Results land in per-stratum slots so the
                // downstream merge still sees them in level order.
                let this = &*self;
                let ctx = &ctx;
                let slots: Vec<std::sync::Mutex<Option<StratumOut>>> =
                    level.iter().map(|_| std::sync::Mutex::new(None)).collect();
                crate::pool::run_tasks(level.len(), |i| {
                    let out =
                        this.eval_stratum(level[i], level_frontiers[i], start, full_eval, ctx);
                    *slots[i].lock().unwrap() = Some(out);
                });
                slots
                    .into_iter()
                    .map(|s| s.into_inner().unwrap().expect("every stratum task filled its slot"))
                    .collect()
            } else {
                level
                    .iter()
                    .zip(&level_frontiers)
                    .map(|(&si, &fr)| self.eval_stratum(si, fr, start, full_eval, &ctx))
                    .collect()
            };

            for (&si, out) in level.iter().zip(outs) {
                let sym = self.ruleset.strata[si].symbol;
                if out.evaluated {
                    strata_evaluated += 1;
                }
                groundings_recomputed += out.groundings;
                frontiers.insert(sym, out.frontier_out);
                match out.kind {
                    StratumOutKind::Event { new_derivs, new_mat } => {
                        if !new_derivs.is_empty() {
                            new_event_cache.insert(sym, new_derivs);
                        }
                        derived_events_all.extend(new_mat.iter().cloned());
                        events.add_derived(new_mat);
                    }
                    StratumOutKind::Simple { entries, new_pts_map } => {
                        for (args, value, ivs) in entries {
                            fluents.insert(
                                sym,
                                FluentEntry {
                                    args: args.clone(),
                                    value: value.clone(),
                                    ivs: ivs.clone(),
                                },
                            );
                            new_prev_fluents.insert((sym, args, value), ivs);
                        }
                        if !new_pts_map.is_empty() {
                            new_points_cache.insert(sym, new_pts_map);
                        }
                    }
                    StratumOutKind::Static { entries } => {
                        for (args, value, ivs) in entries {
                            fluents.insert(
                                sym,
                                FluentEntry {
                                    args: args.clone(),
                                    value: value.clone(),
                                    ivs: ivs.clone(),
                                },
                            );
                            new_prev_static.insert((sym, args, value), ivs);
                        }
                    }
                }
            }
        }

        self.event_cache = new_event_cache;
        self.points_cache = new_points_cache;
        self.prev_fluents = new_prev_fluents;
        self.prev_static = new_prev_static;
        self.last_query = Some(q);
        if self.first_query.is_none() {
            self.first_query = Some(q);
        }

        derived_events_all.sort_by_key(|a| (a.time, a.kind));
        let evaluation = evaluation_started.elapsed();
        Ok(Recognition {
            derived_events: derived_events_all,
            query_time: q,
            window_start: start,
            sde_count,
            timing: QueryTiming {
                total: query_started.elapsed(),
                windowing,
                evaluation,
                strata_evaluated,
                groundings_recomputed,
                window_allocations: 0,
                cache_rebuild: std::time::Duration::ZERO,
            },
            fluents,
        })
    }

    /// Evaluates one stratum against the pre-level stores without touching
    /// shared state — the caller merges the returned [`StratumOut`] in
    /// stratum index order. Pure with respect to `&self` and `ctx`, so
    /// same-level strata can run this concurrently.
    fn eval_stratum(
        &self,
        si: usize,
        frontier: Time,
        start: Time,
        full_eval: bool,
        ctx: &EvalCtx<'_>,
    ) -> StratumOut {
        let stratum = &self.ruleset.strata[si];
        match stratum.kind {
            HeadKind::Event => {
                // Survivors: cached derivations whose whole evidence span
                // is in-window and below the frontier stay valid.
                let old_derivs =
                    self.event_cache.get(&stratum.symbol).map(Vec::as_slice).unwrap_or(&[]);
                let mut new_derivs: Vec<CachedDeriv> = old_derivs
                    .iter()
                    .filter(|d| d.span_min > start && d.span_max < frontier)
                    .cloned()
                    .collect();
                let mut evaluated = false;
                if frontier < TIME_MAX {
                    evaluated = true;
                    for &i in &stratum.rule_indices {
                        let rule = &self.ruleset.ev_rules[i];
                        solve_frontier(
                            ctx,
                            &rule.body,
                            &self.ev_pivots[i],
                            rule.n_vars,
                            frontier,
                            start,
                            &mut |b, spans| {
                                let t = b
                                    .get(rule.time)
                                    .and_then(term_time)
                                    .expect("head time bound (validated at build)");
                                let args = instantiate_args(&rule.head.args, b);
                                let (mn, mx) = span_bounds(spans);
                                new_derivs.push(CachedDeriv {
                                    args,
                                    time: t,
                                    span_min: mn,
                                    span_max: mx,
                                });
                            },
                        );
                    }
                }
                // Materialise the deduplicated event set and diff it
                // against the previous one for the output frontier.
                let old_mat = materialized_events(old_derivs, stratum.symbol, start);
                let new_mat = materialized_events(&new_derivs, stratum.symbol, start);
                let frontier_out = first_event_divergence(&old_mat, &new_mat);
                StratumOut {
                    evaluated,
                    groundings: 0,
                    frontier_out,
                    kind: StratumOutKind::Event { new_derivs, new_mat },
                }
            }
            HeadKind::SimpleFluent => {
                let sym = stratum.symbol;
                let mut entries: Vec<(Vec<Term>, Term, IntervalList)> = Vec::new();
                let mut groundings = 0usize;
                let mut evaluated = false;
                // Fresh initiation/termination points from the delta.
                let mut fresh: HashMap<(Vec<Term>, Term), Vec<CachedPoint>> = HashMap::new();
                if frontier < TIME_MAX {
                    evaluated = true;
                    for &i in &stratum.rule_indices {
                        let rule = &self.ruleset.sf_rules[i];
                        solve_frontier(
                            ctx,
                            &rule.body,
                            &self.sf_pivots[i],
                            rule.n_vars,
                            frontier,
                            start,
                            &mut |b, spans| {
                                let t = b
                                    .get(rule.time)
                                    .and_then(term_time)
                                    .expect("head time bound (validated at build)");
                                let args = instantiate_args(&rule.head.args, b);
                                let value = match &rule.head.value {
                                    ArgPat::Const(c) => c.clone(),
                                    ArgPat::Var(v) => b.get(*v).expect("head value bound").clone(),
                                    ArgPat::Any => unreachable!("validated at build"),
                                };
                                let (mn, mx) = span_bounds(spans);
                                fresh.entry((args, value)).or_default().push(CachedPoint {
                                    kind: rule.kind,
                                    time: t,
                                    span_min: mn,
                                    span_max: mx,
                                });
                            },
                        );
                    }
                }

                // Grounding universe: groundings with fresh or cached
                // points, plus groundings carried by inertia.
                let empty_pts: HashMap<(Vec<Term>, Term), Vec<CachedPoint>> = HashMap::new();
                let old_pts_all = self.points_cache.get(&sym).unwrap_or(&empty_pts);
                let mut keys: BTreeSet<(Vec<Term>, Term)> = fresh.keys().cloned().collect();
                keys.extend(old_pts_all.keys().cloned());
                for (name, args, value) in self.prev_fluents.keys() {
                    if *name == sym {
                        keys.insert((args.clone(), value.clone()));
                    }
                }

                let mut new_pts_map: HashMap<(Vec<Term>, Term), Vec<CachedPoint>> = HashMap::new();
                let mut f_out = TIME_MAX;
                for key in keys {
                    let old_pts: &[CachedPoint] =
                        old_pts_all.get(&key).map(Vec::as_slice).unwrap_or(&[]);
                    let mut new_pts: Vec<CachedPoint> = old_pts
                        .iter()
                        .filter(|p| p.span_min > start && p.span_max < frontier)
                        .cloned()
                        .collect();
                    if let Some(f) = fresh.remove(&key) {
                        new_pts.extend(f);
                    }
                    // `from_points` has set semantics, so compare the
                    // in-window point sets to decide whether the grounding
                    // changed at all.
                    let old_set: BTreeSet<(Time, bool)> = old_pts
                        .iter()
                        .filter(|p| p.time > start)
                        .map(|p| (p.time, matches!(p.kind, SfKind::Initiated)))
                        .collect();
                    let new_set: BTreeSet<(Time, bool)> = new_pts
                        .iter()
                        .map(|p| (p.time, matches!(p.kind, SfKind::Initiated)))
                        .collect();
                    let full_key: FluentKey = (sym, key.0.clone(), key.1.clone());
                    let prev_out = self.prev_fluents.get(&full_key);
                    let ivs = if old_set == new_set && !full_eval {
                        // Unchanged in-window points: the previous
                        // intervals clipped to the new window start are
                        // exactly what a recompute would produce.
                        prev_out.map(|l| l.after(start)).unwrap_or_default()
                    } else {
                        let initially = prev_out.is_some_and(|l| l.contains(start));
                        if !new_set.is_empty() || initially {
                            groundings += 1;
                        }
                        // Reuse per-thread scratch for the initiation /
                        // termination point splits instead of allocating two
                        // Vecs per grounding per window. Each pool worker
                        // (and the caller thread) keeps its own buffers, so
                        // parallel strata never contend here.
                        thread_local! {
                            static POINT_SCRATCH: std::cell::RefCell<(Vec<Time>, Vec<Time>)> =
                                const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
                        }
                        let computed = POINT_SCRATCH.with(|scratch| {
                            let (inits, terms) = &mut *scratch.borrow_mut();
                            inits.clear();
                            terms.clear();
                            for &(t, init) in &new_set {
                                if init {
                                    inits.push(t);
                                } else {
                                    terms.push(t);
                                }
                            }
                            IntervalList::from_points(inits, terms, initially, start)
                        });
                        let old_clamped = prev_out.map(|l| l.after(start)).unwrap_or_default();
                        if let Some(d) = old_clamped.first_divergence(&computed) {
                            f_out = f_out.min(d);
                        }
                        computed
                    };
                    if !ivs.is_empty() {
                        entries.push((key.0.clone(), key.1.clone(), ivs));
                    }
                    if !new_pts.is_empty() {
                        new_pts_map.insert(key, new_pts);
                    }
                }
                StratumOut {
                    evaluated,
                    groundings,
                    frontier_out: f_out,
                    kind: StratumOutKind::Simple { entries, new_pts_map },
                }
            }
            HeadKind::StaticFluent => {
                let sym = stratum.symbol;
                let mut entries: Vec<(Vec<Term>, Term, IntervalList)> = Vec::new();
                if frontier == TIME_MAX && self.static_pure[si] {
                    // Clean dependencies and a pure relation/guard
                    // domain: every grounding's interval expression
                    // distributes over the window clip, so the cached
                    // result clamped to the new start is exact.
                    for (key, ivs) in &self.prev_static {
                        if key.0 != sym {
                            continue;
                        }
                        let clamped = ivs.after(start);
                        if !clamped.is_empty() {
                            entries.push((key.1.clone(), key.2.clone(), clamped));
                        }
                    }
                    StratumOut {
                        evaluated: false,
                        groundings: 0,
                        frontier_out: TIME_MAX,
                        kind: StratumOutKind::Static { entries },
                    }
                } else {
                    let rules: Vec<&StaticRule> = stratum
                        .rule_indices
                        .iter()
                        .map(|&i| &self.ruleset.static_rules[i])
                        .collect();
                    let computed: HashMap<FluentKey, IntervalList> =
                        eval_static_stratum(&rules, ctx).into_iter().collect();
                    let groundings = computed.len();
                    let mut f_out = TIME_MAX;
                    for (key, old) in &self.prev_static {
                        if key.0 != sym || computed.contains_key(key) {
                            continue;
                        }
                        // Grounding disappeared entirely.
                        if let Some(d) = old.after(start).first_divergence(&IntervalList::empty()) {
                            f_out = f_out.min(d);
                        }
                    }
                    for (key, ivs) in computed {
                        let old_clamped =
                            self.prev_static.get(&key).map(|l| l.after(start)).unwrap_or_default();
                        if let Some(d) = old_clamped.first_divergence(&ivs) {
                            f_out = f_out.min(d);
                        }
                        if !ivs.is_empty() {
                            let (_, args, value) = key;
                            entries.push((args, value, ivs));
                        }
                    }
                    StratumOut {
                        evaluated: true,
                        groundings,
                        frontier_out: f_out,
                        kind: StratumOutKind::Static { entries },
                    }
                }
            }
        }
    }

    /// The compiled twin of [`Engine::query`]'s main loop: identical window
    /// selection, frontier seeding and merge order, but evaluation walks the
    /// plan's flat instruction array over slot-indexed stores — array reads
    /// and binary searches instead of string/hash lookups, with all solver
    /// scratch drawn from the per-thread arena (zero steady-state
    /// allocations, zero locks).
    fn query_compiled(&mut self, q: Time) -> Result<Recognition, RtecError> {
        // This legacy compiled path works off the canonical caches, like the
        // interpreter (see `query` for the stale/sync discipline).
        if self.legacy_stale {
            self.refresh_legacy_caches();
        }
        if let Some(cs) = self.cstate.as_mut() {
            cs.synced = false;
        }
        let plan = Arc::clone(self.plan.as_ref().expect("compiled mode implies a plan"));
        let query_started = std::time::Instant::now();
        let start = self.window.window_start(q);
        let n_slots = plan.n_slots();

        // Slot-indexed change frontiers (TIME_MAX = clean), replacing the
        // interpreter's per-symbol hash map.
        let mut frontiers: Vec<Time> = vec![TIME_MAX; n_slots];
        let mut visible_events: Vec<Event> = Vec::new();
        for s in &mut self.buffered_events {
            if s.item.arrival <= q && s.item.item.time > start && s.item.item.time <= q {
                if !s.seen {
                    s.seen = true;
                    let slot =
                        plan.slots.slot(s.item.item.kind).expect("declared input event has a slot")
                            as usize;
                    frontiers[slot] = frontiers[slot].min(s.item.item.time);
                }
                visible_events.push(s.item.item.clone());
            }
        }
        let mut visible_obs: Vec<FluentObs> = Vec::new();
        for s in &mut self.buffered_obs {
            if s.item.arrival <= q && s.item.item.time > start && s.item.item.time <= q {
                if !s.seen {
                    s.seen = true;
                    let slot = plan
                        .slots
                        .slot(s.item.item.name)
                        .expect("declared input fluent has a slot")
                        as usize;
                    frontiers[slot] = frontiers[slot].min(s.item.item.time);
                }
                visible_obs.push(s.item.item.clone());
            }
        }
        let sde_count = visible_events.len() + visible_obs.len();

        self.buffered_events.retain(|s| s.item.item.time > start);
        self.buffered_obs.retain(|s| s.item.item.time > start);

        let full_eval = !self.incremental || self.first_query.is_none() || self.dirty_all;
        self.dirty_all = false;
        let window_advanced =
            self.last_query.is_some_and(|prev| self.window.window_start(prev) < start);

        let mut events = crate::compile::CEventStore::build(n_slots, visible_events, &plan.slots);
        let obs = crate::compile::CObsStore::build(n_slots, visible_obs, &plan.slots);
        let windowing = query_started.elapsed();
        let evaluation_started = std::time::Instant::now();
        let mut fluents = FluentStore::default();
        let mut cfluents = crate::compile::CFluentStore::new(n_slots);
        let mut derived_events_all: Vec<Event> = Vec::new();

        let mut new_event_cache: HashMap<Symbol, Vec<CachedDeriv>> = HashMap::new();
        let mut new_points_cache: PointsCache = HashMap::new();
        let mut new_prev_fluents: HashMap<FluentKey, IntervalList> = HashMap::new();
        let mut new_prev_static: HashMap<FluentKey, IntervalList> = HashMap::new();
        let mut strata_evaluated = 0usize;
        let mut groundings_recomputed = 0usize;

        let parallel = self.parallel_strata && self.incremental;
        for range in &plan.levels {
            let instrs = &plan.instrs[range.clone()];
            let level_frontiers: Vec<Time> = instrs
                .iter()
                .map(|instr| {
                    let mut frontier = if full_eval {
                        TIME_MIN
                    } else {
                        instr
                            .dep_slots
                            .iter()
                            .map(|&d| frontiers[d as usize])
                            .min()
                            .unwrap_or(TIME_MAX)
                    };
                    if !instr.pivotable && (window_advanced || frontier < TIME_MAX) {
                        frontier = TIME_MIN;
                    }
                    frontier
                })
                .collect();
            let ctx = crate::compile::CCtx {
                events: &events,
                obs: &obs,
                fluents: &cfluents,
                relations: &self.relations_dense,
                builtins: &self.builtins_dense,
            };
            let outs: Vec<StratumOut> = if parallel && instrs.len() > 1 {
                let this = &*self;
                let ctx = &ctx;
                let plan_ref = &plan;
                let slots: Vec<std::sync::Mutex<Option<StratumOut>>> =
                    instrs.iter().map(|_| std::sync::Mutex::new(None)).collect();
                crate::pool::run_tasks(instrs.len(), |i| {
                    let out = this.eval_stratum_compiled(
                        &instrs[i],
                        plan_ref,
                        level_frontiers[i],
                        start,
                        full_eval,
                        ctx,
                    );
                    *slots[i].lock().unwrap() = Some(out);
                });
                slots
                    .into_iter()
                    .map(|s| s.into_inner().unwrap().expect("every stratum task filled its slot"))
                    .collect()
            } else {
                instrs
                    .iter()
                    .zip(&level_frontiers)
                    .map(|(instr, &fr)| {
                        self.eval_stratum_compiled(instr, &plan, fr, start, full_eval, &ctx)
                    })
                    .collect()
            };

            for (instr, out) in instrs.iter().zip(outs) {
                let sym = instr.symbol;
                if out.evaluated {
                    strata_evaluated += 1;
                }
                groundings_recomputed += out.groundings;
                frontiers[instr.slot as usize] = out.frontier_out;
                match out.kind {
                    StratumOutKind::Event { new_derivs, new_mat } => {
                        if !new_derivs.is_empty() {
                            new_event_cache.insert(sym, new_derivs);
                        }
                        derived_events_all.extend(new_mat.iter().cloned());
                        events.add_derived(instr.slot, &new_mat);
                    }
                    StratumOutKind::Simple { entries, new_pts_map } => {
                        let mut batch: Vec<FluentEntry> = Vec::with_capacity(entries.len());
                        for (args, value, ivs) in entries {
                            new_prev_fluents
                                .insert((sym, args.clone(), value.clone()), ivs.clone());
                            batch.push(FluentEntry { args, value, ivs });
                        }
                        cfluents.insert_entries(instr.slot, batch.iter());
                        for e in batch {
                            fluents.insert(sym, e);
                        }
                        if !new_pts_map.is_empty() {
                            new_points_cache.insert(sym, new_pts_map);
                        }
                    }
                    StratumOutKind::Static { entries } => {
                        let mut batch: Vec<FluentEntry> = Vec::with_capacity(entries.len());
                        for (args, value, ivs) in entries {
                            new_prev_static.insert((sym, args.clone(), value.clone()), ivs.clone());
                            batch.push(FluentEntry { args, value, ivs });
                        }
                        cfluents.insert_entries(instr.slot, batch.iter());
                        for e in batch {
                            fluents.insert(sym, e);
                        }
                    }
                }
            }
        }

        self.event_cache = new_event_cache;
        self.points_cache = new_points_cache;
        self.prev_fluents = new_prev_fluents;
        self.prev_static = new_prev_static;
        self.last_query = Some(q);
        if self.first_query.is_none() {
            self.first_query = Some(q);
        }

        derived_events_all.sort_by_key(|a| (a.time, a.kind));
        let evaluation = evaluation_started.elapsed();
        Ok(Recognition {
            derived_events: derived_events_all,
            query_time: q,
            window_start: start,
            sde_count,
            timing: QueryTiming {
                total: query_started.elapsed(),
                windowing,
                evaluation,
                strata_evaluated,
                groundings_recomputed,
                window_allocations: 0,
                cache_rebuild: std::time::Duration::ZERO,
            },
            fluents,
        })
    }

    /// Evaluates one compiled stratum instruction — the compiled twin of
    /// [`Engine::eval_stratum`], sharing its survivor filtering, grounding
    /// universe and divergence logic so both paths populate format-identical
    /// caches (what makes mode toggling and checkpoint restore seamless).
    fn eval_stratum_compiled(
        &self,
        instr: &crate::compile::StratumInstr,
        plan: &crate::compile::CompiledPlan,
        frontier: Time,
        start: Time,
        full_eval: bool,
        ctx: &crate::compile::CCtx<'_>,
    ) -> StratumOut {
        match instr.kind {
            HeadKind::Event => {
                let old_derivs =
                    self.event_cache.get(&instr.symbol).map(Vec::as_slice).unwrap_or(&[]);
                let mut new_derivs: Vec<CachedDeriv> = old_derivs
                    .iter()
                    .filter(|d| d.span_min > start && d.span_max < frontier)
                    .cloned()
                    .collect();
                let mut evaluated = false;
                if frontier < TIME_MAX {
                    evaluated = true;
                    for &ri in &instr.rules {
                        let rule = &self.ruleset.ev_rules[ri as usize];
                        let body = &plan.ev_bodies[ri as usize];
                        crate::compile::solve_frontier_c(
                            ctx,
                            body,
                            rule.n_vars,
                            frontier,
                            start,
                            &mut |b, spans| {
                                let t = b
                                    .get(rule.time)
                                    .and_then(term_time)
                                    .expect("head time bound (validated at build)");
                                let args = instantiate_args(&rule.head.args, b);
                                let (mn, mx) = span_bounds(spans);
                                new_derivs.push(CachedDeriv {
                                    args,
                                    time: t,
                                    span_min: mn,
                                    span_max: mx,
                                });
                            },
                        );
                    }
                }
                let old_mat = materialized_events(old_derivs, instr.symbol, start);
                let new_mat = materialized_events(&new_derivs, instr.symbol, start);
                let frontier_out = first_event_divergence(&old_mat, &new_mat);
                StratumOut {
                    evaluated,
                    groundings: 0,
                    frontier_out,
                    kind: StratumOutKind::Event { new_derivs, new_mat },
                }
            }
            HeadKind::SimpleFluent => {
                let sym = instr.symbol;
                let mut entries: Vec<(Vec<Term>, Term, IntervalList)> = Vec::new();
                let mut groundings = 0usize;
                let mut evaluated = false;
                let mut fresh: HashMap<(Vec<Term>, Term), Vec<CachedPoint>> = HashMap::new();
                if frontier < TIME_MAX {
                    evaluated = true;
                    for &ri in &instr.rules {
                        let rule = &self.ruleset.sf_rules[ri as usize];
                        let body = &plan.sf_bodies[ri as usize];
                        crate::compile::solve_frontier_c(
                            ctx,
                            body,
                            rule.n_vars,
                            frontier,
                            start,
                            &mut |b, spans| {
                                let t = b
                                    .get(rule.time)
                                    .and_then(term_time)
                                    .expect("head time bound (validated at build)");
                                let args = instantiate_args(&rule.head.args, b);
                                let value = match &rule.head.value {
                                    ArgPat::Const(c) => c.clone(),
                                    ArgPat::Var(v) => b.get(*v).expect("head value bound").clone(),
                                    ArgPat::Any => unreachable!("validated at build"),
                                };
                                let (mn, mx) = span_bounds(spans);
                                fresh.entry((args, value)).or_default().push(CachedPoint {
                                    kind: rule.kind,
                                    time: t,
                                    span_min: mn,
                                    span_max: mx,
                                });
                            },
                        );
                    }
                }

                let empty_pts: HashMap<(Vec<Term>, Term), Vec<CachedPoint>> = HashMap::new();
                let old_pts_all = self.points_cache.get(&sym).unwrap_or(&empty_pts);
                let mut keys: BTreeSet<(Vec<Term>, Term)> = fresh.keys().cloned().collect();
                keys.extend(old_pts_all.keys().cloned());
                for (name, args, value) in self.prev_fluents.keys() {
                    if *name == sym {
                        keys.insert((args.clone(), value.clone()));
                    }
                }

                let mut new_pts_map: HashMap<(Vec<Term>, Term), Vec<CachedPoint>> = HashMap::new();
                let mut f_out = TIME_MAX;
                for key in keys {
                    let old_pts: &[CachedPoint] =
                        old_pts_all.get(&key).map(Vec::as_slice).unwrap_or(&[]);
                    let mut new_pts: Vec<CachedPoint> = old_pts
                        .iter()
                        .filter(|p| p.span_min > start && p.span_max < frontier)
                        .cloned()
                        .collect();
                    if let Some(f) = fresh.remove(&key) {
                        new_pts.extend(f);
                    }
                    let old_set: BTreeSet<(Time, bool)> = old_pts
                        .iter()
                        .filter(|p| p.time > start)
                        .map(|p| (p.time, matches!(p.kind, SfKind::Initiated)))
                        .collect();
                    let new_set: BTreeSet<(Time, bool)> = new_pts
                        .iter()
                        .map(|p| (p.time, matches!(p.kind, SfKind::Initiated)))
                        .collect();
                    let full_key: FluentKey = (sym, key.0.clone(), key.1.clone());
                    let prev_out = self.prev_fluents.get(&full_key);
                    let ivs = if old_set == new_set && !full_eval {
                        prev_out.map(|l| l.after(start)).unwrap_or_default()
                    } else {
                        let initially = prev_out.is_some_and(|l| l.contains(start));
                        if !new_set.is_empty() || initially {
                            groundings += 1;
                        }
                        let computed = crate::compile::intervals_from_points(
                            new_set.iter().copied(),
                            initially,
                            start,
                        );
                        let old_clamped = prev_out.map(|l| l.after(start)).unwrap_or_default();
                        if let Some(d) = old_clamped.first_divergence(&computed) {
                            f_out = f_out.min(d);
                        }
                        computed
                    };
                    if !ivs.is_empty() {
                        entries.push((key.0.clone(), key.1.clone(), ivs));
                    }
                    if !new_pts.is_empty() {
                        new_pts_map.insert(key, new_pts);
                    }
                }
                StratumOut {
                    evaluated,
                    groundings,
                    frontier_out: f_out,
                    kind: StratumOutKind::Simple { entries, new_pts_map },
                }
            }
            HeadKind::StaticFluent => {
                let sym = instr.symbol;
                let mut entries: Vec<(Vec<Term>, Term, IntervalList)> = Vec::new();
                if frontier == TIME_MAX && instr.static_pure {
                    for (key, ivs) in &self.prev_static {
                        if key.0 != sym {
                            continue;
                        }
                        let clamped = ivs.after(start);
                        if !clamped.is_empty() {
                            entries.push((key.1.clone(), key.2.clone(), clamped));
                        }
                    }
                    StratumOut {
                        evaluated: false,
                        groundings: 0,
                        frontier_out: TIME_MAX,
                        kind: StratumOutKind::Static { entries },
                    }
                } else {
                    let mut computed: HashMap<FluentKey, IntervalList> = HashMap::new();
                    for &ri in &instr.rules {
                        let rule = &self.ruleset.static_rules[ri as usize];
                        let cs = &plan.static_bodies[ri as usize];
                        let mut expr_trail: Vec<crate::pattern::VarId> = Vec::new();
                        crate::compile::solve_domain_c(
                            ctx,
                            &cs.domain,
                            rule.n_vars,
                            &mut |b, _spans| {
                                let ivs = crate::compile::eval_interval_expr_c(
                                    &cs.expr,
                                    b,
                                    &mut expr_trail,
                                    ctx.fluents,
                                );
                                if ivs.is_empty() {
                                    return;
                                }
                                let args = instantiate_args(&rule.head.args, b);
                                let value = match &rule.head.value {
                                    ArgPat::Const(c) => c.clone(),
                                    ArgPat::Var(v) => b.get(*v).expect("head value bound").clone(),
                                    ArgPat::Any => unreachable!("validated at build"),
                                };
                                let key: FluentKey = (rule.head.name, args, value);
                                computed
                                    .entry(key)
                                    .and_modify(|existing| *existing = existing.union(&ivs))
                                    .or_insert(ivs);
                            },
                        );
                    }
                    let groundings = computed.len();
                    let mut f_out = TIME_MAX;
                    for (key, old) in &self.prev_static {
                        if key.0 != sym || computed.contains_key(key) {
                            continue;
                        }
                        if let Some(d) = old.after(start).first_divergence(&IntervalList::empty()) {
                            f_out = f_out.min(d);
                        }
                    }
                    for (key, ivs) in computed {
                        let old_clamped =
                            self.prev_static.get(&key).map(|l| l.after(start)).unwrap_or_default();
                        if let Some(d) = old_clamped.first_divergence(&ivs) {
                            f_out = f_out.min(d);
                        }
                        if !ivs.is_empty() {
                            let (_, args, value) = key;
                            entries.push((args, value, ivs));
                        }
                    }
                    StratumOut {
                        evaluated: true,
                        groundings,
                        frontier_out: f_out,
                        kind: StratumOutKind::Static { entries },
                    }
                }
            }
        }
    }

    // -- slot-indexed (arena) compiled path ---------------------------------

    /// The arena-backed twin of [`Engine::query_compiled`]: the same window
    /// selection, frontier seeding and merge order, but all per-window state
    /// lives in one retained [`CycleState`] — slot-indexed SDE stores and
    /// fluent tables refilled in place, generation-stamped grounding tables
    /// instead of rebuilt `HashMap` caches, and arena scratch for every
    /// interval computed along the way. A steady-state cycle grows no
    /// retained buffer and no solver scratch; the per-query allocation count
    /// is measured around the cycle and reported in
    /// [`QueryTiming::window_allocations`].
    fn query_compiled_slots(&mut self, q: Time) -> Result<Recognition, RtecError> {
        let plan = Arc::clone(self.plan.as_ref().expect("compiled mode implies a plan"));
        let n_slots = plan.n_slots();
        let n_strata = plan.instrs.len();
        let mut cstate = match self.cstate.take() {
            Some(cs) if cs.shape == (n_slots, n_strata) => cs,
            _ => Box::new(CycleState::new(n_slots, n_strata)),
        };
        // Out-of-sync tables (fresh state, restore, a legacy query in
        // between, a mode toggle) are reseeded from the canonical caches;
        // the window must then re-derive in full — every cached frontier,
        // point and derivation in the tables is from another era.
        let mut forced_full = false;
        if !cstate.synced {
            self.reseed_cstate(&mut cstate, &plan);
            forced_full = true;
        }
        cstate.gen += 1;
        let gen = cstate.gen;

        let query_started = std::time::Instant::now();
        let scratch_before = crate::compile::scratch_allocations();
        cstate.begin_caps();
        let start = self.window.window_start(q);
        let mut cache_rebuild = std::time::Duration::ZERO;

        let cs = &mut *cstate;
        let CycleState { frontiers, events, obs, fluents: cfluents, strata, .. } = cs;
        frontiers.clear();
        frontiers.resize(n_slots, TIME_MAX);

        // Refill the retained SDE stores in place (capacity reuse), tracking
        // per-slot change frontiers exactly like the legacy paths.
        let refill_started = std::time::Instant::now();
        events.clear();
        obs.clear();
        cfluents.clear();
        let mut sde_count = 0usize;
        for s in &mut self.buffered_events {
            if s.item.arrival <= q && s.item.item.time > start && s.item.item.time <= q {
                let slot =
                    plan.slots.slot(s.item.item.kind).expect("declared input event has a slot");
                if !s.seen {
                    s.seen = true;
                    let sl = slot as usize;
                    frontiers[sl] = frontiers[sl].min(s.item.item.time);
                }
                events.push(slot, s.item.item.time, &s.item.item.args);
                sde_count += 1;
            }
        }
        for s in &mut self.buffered_obs {
            if s.item.arrival <= q && s.item.item.time > start && s.item.item.time <= q {
                let slot =
                    plan.slots.slot(s.item.item.name).expect("declared input fluent has a slot");
                if !s.seen {
                    s.seen = true;
                    let sl = slot as usize;
                    frontiers[sl] = frontiers[sl].min(s.item.item.time);
                }
                obs.push(slot, s.item.item.time, &s.item.item.args, &s.item.item.value);
                sde_count += 1;
            }
        }
        self.buffered_events.retain(|s| s.item.item.time > start);
        self.buffered_obs.retain(|s| s.item.item.time > start);
        events.rebuild_all();
        obs.sort_all();
        cache_rebuild += refill_started.elapsed();
        let windowing = query_started.elapsed();

        let full_eval =
            !self.incremental || self.first_query.is_none() || self.dirty_all || forced_full;
        self.dirty_all = false;
        let window_advanced =
            self.last_query.is_some_and(|prev| self.window.window_start(prev) < start);

        let evaluation_started = std::time::Instant::now();
        let mut fluents_out = FluentStore::default();
        let mut derived_events_all: Vec<Event> = Vec::new();
        let mut strata_evaluated = 0usize;
        let mut groundings_recomputed = 0usize;
        let parallel = self.parallel_strata && self.incremental;

        for range in &plan.levels {
            let instrs = &plan.instrs[range.clone()];
            let level_states = &mut strata[range.clone()];
            if parallel && instrs.len() > 1 {
                // Same-level strata are independent; evaluate them on the
                // pool against the shared pre-level stores, each task owning
                // its stratum's table through a mutex cell.
                let outs: Vec<std::sync::Mutex<Option<SlotOut>>> =
                    instrs.iter().map(|_| std::sync::Mutex::new(None)).collect();
                {
                    let this = &*self;
                    let plan_ref = &plan;
                    let frontiers_ref: &[Time] = frontiers;
                    let events_ref: &crate::compile::CEventStore = events;
                    let obs_ref: &crate::compile::CObsStore = obs;
                    let cfluents_ref: &crate::compile::CFluentStore = cfluents;
                    let cells: Vec<std::sync::Mutex<&mut Option<StratumState>>> =
                        level_states.iter_mut().map(std::sync::Mutex::new).collect();
                    crate::pool::run_tasks(instrs.len(), |i| {
                        let instr = &instrs[i];
                        let fr = slot_frontier(instr, frontiers_ref, full_eval, window_advanced);
                        let ctx = crate::compile::CCtx {
                            events: events_ref,
                            obs: obs_ref,
                            fluents: cfluents_ref,
                            relations: &this.relations_dense,
                            builtins: &this.builtins_dense,
                        };
                        let mut state = cells[i].lock().unwrap();
                        let out = this.eval_stratum_slots(
                            instr,
                            plan_ref,
                            fr,
                            start,
                            full_eval,
                            gen,
                            &ctx,
                            state.as_mut().expect("stratum state initialised"),
                        );
                        *outs[i].lock().unwrap() = Some(out);
                    });
                }
                let merge_started = std::time::Instant::now();
                for (i, (instr, out)) in instrs.iter().zip(outs).enumerate() {
                    let out =
                        out.into_inner().unwrap().expect("every stratum task filled its slot");
                    merge_stratum_slots(
                        instr,
                        out,
                        level_states[i].as_ref().expect("stratum state initialised"),
                        gen,
                        events,
                        cfluents,
                        &mut fluents_out,
                        &mut derived_events_all,
                        frontiers,
                        &mut strata_evaluated,
                        &mut groundings_recomputed,
                    );
                }
                cache_rebuild += merge_started.elapsed();
            } else {
                // Serial: merging stratum `i` before evaluating `i + 1` is
                // observationally identical to the batch merge — same-level
                // strata never read each other's slots.
                for (i, instr) in instrs.iter().enumerate() {
                    let fr = slot_frontier(instr, frontiers, full_eval, window_advanced);
                    let out = {
                        let ctx = crate::compile::CCtx {
                            events,
                            obs,
                            fluents: cfluents,
                            relations: &self.relations_dense,
                            builtins: &self.builtins_dense,
                        };
                        self.eval_stratum_slots(
                            instr,
                            &plan,
                            fr,
                            start,
                            full_eval,
                            gen,
                            &ctx,
                            level_states[i].as_mut().expect("stratum state initialised"),
                        )
                    };
                    let merge_started = std::time::Instant::now();
                    merge_stratum_slots(
                        instr,
                        out,
                        level_states[i].as_ref().expect("stratum state initialised"),
                        gen,
                        events,
                        cfluents,
                        &mut fluents_out,
                        &mut derived_events_all,
                        frontiers,
                        &mut strata_evaluated,
                        &mut groundings_recomputed,
                    );
                    cache_rebuild += merge_started.elapsed();
                }
            }
        }

        self.last_query = Some(q);
        if self.first_query.is_none() {
            self.first_query = Some(q);
        }
        derived_events_all.sort_by_key(|a| (a.time, a.kind));
        let evaluation = evaluation_started.elapsed();

        let window_allocations =
            cstate.end_caps() + (crate::compile::scratch_allocations() - scratch_before);
        cstate.synced = true;
        self.cstate = Some(cstate);
        // The canonical HashMap caches now lag behind the tables; the
        // legacy paths and the snapshotter refresh or read through lazily.
        self.legacy_stale = true;

        Ok(Recognition {
            derived_events: derived_events_all,
            query_time: q,
            window_start: start,
            sde_count,
            timing: QueryTiming {
                total: query_started.elapsed(),
                windowing,
                evaluation,
                strata_evaluated,
                groundings_recomputed,
                window_allocations,
                cache_rebuild,
            },
            fluents: fluents_out,
        })
    }

    /// (Re)builds the retained tables and seeds the previous-window
    /// simple-fluent outputs from the canonical caches, so inertia
    /// (`initially`, window-start values) carries across the resync. Event
    /// and point caches are *not* seeded: the first post-reseed window runs
    /// full evaluation, where survivors are empty by construction and only
    /// the previous fluent intervals are observable (through `initially`
    /// seeding and output divergence).
    fn reseed_cstate(&self, cs: &mut CycleState, plan: &crate::compile::CompiledPlan) {
        cs.strata.clear();
        for instr in &plan.instrs {
            cs.strata.push(Some(match instr.kind {
                HeadKind::Event => StratumState::Ev(EvTable::default()),
                HeadKind::SimpleFluent => StratumState::Sf(SfTable::default()),
                HeadKind::StaticFluent => StratumState::St(StTable::default()),
            }));
        }
        for ((sym, args, value), ivs) in &self.prev_fluents {
            if ivs.is_empty() {
                continue;
            }
            let Some(si) = plan.instrs.iter().position(|i| i.symbol == *sym) else { continue };
            if let Some(StratumState::Sf(t)) = cs.strata[si].as_mut() {
                let gid = t.lookup_or_insert(args, value);
                let g = &mut t.gs[gid as usize];
                g.out = ivs.clone();
                g.data_gen = cs.gen;
            }
        }
        cs.synced = true;
    }

    /// Rebuilds the canonical `HashMap` caches from the slot-indexed tables
    /// after slot-state queries, so the interpreter, the legacy compiled
    /// path and the snapshotter see current previous-window intervals. The
    /// derivation caches are merely cleared: every mode transition marks the
    /// engine dirty, so the next legacy query runs full evaluation and only
    /// reads the fluent intervals (inertia seeding and divergence).
    fn refresh_legacy_caches(&mut self) {
        self.legacy_stale = false;
        let Some(cs) = self.cstate.take() else { return };
        self.prev_fluents.clear();
        self.prev_static.clear();
        self.event_cache.clear();
        self.points_cache.clear();
        if let Some(plan) = self.plan.clone() {
            let gen = cs.gen;
            for (instr, state) in plan.instrs.iter().zip(&cs.strata) {
                match state {
                    Some(StratumState::Sf(t)) => {
                        for g in &t.gs {
                            if g.data_gen == gen && !g.out.is_empty() {
                                self.prev_fluents.insert(
                                    (instr.symbol, t.key_args(g).to_vec(), g.value.clone()),
                                    g.out.clone(),
                                );
                            }
                        }
                    }
                    Some(StratumState::St(t)) => {
                        for g in &t.gs {
                            if g.data_gen == gen && !g.out.is_empty() {
                                self.prev_static.insert(
                                    (instr.symbol, t.key_args(g).to_vec(), g.value.clone()),
                                    g.out.clone(),
                                );
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        self.cstate = Some(cs);
    }

    /// Evaluates one stratum against its retained table — the slot-state
    /// twin of [`Engine::eval_stratum_compiled`], reproducing its survivor
    /// filtering, grounding universe, set comparison and divergence logic
    /// over generation-stamped tables instead of rebuilt maps.
    #[allow(clippy::too_many_arguments)]
    fn eval_stratum_slots(
        &self,
        instr: &crate::compile::StratumInstr,
        plan: &crate::compile::CompiledPlan,
        frontier: Time,
        start: Time,
        full_eval: bool,
        gen: u64,
        ctx: &crate::compile::CCtx<'_>,
        state: &mut StratumState,
    ) -> SlotOut {
        match state {
            StratumState::Ev(t) => {
                // A stale side predates the last reseed; the reseed forced a
                // full evaluation, under which survivors are empty anyway.
                if t.data_gen + 1 != gen {
                    t.cur.clear();
                    t.pool_cur.clear();
                    t.mat_cur.clear();
                }
                t.next.clear();
                t.pool_next.clear();
                // Survivors: derivations whose evidence span is entirely
                // inside the window and strictly below the change frontier.
                for i in 0..t.cur.len() {
                    let d = t.cur[i];
                    if d.span_min > start && d.span_max < frontier {
                        let off = t.pool_next.len() as u32;
                        let (a, z) = (d.off as usize, d.off as usize + d.len as usize);
                        t.pool_next.extend_from_slice(&t.pool_cur[a..z]);
                        t.next.push(CDeriv { off, ..d });
                    }
                }
                let mut evaluated = false;
                if frontier < TIME_MAX {
                    evaluated = true;
                    for &ri in &instr.rules {
                        let rule = &self.ruleset.ev_rules[ri as usize];
                        let body = &plan.ev_bodies[ri as usize];
                        let next = &mut t.next;
                        let pool_next = &mut t.pool_next;
                        crate::compile::solve_frontier_c(
                            ctx,
                            body,
                            rule.n_vars,
                            frontier,
                            start,
                            &mut |b, spans| {
                                let time = b
                                    .get(rule.time)
                                    .and_then(term_time)
                                    .expect("head time bound (validated at build)");
                                let off = pool_next.len() as u32;
                                instantiate_args_into(&rule.head.args, b, pool_next);
                                let len = (pool_next.len() - off as usize) as u16;
                                let (mn, mx) = span_bounds(spans);
                                next.push(CDeriv { off, len, time, span_min: mn, span_max: mx });
                            },
                        );
                    }
                }
                t.build_mat_next(start);
                let frontier_out = t.mat_divergence(start);
                t.swap_sides(gen);
                SlotOut { evaluated, groundings: 0, frontier_out }
            }
            StratumState::Sf(t) => {
                let mut evaluated = false;
                if frontier < TIME_MAX {
                    evaluated = true;
                    for &ri in &instr.rules {
                        let rule = &self.ruleset.sf_rules[ri as usize];
                        let body = &plan.sf_bodies[ri as usize];
                        let is_init = matches!(rule.kind, SfKind::Initiated);
                        crate::compile::solve_frontier_c(
                            ctx,
                            body,
                            rule.n_vars,
                            frontier,
                            start,
                            &mut |b, spans| {
                                let time = b
                                    .get(rule.time)
                                    .and_then(term_time)
                                    .expect("head time bound (validated at build)");
                                t.key_buf.clear();
                                instantiate_args_into(&rule.head.args, b, &mut t.key_buf);
                                let value = match &rule.head.value {
                                    ArgPat::Const(c) => c.clone(),
                                    ArgPat::Var(v) => b.get(*v).expect("head value bound").clone(),
                                    ArgPat::Any => unreachable!("validated at build"),
                                };
                                let key_buf = std::mem::take(&mut t.key_buf);
                                let gid = t.lookup_or_insert(&key_buf, &value);
                                t.key_buf = key_buf;
                                t.gs[gid as usize].touch_gen = gen;
                                let (mn, mx) = span_bounds(spans);
                                t.fresh.push((
                                    gid,
                                    CPoint { init: is_init, time, span_min: mn, span_max: mx },
                                ));
                            },
                        );
                    }
                }
                t.fresh.sort_by_key(|&(gid, _)| gid);

                let mut f_out = TIME_MAX;
                let mut groundings = 0usize;
                let mut set_old = std::mem::take(&mut t.set_old);
                let mut set_new = std::mem::take(&mut t.set_new);
                let mut inits = std::mem::take(&mut t.inits);
                let mut terms = std::mem::take(&mut t.terms);
                let mut ivs = std::mem::take(&mut t.ivs);
                for oi in 0..t.order.len() {
                    let gid = t.order[oi] as usize;
                    let lo = t.fresh.partition_point(|&(g2, _)| (g2 as usize) < gid);
                    let hi = t.fresh.partition_point(|&(g2, _)| (g2 as usize) <= gid);
                    let touched = hi > lo;
                    let g = &mut t.gs[gid];
                    let prev_valid = g.data_gen + 1 == gen;
                    if !prev_valid && !touched {
                        continue;
                    }
                    if touched && !prev_valid {
                        // Points (and output) predate the last participation;
                        // the legacy cache would simply not hold this key.
                        g.pts.clear();
                    }
                    set_old.clear();
                    for p in &g.pts {
                        if p.time > start {
                            set_old.push((p.time, p.init));
                        }
                    }
                    set_old.sort_unstable();
                    set_old.dedup();
                    g.pts.retain(|p| p.span_min > start && p.span_max < frontier);
                    for &(_, p) in &t.fresh[lo..hi] {
                        g.pts.push(p);
                    }
                    set_new.clear();
                    for p in &g.pts {
                        set_new.push((p.time, p.init));
                    }
                    set_new.sort_unstable();
                    set_new.dedup();

                    if set_old == set_new && !full_eval {
                        g.out = if prev_valid { g.out.after(start) } else { IntervalList::empty() };
                    } else {
                        let initially = prev_valid && g.out.contains(start);
                        if !set_new.is_empty() || initially {
                            groundings += 1;
                        }
                        inits.clear();
                        terms.clear();
                        for &(pt, init) in &set_new {
                            if init {
                                inits.push(pt);
                            } else {
                                terms.push(pt);
                            }
                        }
                        crate::interval::points_into(
                            &mut inits, &mut terms, initially, start, &mut ivs,
                        );
                        let prev_slice: &[Interval] =
                            if prev_valid { g.out.as_slice() } else { &[] };
                        if let Some(d) =
                            crate::interval::first_divergence_clamped(prev_slice, start, &ivs)
                        {
                            f_out = f_out.min(d);
                        }
                        if ivs.as_slice() != g.out.as_slice() {
                            g.out = IntervalList::from_normalised(&ivs);
                        }
                    }
                    if !g.pts.is_empty() || !g.out.is_empty() {
                        g.data_gen = gen;
                    }
                }
                t.set_old = set_old;
                t.set_new = set_new;
                t.inits = inits;
                t.terms = terms;
                t.ivs = ivs;
                t.fresh.clear();
                t.maybe_compact(gen);
                SlotOut { evaluated, groundings, frontier_out: f_out }
            }
            StratumState::St(t) => {
                if frontier == TIME_MAX && instr.static_pure {
                    // Clean, pure-domain stratum: clamp-reuse the previous
                    // outputs without re-solving.
                    for oi in 0..t.order.len() {
                        let gid = t.order[oi] as usize;
                        let g = &mut t.gs[gid];
                        if g.data_gen + 1 != gen || g.out.is_empty() {
                            continue;
                        }
                        let clamped = g.out.after(start);
                        if clamped.is_empty() {
                            g.out = IntervalList::empty();
                        } else {
                            g.out = clamped;
                            g.data_gen = gen;
                        }
                    }
                    SlotOut { evaluated: false, groundings: 0, frontier_out: TIME_MAX }
                } else {
                    let mut expr_trail = std::mem::take(&mut t.expr_trail);
                    let mut ranges = std::mem::take(&mut t.ranges);
                    let mut arena = std::mem::take(&mut t.arena);
                    for &ri in &instr.rules {
                        let rule = &self.ruleset.static_rules[ri as usize];
                        let cs = &plan.static_bodies[ri as usize];
                        crate::compile::solve_domain_c(
                            ctx,
                            &cs.domain,
                            rule.n_vars,
                            &mut |b, _spans| {
                                let mark = arena.mark();
                                let r = crate::compile::eval_interval_expr_into(
                                    &cs.expr,
                                    b,
                                    &mut expr_trail,
                                    ctx.fluents,
                                    &mut arena,
                                    &mut ranges,
                                );
                                if r.is_empty() {
                                    arena.truncate(mark);
                                    return;
                                }
                                t.key_buf.clear();
                                instantiate_args_into(&rule.head.args, b, &mut t.key_buf);
                                let value = match &rule.head.value {
                                    ArgPat::Const(c) => c.clone(),
                                    ArgPat::Var(v) => b.get(*v).expect("head value bound").clone(),
                                    ArgPat::Any => unreachable!("validated at build"),
                                };
                                let key_buf = std::mem::take(&mut t.key_buf);
                                let gid = t.lookup_or_insert(&key_buf, &value);
                                t.key_buf = key_buf;
                                let g = &mut t.gs[gid as usize];
                                if g.acc_gen != gen {
                                    g.acc.clear();
                                    g.acc_gen = gen;
                                }
                                // Accumulating + renormalising equals the
                                // legacy per-key `union` across rules.
                                g.acc.extend_from_slice(arena.slice(r));
                                crate::interval::normalise_in_place(&mut g.acc);
                                arena.truncate(mark);
                            },
                        );
                    }
                    t.expr_trail = expr_trail;
                    t.ranges = ranges;
                    t.arena = arena;

                    let mut groundings = 0usize;
                    let mut f_out = TIME_MAX;
                    for oi in 0..t.order.len() {
                        let gid = t.order[oi] as usize;
                        let g = &mut t.gs[gid];
                        let prev_valid = g.data_gen + 1 == gen;
                        if g.acc_gen != gen {
                            if prev_valid {
                                // Grounding disappeared from the computed
                                // domain: its previous intervals diverge.
                                if let Some(d) = crate::interval::first_divergence_clamped(
                                    g.out.as_slice(),
                                    start,
                                    &[],
                                ) {
                                    f_out = f_out.min(d);
                                }
                            }
                            g.out = IntervalList::empty();
                            continue;
                        }
                        groundings += 1;
                        let prev_slice: &[Interval] =
                            if prev_valid { g.out.as_slice() } else { &[] };
                        if let Some(d) =
                            crate::interval::first_divergence_clamped(prev_slice, start, &g.acc)
                        {
                            f_out = f_out.min(d);
                        }
                        if g.acc.as_slice() != g.out.as_slice() {
                            g.out = IntervalList::from_normalised(&g.acc);
                        }
                        g.data_gen = gen;
                    }
                    SlotOut { evaluated: true, groundings, frontier_out: f_out }
                }
            }
        }
    }

    // -- checkpoint/restore -------------------------------------------------

    /// Serialises the engine's windowed recognition state into a stable,
    /// line-based text snapshot.
    ///
    /// The snapshot captures exactly the state that inertia and windowing
    /// carry across queries: the buffered (unexpired) input items with their
    /// seen flags, the previous window's fluent intervals, and the query
    /// clock. Derivation caches are deliberately *excluded* — they are a
    /// pure performance artefact, and [`Engine::restore_state`] marks the
    /// engine dirty so the next query re-derives them in full. Because
    /// incremental and full evaluation are output-equivalent, a restored
    /// engine answers every future query exactly like the engine the
    /// snapshot was taken from (and like a cold engine replaying the full
    /// input history).
    ///
    /// Rule sets, relations, builtins and window configuration are *not*
    /// part of the snapshot: restore into an engine rebuilt with the same
    /// configuration.
    pub fn snapshot_state(&self) -> String {
        use std::fmt::Write as _;
        // Serialisation happens on the worker's hot path (a checkpoint
        // barrier blocks input consumption), so every line is appended in
        // place — no per-line or per-token allocations.
        let mut out =
            String::with_capacity(64 * (self.buffered_events.len() + self.buffered_obs.len() + 1));
        out.push_str("rtec-state v1\n");
        if let Some(t) = self.first_query {
            let _ = writeln!(out, "first {t}");
        }
        if let Some(t) = self.last_query {
            let _ = writeln!(out, "last {t}");
        }
        for s in &self.buffered_events {
            let _ = write!(out, "ev {} {} {} ", u8::from(s.seen), s.item.arrival, s.item.item.time);
            state_escape_into(&mut out, s.item.item.kind.as_str());
            for a in &s.item.item.args {
                out.push(' ');
                term_token_into(&mut out, a);
            }
            out.push('\n');
        }
        for s in &self.buffered_obs {
            let _ =
                write!(out, "obs {} {} {} ", u8::from(s.seen), s.item.arrival, s.item.item.time);
            state_escape_into(&mut out, s.item.item.name.as_str());
            out.push(' ');
            term_token_into(&mut out, &s.item.item.value);
            for a in &s.item.item.args {
                out.push(' ');
                term_token_into(&mut out, a);
            }
            out.push('\n');
        }
        // Sorted so identical states serialise to identical bytes even
        // though the backing map iterates in arbitrary order.
        let pf_line = |name: &Symbol, args: &[Term], value: &Term, ivs: &IntervalList| {
            let mut line = String::with_capacity(48);
            line.push_str("pf ");
            state_escape_into(&mut line, name.as_str());
            line.push(' ');
            term_token_into(&mut line, value);
            let _ = write!(line, " {}", args.len());
            for a in args {
                line.push(' ');
                term_token_into(&mut line, a);
            }
            for iv in ivs.iter() {
                match iv.end() {
                    Some(e) => {
                        let _ = write!(line, " {}:{e}", iv.start());
                    }
                    None => {
                        let _ = write!(line, " {}:inf", iv.start());
                    }
                }
            }
            line.push('\n');
            line
        };
        let mut fluent_lines: Vec<String> = if self.legacy_stale {
            // The canonical map lags behind the slot tables (the last query
            // ran on the slots path); read the current-generation fluent
            // outputs straight from the tables instead.
            let mut lines = Vec::new();
            if let (Some(cs), Some(plan)) = (self.cstate.as_ref(), self.plan.as_ref()) {
                for (instr, state) in plan.instrs.iter().zip(&cs.strata) {
                    if let Some(StratumState::Sf(t)) = state {
                        for g in &t.gs {
                            if g.data_gen == cs.gen && !g.out.is_empty() {
                                lines.push(pf_line(&instr.symbol, t.key_args(g), &g.value, &g.out));
                            }
                        }
                    }
                }
            }
            lines
        } else {
            self.prev_fluents
                .iter()
                .filter(|(_, ivs)| !ivs.is_empty())
                .map(|((name, args, value), ivs)| pf_line(name, args, value, ivs))
                .collect()
        };
        fluent_lines.sort_unstable();
        for line in fluent_lines {
            out.push_str(&line);
        }
        out
    }

    /// Restores state captured by [`Engine::snapshot_state`] into this
    /// engine, replacing any buffered inputs and previous-window fluents.
    ///
    /// The engine must have been built with the same rule set (input
    /// declarations are re-validated here), relations, builtins and window
    /// configuration as the snapshot's origin. On success the engine is
    /// marked dirty, so the next query performs a full re-evaluation —
    /// differentially equal to what a cold engine replaying the entire
    /// history would produce.
    pub fn restore_state(&mut self, snapshot: &str) -> Result<(), RtecError> {
        let corrupt = |detail: String| RtecError::CorruptState { detail };
        let mut lines = snapshot.lines();
        match lines.next() {
            Some("rtec-state v1") => {}
            other => {
                return Err(corrupt(format!("unsupported header `{}`", other.unwrap_or_default())))
            }
        }
        let mut first_query = None;
        let mut last_query = None;
        let mut events: Vec<Seen<Event>> = Vec::new();
        let mut obs: Vec<Seen<FluentObs>> = Vec::new();
        let mut fluents: HashMap<FluentKey, IntervalList> = HashMap::new();
        for (ln, line) in lines.enumerate() {
            let mut toks = line.split(' ');
            let tag = toks.next().unwrap_or_default();
            let bad = |what: &str| corrupt(format!("line {}: bad {what}: `{line}`", ln + 2));
            let parse_time = |tok: Option<&str>, what: &str| -> Result<Time, RtecError> {
                tok.and_then(|t| t.parse::<Time>().ok())
                    .ok_or_else(|| corrupt(format!("line {}: bad {what}: `{line}`", ln + 2)))
            };
            match tag {
                "first" => first_query = Some(parse_time(toks.next(), "first-query time")?),
                "last" => last_query = Some(parse_time(toks.next(), "last-query time")?),
                "ev" | "obs" => {
                    let seen = match toks.next() {
                        Some("0") => false,
                        Some("1") => true,
                        _ => return Err(bad("seen flag")),
                    };
                    let arrival = parse_time(toks.next(), "arrival time")?;
                    let time = parse_time(toks.next(), "occurrence time")?;
                    let name = state_unescape(toks.next().ok_or_else(|| bad("symbol"))?)
                        .ok_or_else(|| bad("symbol"))?;
                    let value = if tag == "obs" {
                        Some(
                            toks.next()
                                .and_then(token_to_term)
                                .ok_or_else(|| bad("fluent value"))?,
                        )
                    } else {
                        None
                    };
                    let args: Vec<Term> = toks
                        .map(|t| token_to_term(t).ok_or_else(|| bad("argument term")))
                        .collect::<Result<_, _>>()?;
                    if tag == "ev" {
                        let item = Event::new(name.as_str(), args, time);
                        self.check_declared(
                            &self.ruleset.input_events,
                            &item.kind,
                            item.args.len(),
                            "event",
                        )?;
                        events.push(Seen { item: Stamped::arriving_at(item, arrival), seen });
                    } else {
                        let value = value.expect("obs parsed a value");
                        let item = FluentObs::new(name.as_str(), args, value, time);
                        self.check_declared(
                            &self.ruleset.input_fluents,
                            &item.name,
                            item.args.len(),
                            "input fluent",
                        )?;
                        obs.push(Seen { item: Stamped::arriving_at(item, arrival), seen });
                    }
                }
                "pf" => {
                    let name = state_unescape(toks.next().ok_or_else(|| bad("fluent name"))?)
                        .ok_or_else(|| bad("fluent name"))?;
                    let value =
                        toks.next().and_then(token_to_term).ok_or_else(|| bad("fluent value"))?;
                    let n_args: usize = toks
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("argument count"))?;
                    let args: Vec<Term> = (0..n_args)
                        .map(|_| {
                            toks.next().and_then(token_to_term).ok_or_else(|| bad("argument term"))
                        })
                        .collect::<Result<_, _>>()?;
                    let intervals: Vec<crate::interval::Interval> = toks
                        .map(|pair| {
                            let (s, e) = pair.split_once(':').ok_or_else(|| bad("interval"))?;
                            let start = s.parse::<Time>().map_err(|_| bad("interval start"))?;
                            match e {
                                "inf" => Ok(crate::interval::Interval::open_from(start)),
                                _ => {
                                    let end = e.parse::<Time>().map_err(|_| bad("interval end"))?;
                                    crate::interval::Interval::try_span(start, end)
                                        .ok_or_else(|| bad("interval span"))
                                }
                            }
                        })
                        .collect::<Result<_, _>>()?;
                    fluents.insert(
                        (Symbol::new(&name), args, value),
                        IntervalList::from_intervals(intervals),
                    );
                }
                "" => {}
                other => return Err(corrupt(format!("line {}: unknown tag `{other}`", ln + 2))),
            }
        }
        self.buffered_events = events;
        self.buffered_obs = obs;
        self.prev_fluents = fluents;
        self.first_query = first_query;
        self.last_query = last_query;
        // Derivation caches are not serialised: force the next query to
        // re-derive everything (output-equivalent, per the incremental
        // contract).
        self.prev_static.clear();
        self.event_cache.clear();
        self.points_cache.clear();
        self.dirty_all = true;
        // The canonical caches are now the source of truth again; the slot
        // tables must reseed from them before the next slots query.
        self.legacy_stale = false;
        if let Some(cs) = self.cstate.as_mut() {
            cs.synced = false;
        }
        Ok(())
    }

    /// Restore-time re-validation of one input symbol against the rule set.
    fn check_declared(
        &self,
        declared: &HashMap<Symbol, usize>,
        sym: &Symbol,
        used: usize,
        what: &str,
    ) -> Result<(), RtecError> {
        match declared.get(sym) {
            Some(&arity) if arity == used => Ok(()),
            Some(&arity) => Err(RtecError::CorruptState {
                detail: format!(
                    "{what} `{sym}` snapshot arity {used} does not match declared arity {arity}"
                ),
            }),
            None => Err(RtecError::CorruptState {
                detail: format!("{what} `{sym}` is not declared by this rule set"),
            }),
        }
    }
}

/// Escapes a symbol for embedding as one space-separated snapshot token.
fn state_escape_into(out: &mut String, s: &str) {
    if !s.bytes().any(|b| matches!(b, b'%' | b' ' | b'\t' | b'\n' | b'\r')) {
        out.push_str(s);
        return;
    }
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            _ => out.push(c),
        }
    }
}

/// Inverse of [`state_escape`]; `None` on a malformed escape.
fn state_unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hi = chars.next()?.to_digit(16)?;
        let lo = chars.next()?.to_digit(16)?;
        out.push(char::from_u32(hi * 16 + lo)?);
    }
    Some(out)
}

/// Encodes one ground term as a typed snapshot token, appended to `out`.
/// Floats are stored as their IEEE bit pattern so the round trip is exact.
fn term_token_into(out: &mut String, t: &Term) {
    use std::fmt::Write as _;
    match t {
        Term::Int(v) => {
            let _ = write!(out, "i:{v}");
        }
        Term::Float(v) => {
            let _ = write!(out, "f:{:016x}", v.0.to_bits());
        }
        Term::Sym(s) => {
            out.push_str("s:");
            state_escape_into(out, s.as_str());
        }
        Term::Bool(v) => {
            let _ = write!(out, "b:{}", u8::from(*v));
        }
    }
}

/// Inverse of [`term_to_token`]; `None` on a malformed token.
fn token_to_term(tok: &str) -> Option<Term> {
    let (kind, rest) = tok.split_once(':')?;
    match kind {
        "i" => rest.parse().ok().map(Term::Int),
        "f" => u64::from_str_radix(rest, 16).ok().map(|bits| Term::float(f64::from_bits(bits))),
        "s" => state_unescape(rest).map(|s| Term::sym(&s)),
        "b" => match rest {
            "0" => Some(Term::Bool(false)),
            "1" => Some(Term::Bool(true)),
            _ => None,
        },
        _ => None,
    }
}

/// The shared-state-free result of evaluating one stratum: what the
/// sequential loop used to write directly into the query's accumulators,
/// returned as data so independent strata can be evaluated on parallel
/// threads and merged deterministically afterwards.
struct StratumOut {
    /// Whether rule bodies were actually (re-)solved (`strata_evaluated`).
    evaluated: bool,
    /// Groundings recomputed (`groundings_recomputed`).
    groundings: usize,
    /// The stratum's output change frontier.
    frontier_out: Time,
    kind: StratumOutKind,
}

enum StratumOutKind {
    Event {
        /// Replacement derivation cache for the head symbol.
        new_derivs: Vec<CachedDeriv>,
        /// Materialised (deduplicated, in-window) derived events.
        new_mat: Vec<Event>,
    },
    Simple {
        /// `(args, value, intervals)` per non-empty grounding, in
        /// deterministic grounding order.
        entries: Vec<(Vec<Term>, Term, IntervalList)>,
        /// Replacement point cache for the head symbol.
        new_pts_map: HashMap<(Vec<Term>, Term), Vec<CachedPoint>>,
    },
    Static {
        /// `(args, value, intervals)` per non-empty grounding.
        entries: Vec<(Vec<Term>, Term, IntervalList)>,
    },
}

/// Min/max of the evidence times on one solution path. Every rule body has
/// at least one `happensAt` condition (validated at build), so the span is
/// never empty.
pub(crate) fn span_bounds(spans: &[Time]) -> (Time, Time) {
    let mut mn = TIME_MAX;
    let mut mx = TIME_MIN;
    for &t in spans {
        mn = mn.min(t);
        mx = mx.max(t);
    }
    debug_assert!(mn <= mx, "evidence span must be non-empty");
    (mn, mx)
}

/// Deduplicates cached derivations into the concrete time-sorted event set
/// visible downstream, keeping only events after the window start.
pub(crate) fn materialized_events(derivs: &[CachedDeriv], kind: Symbol, after: Time) -> Vec<Event> {
    let mut set: BTreeSet<(Time, &Vec<Term>)> = BTreeSet::new();
    for d in derivs {
        if d.time > after {
            set.insert((d.time, &d.args));
        }
    }
    set.into_iter().map(|(time, args)| Event { kind, args: args.clone(), time }).collect()
}

/// Earliest time at which two materialised event sets (both sorted by
/// `(time, args)`) differ; `TIME_MAX` when identical.
pub(crate) fn first_event_divergence(a: &[Event], b: &[Event]) -> Time {
    let (mut i, mut j) = (0, 0);
    loop {
        match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) => {
                if x.time == y.time && x.args == y.args {
                    i += 1;
                    j += 1;
                } else {
                    return x.time.min(y.time);
                }
            }
            (Some(x), None) => return x.time,
            (None, Some(y)) => return y.time,
            (None, None) => return TIME_MAX,
        }
    }
}

/// Solves one rule body relative to a change frontier: a full solve when the
/// frontier is at or below the window start (nothing cacheable), otherwise
/// one pivoted pass per happens atom enumerating exactly the derivations
/// that touch the delta.
fn solve_frontier(
    ctx: &EvalCtx<'_>,
    body: &[BodyAtom],
    plans: &[PivotPlan],
    n_vars: usize,
    frontier: Time,
    window_start: Time,
    out: &mut dyn FnMut(&mut Bindings, &[Time]),
) {
    if frontier <= window_start {
        let roles = vec![HappensRole::Free; body.len()];
        let mut b = Bindings::new(n_vars);
        let mut spans = Vec::new();
        solve_spanned(ctx, body, &roles, TIME_MIN, &mut b, &mut spans, out);
    } else {
        for plan in plans {
            let mut b = Bindings::new(n_vars);
            let mut spans = Vec::new();
            solve_spanned(ctx, &plan.atoms, &plan.roles, frontier, &mut b, &mut spans, out);
        }
    }
}

// ---------------------------------------------------------------------------
// Body evaluation (backtracking over conditions)
// ---------------------------------------------------------------------------

pub(crate) fn term_time(t: &Term) -> Option<Time> {
    t.as_i64()
}

pub(crate) fn resolve(v: &ValRef, b: &Bindings) -> Option<Term> {
    match v {
        ValRef::Const(t) => Some(t.clone()),
        ValRef::Var(var) => b.get(*var).cloned(),
    }
}

pub(crate) fn eval_num(e: &NumExpr, b: &Bindings) -> Option<f64> {
    match e {
        NumExpr::Var(v) => b.get(*v)?.as_f64(),
        NumExpr::Const(c) => Some(*c),
        NumExpr::Add(l, r) => Some(eval_num(l, b)? + eval_num(r, b)?),
        NumExpr::Sub(l, r) => Some(eval_num(l, b)? - eval_num(r, b)?),
        NumExpr::Mul(l, r) => Some(eval_num(l, b)? * eval_num(r, b)?),
        NumExpr::Abs(x) => Some(eval_num(x, b)?.abs()),
    }
}

pub(crate) fn eval_guard(g: &GuardExpr, b: &Bindings) -> bool {
    match g {
        GuardExpr::Cmp { lhs, op, rhs } => match (eval_num(lhs, b), eval_num(rhs, b)) {
            (Some(l), Some(r)) => op.apply(l, r),
            _ => false,
        },
        GuardExpr::TermEq(l, r) => match (resolve(l, b), resolve(r, b)) {
            (Some(l), Some(r)) => l == r,
            _ => false,
        },
        GuardExpr::TermNe(l, r) => match (resolve(l, b), resolve(r, b)) {
            (Some(l), Some(r)) => l != r,
            _ => false,
        },
        GuardExpr::And(gs) => gs.iter().all(|g| eval_guard(g, b)),
        GuardExpr::Or(gs) => gs.iter().any(|g| eval_guard(g, b)),
        GuardExpr::Not(g) => !eval_guard(g, b),
    }
}

/// Matches an event against a pattern + time variable; on success calls
/// `k` and rolls back bindings afterwards.
fn with_event_match(
    pat: &EventPattern,
    time: VarId,
    e: &Event,
    b: &mut Bindings,
    k: &mut dyn FnMut(&mut Bindings),
) {
    // Time first: cheap check/bind.
    let t_term = Term::Int(e.time);
    let time_was_bound = b.is_bound(time);
    if time_was_bound {
        if b.get(time) != Some(&t_term) {
            return;
        }
    } else if !b.bind(time, &t_term) {
        return;
    }
    if let Some(bound) = match_args(&pat.args, &e.args, b) {
        k(b);
        unbind_all(&bound, b);
    }
    if !time_was_bound {
        b.unbind(time);
    }
}

fn solve(
    ctx: &EvalCtx<'_>,
    atoms: &[BodyAtom],
    b: &mut Bindings,
    out: &mut dyn FnMut(&mut Bindings),
) {
    let roles = vec![HappensRole::Free; atoms.len()];
    let mut spans = Vec::new();
    solve_spanned(ctx, atoms, &roles, TIME_MIN, b, &mut spans, &mut |b, _| out(b));
}

/// Sub-range of a time-sorted index list whose events fall in `[lo, hi]`.
fn bounded_idx_range(idxs: &[u32], items: &[Event], lo: Time, hi: Time) -> std::ops::Range<usize> {
    let a = idxs.partition_point(|&i| items[i as usize].time < lo);
    let z = idxs.partition_point(|&i| items[i as usize].time <= hi);
    a..z
}

/// Depth-first body resolution tracking the evidence times of the current
/// partial solution in `spans` (every matched event time and every fluent
/// read time). `roles` constrains each happens atom relative to `frontier`:
/// a `Pivot` atom must match at or after it, a `Before` atom strictly below
/// it, and `Free` atoms are unconstrained.
fn solve_spanned(
    ctx: &EvalCtx<'_>,
    atoms: &[BodyAtom],
    roles: &[HappensRole],
    frontier: Time,
    b: &mut Bindings,
    spans: &mut Vec<Time>,
    out: &mut dyn FnMut(&mut Bindings, &[Time]),
) {
    let Some((atom, rest)) = atoms.split_first() else {
        out(b, spans);
        return;
    };
    let (role, rest_roles) = (roles[0], &roles[1..]);
    match atom {
        BodyAtom::Happens { pat, time } => {
            let Some(ks) = ctx.events.by_kind.get(&pat.kind) else { return };
            let (lo, hi) = match role {
                HappensRole::Pivot => (frontier, TIME_MAX),
                HappensRole::Before => (TIME_MIN, frontier.saturating_sub(1)),
                HappensRole::Free => (TIME_MIN, TIME_MAX),
            };
            if lo > hi {
                return;
            }
            // Narrow enumeration by bound time, else by bound first arg.
            if let Some(t) = b.get(*time).and_then(term_time) {
                if t < lo || t > hi {
                    return;
                }
                let a = ks.items.partition_point(|e| e.time < t);
                let z = ks.items.partition_point(|e| e.time <= t);
                for e in &ks.items[a..z] {
                    spans.push(e.time);
                    with_event_match(pat, *time, e, b, &mut |b| {
                        solve_spanned(ctx, rest, rest_roles, frontier, b, spans, out)
                    });
                    spans.pop();
                }
            } else {
                let first_bound: Option<Term> = match pat.args.first() {
                    Some(ArgPat::Const(c)) => Some(c.clone()),
                    Some(ArgPat::Var(v)) => b.get(*v).cloned(),
                    _ => None,
                };
                match first_bound {
                    Some(first) => {
                        if let Some(idxs) = ks.by_first.get(&first) {
                            for &i in &idxs[bounded_idx_range(idxs, &ks.items, lo, hi)] {
                                let e = &ks.items[i as usize];
                                spans.push(e.time);
                                with_event_match(pat, *time, e, b, &mut |b| {
                                    solve_spanned(ctx, rest, rest_roles, frontier, b, spans, out)
                                });
                                spans.pop();
                            }
                        }
                    }
                    None => {
                        let a = ks.items.partition_point(|e| e.time < lo);
                        let z = ks.items.partition_point(|e| e.time <= hi);
                        for e in &ks.items[a..z] {
                            spans.push(e.time);
                            with_event_match(pat, *time, e, b, &mut |b| {
                                solve_spanned(ctx, rest, rest_roles, frontier, b, spans, out)
                            });
                            spans.pop();
                        }
                    }
                }
            }
        }
        BodyAtom::Holds { pat, time, negated } => {
            let Some(t) = b.get(*time).and_then(term_time) else { return };
            spans.push(t);
            let mut cont =
                |b: &mut Bindings| solve_spanned(ctx, rest, rest_roles, frontier, b, spans, out);
            if ctx.input_fluents.contains_key(&pat.name) {
                solve_holds_input(ctx, pat, t, *negated, b, &mut cont);
            } else {
                solve_holds_derived(ctx, pat, t, *negated, b, &mut cont);
            }
            spans.pop();
        }
        BodyAtom::Relation { name, args } => {
            if let Some(tuples) = ctx.relations.get(name) {
                for tuple in tuples {
                    if let Some(bound) = match_args(args, tuple, b) {
                        solve_spanned(ctx, rest, rest_roles, frontier, b, spans, out);
                        unbind_all(&bound, b);
                    }
                }
            }
        }
        BodyAtom::Builtin { name, args } => {
            let Some(f) = ctx.builtins.get(name) else { return };
            let resolved: Option<Vec<Term>> = args.iter().map(|a| resolve(a, b)).collect();
            if let Some(terms) = resolved {
                if f(&terms) {
                    solve_spanned(ctx, rest, rest_roles, frontier, b, spans, out);
                }
            }
        }
        BodyAtom::Guard(g) => {
            if eval_guard(g, b) {
                solve_spanned(ctx, rest, rest_roles, frontier, b, spans, out);
            }
        }
    }
}

fn solve_holds_input(
    ctx: &EvalCtx<'_>,
    pat: &FluentPattern,
    t: Time,
    negated: bool,
    b: &mut Bindings,
    cont: &mut dyn FnMut(&mut Bindings),
) {
    let Some(ks) = ctx.obs.by_name.get(&pat.name) else {
        if negated {
            cont(b);
        }
        return;
    };
    let candidates = ks.range_at(t);
    if negated {
        let exists = candidates.iter().any(|o| match match_args(&pat.args, &o.args, b) {
            Some(bound_args) => {
                let ok = match match_args(
                    std::slice::from_ref(&pat.value),
                    std::slice::from_ref(&o.value),
                    b,
                ) {
                    Some(bound_val) => {
                        unbind_all(&bound_val, b);
                        true
                    }
                    None => false,
                };
                unbind_all(&bound_args, b);
                ok
            }
            None => false,
        });
        if !exists {
            cont(b);
        }
        return;
    }
    for o in candidates {
        if let Some(bound_args) = match_args(&pat.args, &o.args, b) {
            if let Some(bound_val) =
                match_args(std::slice::from_ref(&pat.value), std::slice::from_ref(&o.value), b)
            {
                cont(b);
                unbind_all(&bound_val, b);
            }
            unbind_all(&bound_args, b);
        }
    }
}

/// Matches a fluent entry's args+value against a pattern, rolling every new
/// binding back before returning. Returns whether the entry matches.
fn entry_matches(pat: &FluentPattern, e: &FluentEntry, b: &mut Bindings) -> bool {
    if let Some(bound_args) = match_args(&pat.args, &e.args, b) {
        let ok =
            match match_args(std::slice::from_ref(&pat.value), std::slice::from_ref(&e.value), b) {
                Some(bound_val) => {
                    unbind_all(&bound_val, b);
                    true
                }
                None => false,
            };
        unbind_all(&bound_args, b);
        ok
    } else {
        false
    }
}

fn solve_holds_derived(
    ctx: &EvalCtx<'_>,
    pat: &FluentPattern,
    t: Time,
    negated: bool,
    b: &mut Bindings,
    cont: &mut dyn FnMut(&mut Bindings),
) {
    let entries = ctx.fluents.entries(pat.name);
    // Narrow by a bound first argument where possible.
    let first_bound: Option<Term> = match pat.args.first() {
        Some(ArgPat::Const(c)) => Some(c.clone()),
        Some(ArgPat::Var(v)) => b.get(*v).cloned(),
        _ => None,
    };
    let narrowed: Option<&[u32]> =
        first_bound.as_ref().and_then(|f| ctx.fluents.indices_by_first(pat.name, f));

    if negated {
        let exists = match narrowed {
            Some(idxs) => idxs.iter().any(|&i| {
                let e = &entries[i as usize];
                e.ivs.contains(t) && entry_matches(pat, e, b)
            }),
            None => {
                if first_bound.is_some() {
                    false // bound first arg with no index bucket: no grounding
                } else {
                    entries.iter().any(|e| e.ivs.contains(t) && entry_matches(pat, e, b))
                }
            }
        };
        if !exists {
            cont(b);
        }
        return;
    }

    let mut visit = |e: &FluentEntry, b: &mut Bindings| {
        if !e.ivs.contains(t) {
            return;
        }
        if let Some(bound_args) = match_args(&pat.args, &e.args, b) {
            if let Some(bound_val) =
                match_args(std::slice::from_ref(&pat.value), std::slice::from_ref(&e.value), b)
            {
                cont(b);
                unbind_all(&bound_val, b);
            }
            unbind_all(&bound_args, b);
        }
    };
    match narrowed {
        Some(idxs) => {
            for &i in idxs {
                visit(&entries[i as usize], b);
            }
        }
        None => {
            if first_bound.is_none() {
                for e in entries {
                    visit(e, b);
                }
            }
            // else: bound first arg without a bucket — no matches.
        }
    }
}

pub(crate) fn instantiate_args(pats: &[ArgPat], b: &Bindings) -> Vec<Term> {
    pats.iter()
        .map(|p| match p {
            ArgPat::Const(c) => c.clone(),
            ArgPat::Var(v) => b.get(*v).expect("head var bound (validated at build)").clone(),
            ArgPat::Any => unreachable!("wildcards are rejected in heads at build time"),
        })
        .collect()
}

/// [`instantiate_args`] into a caller-provided buffer, so the slots path can
/// keep head-argument instantiation inside retained pools.
pub(crate) fn instantiate_args_into(pats: &[ArgPat], b: &Bindings, out: &mut Vec<Term>) {
    for p in pats {
        match p {
            ArgPat::Const(c) => out.push(c.clone()),
            ArgPat::Var(v) => {
                out.push(b.get(*v).expect("head var bound (validated at build)").clone())
            }
            ArgPat::Any => unreachable!("wildcards are rejected in heads at build time"),
        }
    }
}

/// Per-stratum evaluation result on the slot-indexed path. Unlike
/// [`StratumOut`], the outputs themselves stay inside the stratum's retained
/// table; only the counters and the output change frontier travel back to
/// the merge step.
#[derive(Clone, Copy)]
struct SlotOut {
    /// Whether rule bodies were actually (re-)solved (`strata_evaluated`).
    evaluated: bool,
    /// Groundings recomputed (`groundings_recomputed`).
    groundings: usize,
    /// The stratum's output change frontier.
    frontier_out: Time,
}

/// The evaluation frontier of one stratum: the minimum change frontier over
/// its dependency slots (`TIME_MAX` = clean), forced to `TIME_MIN` under
/// full evaluation, and for non-pivotable strata whenever anything changed
/// or the window start advanced (their fluent reads may target times that
/// just expired, flipping with no input delta).
fn slot_frontier(
    instr: &crate::compile::StratumInstr,
    frontiers: &[Time],
    full_eval: bool,
    window_advanced: bool,
) -> Time {
    let mut frontier = if full_eval {
        TIME_MIN
    } else {
        instr.dep_slots.iter().map(|&d| frontiers[d as usize]).min().unwrap_or(TIME_MAX)
    };
    if !instr.pivotable && (window_advanced || frontier < TIME_MAX) {
        frontier = TIME_MIN;
    }
    frontier
}

/// Publishes one evaluated stratum's outputs downstream: materialised events
/// into the dense event store and the query result, current-generation
/// non-empty fluent groundings into the dense fluent store and the
/// recognition output, and the output change frontier into the head slot.
#[allow(clippy::too_many_arguments)]
fn merge_stratum_slots(
    instr: &crate::compile::StratumInstr,
    out: SlotOut,
    state: &StratumState,
    gen: u64,
    events: &mut crate::compile::CEventStore,
    cfluents: &mut crate::compile::CFluentStore,
    fluents_out: &mut FluentStore,
    derived_events_all: &mut Vec<Event>,
    frontiers: &mut [Time],
    strata_evaluated: &mut usize,
    groundings_recomputed: &mut usize,
) {
    if out.evaluated {
        *strata_evaluated += 1;
    }
    *groundings_recomputed += out.groundings;
    frontiers[instr.slot as usize] = out.frontier_out;
    match state {
        StratumState::Ev(t) => {
            for m in &t.mat_cur {
                let args = t.cur_args(m.off, m.len);
                events.push(instr.slot, m.time, args);
                derived_events_all.push(Event {
                    kind: instr.symbol,
                    args: args.to_vec(),
                    time: m.time,
                });
            }
            if !t.mat_cur.is_empty() {
                events.rebuild_slot(instr.slot);
            }
        }
        StratumState::Sf(t) => {
            let mut any = false;
            for &gid in &t.order {
                let g = &t.gs[gid as usize];
                if g.data_gen != gen || g.out.is_empty() {
                    continue;
                }
                let args = t.key_args(g);
                cfluents.insert_entry(instr.slot, args, &g.value, &g.out);
                fluents_out.insert(
                    instr.symbol,
                    FluentEntry { args: args.to_vec(), value: g.value.clone(), ivs: g.out.clone() },
                );
                any = true;
            }
            if any {
                cfluents.finish_slot(instr.slot);
            }
        }
        StratumState::St(t) => {
            let mut any = false;
            for &gid in &t.order {
                let g = &t.gs[gid as usize];
                if g.data_gen != gen || g.out.is_empty() {
                    continue;
                }
                let args = t.key_args(g);
                cfluents.insert_entry(instr.slot, args, &g.value, &g.out);
                fluents_out.insert(
                    instr.symbol,
                    FluentEntry { args: args.to_vec(), value: g.value.clone(), ivs: g.out.clone() },
                );
                any = true;
            }
            if any {
                cfluents.finish_slot(instr.slot);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Stratum evaluation
// ---------------------------------------------------------------------------

fn eval_interval_expr(expr: &IntervalExpr, b: &Bindings, fluents: &FluentStore) -> IntervalList {
    match expr {
        IntervalExpr::Fluent(pat) => {
            let mut acc: Vec<&IntervalList> = Vec::new();
            for e in fluents.entries(pat.name) {
                let mut probe = b.clone();
                if match_args(&pat.args, &e.args, &mut probe).is_some()
                    && match_args(
                        std::slice::from_ref(&pat.value),
                        std::slice::from_ref(&e.value),
                        &mut probe,
                    )
                    .is_some()
                {
                    acc.push(&e.ivs);
                }
            }
            IntervalList::union_all(acc)
        }
        IntervalExpr::Union(es) => {
            let lists: Vec<IntervalList> =
                es.iter().map(|e| eval_interval_expr(e, b, fluents)).collect();
            IntervalList::union_all(lists.iter())
        }
        IntervalExpr::Intersect(es) => {
            let lists: Vec<IntervalList> =
                es.iter().map(|e| eval_interval_expr(e, b, fluents)).collect();
            IntervalList::intersect_all(lists.iter())
        }
        IntervalExpr::RelComp(base, subs) => {
            let base_l = eval_interval_expr(base, b, fluents);
            let sub_ls: Vec<IntervalList> =
                subs.iter().map(|e| eval_interval_expr(e, b, fluents)).collect();
            IntervalList::relative_complement_all(&base_l, sub_ls.iter())
        }
    }
}

fn eval_static_stratum(rules: &[&StaticRule], ctx: &EvalCtx<'_>) -> Vec<(FluentKey, IntervalList)> {
    let mut acc: HashMap<FluentKey, IntervalList> = HashMap::new();
    for rule in rules {
        let mut b = Bindings::new(rule.n_vars);
        let mut solutions: Vec<Bindings> = Vec::new();
        solve(ctx, &rule.domain, &mut b, &mut |b| solutions.push(b.clone()));
        for sol in solutions {
            let ivs = eval_interval_expr(&rule.expr, &sol, ctx.fluents);
            if ivs.is_empty() {
                continue;
            }
            let args = instantiate_args(&rule.head.args, &sol);
            let value = match &rule.head.value {
                ArgPat::Const(c) => c.clone(),
                ArgPat::Var(v) => sol.get(*v).expect("head value bound").clone(),
                ArgPat::Any => unreachable!("validated at build"),
            };
            let key: FluentKey = (rule.head.name, args, value);
            acc.entry(key).and_modify(|existing| *existing = existing.union(&ivs)).or_insert(ivs);
        }
    }
    acc.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::rule::CmpOp;

    fn on_off_ruleset() -> RuleSet {
        let mut b = RuleSetBuilder::new();
        b.declare_event("switch_on", 1).declare_event("switch_off", 1);
        let dev = b.var("Dev");
        let t1 = b.var("T1");
        b.initiated(
            fluent("on", [pat(dev)], val(true)),
            t1,
            [happens(event_pat("switch_on", [pat(dev)]), t1)],
        );
        let t2 = b.var("T2");
        b.terminated(
            fluent("on", [pat(dev)], val(true)),
            t2,
            [happens(event_pat("switch_off", [pat(dev)]), t2)],
        );
        b.build().unwrap()
    }

    /// Several mutually independent fluents (each driven by its own input
    /// events) plus a derived event reading one of them: the independent
    /// strata share a dependency level while the event sits one level up.
    fn multi_strata_ruleset() -> RuleSet {
        let mut b = RuleSetBuilder::new();
        for name in ["on", "hot", "busy"] {
            let on_ev = format!("{name}_set");
            let off_ev = format!("{name}_clear");
            b.declare_event(&on_ev, 1).declare_event(&off_ev, 1);
            let dev = b.var(&format!("Dev_{name}"));
            let t1 = b.var(&format!("T1_{name}"));
            b.initiated(
                fluent(name, [pat(dev)], val(true)),
                t1,
                [happens(event_pat(&on_ev, [pat(dev)]), t1)],
            );
            let t2 = b.var(&format!("T2_{name}"));
            b.terminated(
                fluent(name, [pat(dev)], val(true)),
                t2,
                [happens(event_pat(&off_ev, [pat(dev)]), t2)],
            );
        }
        b.declare_event("check", 1);
        let dev = b.var("DevA");
        let t = b.var("TA");
        b.derived_event(
            event_head("alert", [pat(dev)]),
            t,
            [
                happens(event_pat("check", [pat(dev)]), t),
                holds(fluent_pat("on", [pat(dev)], val(true)), t),
            ],
        );
        b.build().unwrap()
    }

    fn canonical(rec: &Recognition) -> Vec<String> {
        let mut out: Vec<String> = rec.derived_events.iter().map(|e| format!("ev {e:?}")).collect();
        let mut names: Vec<Symbol> = rec.fluent_store().names().collect();
        names.sort();
        for name in names {
            for e in rec.fluent_store().entries(name) {
                out.push(format!("fl {name:?} {:?} {:?} {:?}", e.args, e.value, e.ivs));
            }
        }
        out.sort();
        out
    }

    #[test]
    fn independent_strata_share_a_level() {
        let e = Engine::new(multi_strata_ruleset(), WindowConfig::new(100, 50).unwrap());
        let sizes: Vec<usize> = e.stratum_levels.iter().map(Vec::len).collect();
        assert_eq!(sizes, [3, 1], "three independent fluents, then the alert event");
    }

    #[test]
    fn parallel_strata_match_serial_exactly() {
        let window = WindowConfig::new(60, 20).unwrap();
        let mut par = Engine::new(multi_strata_ruleset(), window);
        let mut ser = Engine::new(multi_strata_ruleset(), window);
        ser.set_parallel_strata(false);

        let feed = |e: &mut Engine| {
            for i in 0..120i64 {
                let dev = Term::sym(["a", "b", "c"][(i % 3) as usize]);
                let kind = [
                    "on_set",
                    "hot_set",
                    "busy_set",
                    "on_clear",
                    "hot_clear",
                    "busy_clear",
                    "check",
                ][(i % 7) as usize];
                // A third of the items arrive one window step late to
                // exercise amendment paths.
                let arrival = if i % 3 == 0 { i + 20 } else { i };
                e.add_stamped_event(Stamped::arriving_at(Event::new(kind, [dev], i), arrival))
                    .unwrap();
            }
        };
        feed(&mut par);
        feed(&mut ser);

        for q in [20, 40, 60, 80, 100, 120, 140] {
            let rp = par.query(q).unwrap();
            let rs = ser.query(q).unwrap();
            assert_eq!(canonical(&rp), canonical(&rs), "divergence at query {q}");
            assert_eq!(
                rp.timing.strata_evaluated, rs.timing.strata_evaluated,
                "incremental skipping must not change at query {q}"
            );
        }
    }

    #[test]
    fn basic_inertia() {
        let mut e = Engine::new(on_off_ruleset(), WindowConfig::new(100, 100).unwrap());
        e.add_event(Event::new("switch_on", [Term::sym("lamp")], 10)).unwrap();
        e.add_event(Event::new("switch_off", [Term::sym("lamp")], 40)).unwrap();
        e.add_event(Event::new("switch_on", [Term::sym("lamp")], 70)).unwrap();
        let rec = e.query(100).unwrap();
        let ivs = rec.intervals_of("on", &[Term::sym("lamp")], &Term::truth()).unwrap();
        assert_eq!(
            ivs.as_slice(),
            &[crate::interval::Interval::span(10, 40), crate::interval::Interval::open_from(70)]
        );
        assert_eq!(rec.sde_count, 3);
    }

    #[test]
    fn per_entity_groundings_are_independent() {
        let mut e = Engine::new(on_off_ruleset(), WindowConfig::new(100, 100).unwrap());
        e.add_event(Event::new("switch_on", [Term::sym("a")], 10)).unwrap();
        e.add_event(Event::new("switch_on", [Term::sym("b")], 20)).unwrap();
        e.add_event(Event::new("switch_off", [Term::sym("a")], 30)).unwrap();
        let rec = e.query(100).unwrap();
        assert!(rec.holds_at("on", &[Term::sym("b")], &Term::truth(), 50));
        assert!(!rec.holds_at("on", &[Term::sym("a")], &Term::truth(), 50));
    }

    #[test]
    fn inertia_carries_across_windows() {
        let mut e = Engine::new(on_off_ruleset(), WindowConfig::new(100, 100).unwrap());
        e.add_event(Event::new("switch_on", [Term::sym("lamp")], 10)).unwrap();
        let _ = e.query(100).unwrap();
        // No new events; fluent must still hold in the next window.
        let rec = e.query(200).unwrap();
        assert!(rec.holds_at("on", &[Term::sym("lamp")], &Term::truth(), 150));
        // Terminate in a third window.
        e.add_event(Event::new("switch_off", [Term::sym("lamp")], 250)).unwrap();
        let rec = e.query(300).unwrap();
        let ivs = rec.intervals_of("on", &[Term::sym("lamp")], &Term::truth()).unwrap();
        assert_eq!(ivs.as_slice(), &[crate::interval::Interval::span(200, 250)]);
    }

    #[test]
    fn late_events_are_amended_when_wm_exceeds_step() {
        // WM 100, step 50: an event occurring at 120 that arrives at 160
        // is missed by the query at 150 but amended at 200.
        let mut e = Engine::new(on_off_ruleset(), WindowConfig::new(100, 50).unwrap());
        e.add_stamped_event(Stamped::arriving_at(
            Event::new("switch_on", [Term::sym("lamp")], 120),
            160,
        ))
        .unwrap();
        let rec = e.query(150).unwrap();
        assert!(rec.intervals_of("on", &[Term::sym("lamp")], &Term::truth()).is_none());
        let rec = e.query(200).unwrap();
        let ivs = rec.intervals_of("on", &[Term::sym("lamp")], &Term::truth()).unwrap();
        assert_eq!(ivs.as_slice(), &[crate::interval::Interval::open_from(120)]);
    }

    #[test]
    fn events_older_than_window_are_lost() {
        let mut e = Engine::new(on_off_ruleset(), WindowConfig::new(100, 100).unwrap());
        // Arrives far too late: occurrence 50, arrival 250. At query 200 it
        // is not visible (not arrived); at query 300 its occurrence is
        // outside (200, 300].
        e.add_stamped_event(Stamped::arriving_at(
            Event::new("switch_on", [Term::sym("lamp")], 50),
            250,
        ))
        .unwrap();
        assert!(e.query(200).unwrap().fluent_entries("on").is_empty());
        assert!(e.query(300).unwrap().fluent_entries("on").is_empty());
    }

    #[test]
    fn non_monotonic_queries_rejected() {
        let mut e = Engine::new(on_off_ruleset(), WindowConfig::new(100, 100).unwrap());
        e.query(100).unwrap();
        assert!(matches!(e.query(100), Err(RtecError::NonMonotonicQuery { .. })));
        assert!(matches!(e.query(50), Err(RtecError::NonMonotonicQuery { .. })));
    }

    #[test]
    fn undeclared_inputs_rejected() {
        let mut e = Engine::new(on_off_ruleset(), WindowConfig::new(100, 100).unwrap());
        assert!(e.add_event(Event::new("bogus", [Term::int(1)], 5)).is_err());
        assert!(e.add_event(Event::new("switch_on", [Term::int(1), Term::int(2)], 5)).is_err());
    }

    fn delay_increase_ruleset() -> RuleSet {
        // The paper's delayIncrease CE: two move events of the same bus less
        // than t=60 apart whose delay grows by more than d=300.
        let mut b = RuleSetBuilder::new();
        b.declare_event("move", 2); // (Bus, Delay) — simplified for the test
        let bus = b.var("Bus");
        let d1 = b.var("D1");
        let d2 = b.var("D2");
        let t1 = b.var("T1");
        let t2 = b.var("T2");
        b.derived_event(
            event_head("delayIncrease", [pat(bus)]),
            t2,
            [
                happens(event_pat("move", [pat(bus), pat(d1)]), t1),
                happens(event_pat("move", [pat(bus), pat(d2)]), t2),
                guard(cmp(NumExpr::sub(d2.into(), d1.into()), CmpOp::Gt, 300.0)),
                guard(cmp(NumExpr::sub(t2.into(), t1.into()), CmpOp::Gt, 0.0)),
                guard(cmp(NumExpr::sub(t2.into(), t1.into()), CmpOp::Lt, 60.0)),
            ],
        );
        b.build().unwrap()
    }

    #[test]
    fn derived_events_join_over_pairs() {
        let mut e = Engine::new(delay_increase_ruleset(), WindowConfig::new(1000, 1000).unwrap());
        e.add_event(Event::new("move", [Term::int(1), Term::int(100)], 10)).unwrap();
        e.add_event(Event::new("move", [Term::int(1), Term::int(500)], 40)).unwrap(); // +400 in 30s
        e.add_event(Event::new("move", [Term::int(2), Term::int(100)], 10)).unwrap();
        e.add_event(Event::new("move", [Term::int(2), Term::int(150)], 40)).unwrap(); // small increase
        e.add_event(Event::new("move", [Term::int(3), Term::int(0)], 10)).unwrap();
        e.add_event(Event::new("move", [Term::int(3), Term::int(900)], 400)).unwrap(); // too far apart
        let rec = e.query(1000).unwrap();
        let des = rec.events_of("delayIncrease");
        assert_eq!(des.len(), 1);
        assert_eq!(des[0].args, vec![Term::int(1)]);
        assert_eq!(des[0].time, 40);
    }

    #[test]
    fn derived_event_feeds_fluent() {
        // alarm fluent goes up when delayIncrease occurs.
        let mut b = RuleSetBuilder::new();
        b.declare_event("move", 2);
        let bus = b.var("Bus");
        let d1 = b.var("D1");
        let d2 = b.var("D2");
        let t1 = b.var("T1");
        let t2 = b.var("T2");
        b.derived_event(
            event_head("delayIncrease", [pat(bus)]),
            t2,
            [
                happens(event_pat("move", [pat(bus), pat(d1)]), t1),
                happens(event_pat("move", [pat(bus), pat(d2)]), t2),
                guard(cmp(NumExpr::sub(d2.into(), d1.into()), CmpOp::Gt, 300.0)),
                guard(cmp(NumExpr::sub(t2.into(), t1.into()), CmpOp::Gt, 0.0)),
            ],
        );
        let t3 = b.var("T3");
        b.initiated(
            fluent("alarm", [pat(bus)], val(true)),
            t3,
            [happens(event_pat("delayIncrease", [pat(bus)]), t3)],
        );
        let rs = b.build().unwrap();

        let mut e = Engine::new(rs, WindowConfig::new(1000, 1000).unwrap());
        e.add_event(Event::new("move", [Term::int(1), Term::int(0)], 10)).unwrap();
        e.add_event(Event::new("move", [Term::int(1), Term::int(400)], 30)).unwrap();
        let rec = e.query(1000).unwrap();
        assert!(rec.holds_at("alarm", &[Term::int(1)], &Term::truth(), 500));
    }

    #[test]
    fn input_fluent_conditions() {
        // congested location from gps observations co-timed with move events.
        let mut b = RuleSetBuilder::new();
        b.declare_event("move", 1);
        b.declare_input_fluent("gps", 2); // (Bus, Congestion)
        let bus = b.var("Bus");
        let t = b.var("T");
        b.initiated(
            fluent("busCong", [pat(bus)], val(true)),
            t,
            [
                happens(event_pat("move", [pat(bus)]), t),
                holds(fluent_pat("gps", [pat(bus), cnst(1i64)], val(true)), t),
            ],
        );
        let t2 = b.var("T2");
        b.terminated(
            fluent("busCong", [pat(bus)], val(true)),
            t2,
            [
                happens(event_pat("move", [pat(bus)]), t2),
                holds(fluent_pat("gps", [pat(bus), cnst(0i64)], val(true)), t2),
            ],
        );
        let rs = b.build().unwrap();
        let mut e = Engine::new(rs, WindowConfig::new(1000, 1000).unwrap());
        e.add_event(Event::new("move", [Term::int(7)], 10)).unwrap();
        e.add_obs(FluentObs::new("gps", [Term::int(7), Term::int(1)], true, 10)).unwrap();
        e.add_event(Event::new("move", [Term::int(7)], 50)).unwrap();
        e.add_obs(FluentObs::new("gps", [Term::int(7), Term::int(0)], true, 50)).unwrap();
        let rec = e.query(1000).unwrap();
        let ivs = rec.intervals_of("busCong", &[Term::int(7)], &Term::truth()).unwrap();
        assert_eq!(ivs.as_slice(), &[crate::interval::Interval::span(10, 50)]);
    }

    #[test]
    fn negation_as_failure() {
        let mut b = RuleSetBuilder::new();
        b.declare_event("ping", 1);
        b.declare_event("mute", 1);
        b.declare_event("unmute", 1);
        let x = b.var("X");
        let t = b.var("T");
        b.initiated(
            fluent("muted", [pat(x)], val(true)),
            t,
            [happens(event_pat("mute", [pat(x)]), t)],
        );
        let tu = b.var("TU");
        b.terminated(
            fluent("muted", [pat(x)], val(true)),
            tu,
            [happens(event_pat("unmute", [pat(x)]), tu)],
        );
        let t2 = b.var("T2");
        b.derived_event(
            event_head("audiblePing", [pat(x)]),
            t2,
            [
                happens(event_pat("ping", [pat(x)]), t2),
                not_holds(fluent_pat("muted", [pat(x)], val(true)), t2),
            ],
        );
        let rs = b.build().unwrap();
        let mut e = Engine::new(rs, WindowConfig::new(1000, 1000).unwrap());
        e.add_event(Event::new("mute", [Term::int(1)], 20)).unwrap();
        e.add_event(Event::new("ping", [Term::int(1)], 10)).unwrap(); // before mute -> audible
        e.add_event(Event::new("ping", [Term::int(1)], 30)).unwrap(); // muted
        e.add_event(Event::new("unmute", [Term::int(1)], 40)).unwrap();
        e.add_event(Event::new("ping", [Term::int(1)], 50)).unwrap(); // audible again
        let rec = e.query(1000).unwrap();
        let times: Vec<Time> = rec.events_of("audiblePing").iter().map(|e| e.time).collect();
        assert_eq!(times, vec![10, 50]);
    }

    #[test]
    fn static_fluent_relative_complement() {
        // disagreement(X) = a(X) \ b(X), domain from relation `ids`.
        let mut b = RuleSetBuilder::new();
        b.declare_event("startA", 1);
        b.declare_event("stopA", 1);
        b.declare_event("startB", 1);
        b.declare_event("stopB", 1);
        b.declare_relation("ids", 1);
        let x = b.var("X");
        for (fl, on, off) in [("a", "startA", "stopA"), ("b", "startB", "stopB")] {
            let t1 = b.var(&format!("Ti_{fl}"));
            b.initiated(
                fluent(fl, [pat(x)], val(true)),
                t1,
                [happens(event_pat(on, [pat(x)]), t1)],
            );
            let t2 = b.var(&format!("Tt_{fl}"));
            b.terminated(
                fluent(fl, [pat(x)], val(true)),
                t2,
                [happens(event_pat(off, [pat(x)]), t2)],
            );
        }
        b.static_fluent(
            fluent("disagreement", [pat(x)], val(true)),
            [relation("ids", [pat(x)])],
            IntervalExpr::RelComp(
                Box::new(IntervalExpr::Fluent(fluent_pat("a", [pat(x)], val(true)))),
                vec![IntervalExpr::Fluent(fluent_pat("b", [pat(x)], val(true)))],
            ),
        );
        let rs = b.build().unwrap();
        let mut e = Engine::new(rs, WindowConfig::new(1000, 1000).unwrap());
        e.set_relation("ids", vec![vec![Term::int(1)]]).unwrap();
        // Note: the window at query 1000 is (0, 1000], so time 0 would be
        // excluded; start at 5.
        e.add_event(Event::new("startA", [Term::int(1)], 5)).unwrap();
        e.add_event(Event::new("stopA", [Term::int(1)], 100)).unwrap();
        e.add_event(Event::new("startB", [Term::int(1)], 30)).unwrap();
        e.add_event(Event::new("stopB", [Term::int(1)], 60)).unwrap();
        let rec = e.query(1000).unwrap();
        let ivs = rec.intervals_of("disagreement", &[Term::int(1)], &Term::truth()).unwrap();
        assert_eq!(
            ivs.as_slice(),
            &[crate::interval::Interval::span(5, 30), crate::interval::Interval::span(60, 100)]
        );
    }

    #[test]
    fn builtins_and_relations() {
        let mut b = RuleSetBuilder::new();
        b.declare_event("at", 2); // (Bus, Pos)
        b.declare_relation("poi", 1); // points of interest
        b.declare_builtin("near", 2);
        let bus = b.var("Bus");
        let p = b.var("P");
        let q = b.var("Q");
        let t = b.var("T");
        b.derived_event(
            event_head("visit", [pat(bus), pat(q)]),
            t,
            [
                happens(event_pat("at", [pat(bus), pat(p)]), t),
                relation("poi", [pat(q)]),
                builtin("near", [ValRef::Var(p), ValRef::Var(q)]),
            ],
        );
        let rs = b.build().unwrap();
        let mut e = Engine::new(rs, WindowConfig::new(1000, 1000).unwrap());
        e.set_relation("poi", vec![vec![Term::int(100)], vec![Term::int(500)]]).unwrap();
        e.register_builtin("near", |args: &[Term]| match (args[0].as_f64(), args[1].as_f64()) {
            (Some(a), Some(b)) => (a - b).abs() <= 10.0,
            _ => false,
        })
        .unwrap();
        e.add_event(Event::new("at", [Term::int(1), Term::int(95)], 10)).unwrap();
        e.add_event(Event::new("at", [Term::int(1), Term::int(300)], 20)).unwrap();
        let rec = e.query(1000).unwrap();
        let vs = rec.events_of("visit");
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].args, vec![Term::int(1), Term::int(100)]);
    }

    #[test]
    fn missing_builtin_registration_is_an_error() {
        let mut b = RuleSetBuilder::new();
        b.declare_event("e", 1);
        b.declare_builtin("f", 1);
        let x = b.var("X");
        let t = b.var("T");
        b.derived_event(
            event_head("d", [pat(x)]),
            t,
            [happens(event_pat("e", [pat(x)]), t), builtin("f", [ValRef::Var(x)])],
        );
        let rs = b.build().unwrap();
        let mut e = Engine::new(rs, WindowConfig::new(100, 100).unwrap());
        assert!(matches!(e.query(100), Err(RtecError::UnknownBuiltin { .. })));
    }

    #[test]
    fn compound_guards_or_not_abs_mul() {
        // alarm(X) when |X·2| is in [4, 10] OR X == 0, and NOT X == 3.
        let mut b = RuleSetBuilder::new();
        b.declare_event("tick", 1);
        let x = b.var("X");
        let t = b.var("T");
        use crate::rule::{CmpOp, GuardExpr, NumExpr};
        let double_abs = NumExpr::Abs(Box::new(NumExpr::Mul(
            Box::new(NumExpr::Var(x)),
            Box::new(NumExpr::Const(2.0)),
        )));
        b.derived_event(
            event_head("alarm", [pat(x)]),
            t,
            [
                happens(event_pat("tick", [pat(x)]), t),
                guard(GuardExpr::Or(vec![
                    GuardExpr::And(vec![
                        cmp(double_abs.clone(), CmpOp::Ge, 4.0),
                        cmp(double_abs, CmpOp::Le, 10.0),
                    ]),
                    term_eq(x, Term::int(0)),
                ])),
                guard(GuardExpr::Not(Box::new(term_eq(x, Term::int(3))))),
            ],
        );
        let rs = b.build().unwrap();
        let mut e = Engine::new(rs, WindowConfig::new(100, 100).unwrap());
        for (t, v) in [(1, -4i64), (2, 0), (3, 1), (4, 3), (5, 5)] {
            e.add_event(Event::new("tick", [Term::int(v)], t)).unwrap();
        }
        let rec = e.query(100).unwrap();
        let fired: Vec<i64> =
            rec.events_of("alarm").iter().map(|e| e.args[0].as_i64().unwrap()).collect();
        // -4: |−8| not in [4,10]? |−8|=8 ∈ [4,10] ✓; 0: second disjunct ✓;
        // 1: |2| < 4 ✗; 3: |6| ∈ [4,10] but excluded by Not ✗; 5: |10| ✓.
        assert_eq!(fired, vec![-4, 0, 5]);
    }

    #[test]
    fn static_fluent_empty_when_leaves_empty() {
        let mut b = RuleSetBuilder::new();
        b.declare_event("e", 0);
        b.declare_relation("dom", 1);
        let t = b.var("T");
        b.initiated(fluent("base", [], val(true)), t, [happens(event_pat("e", []), t)]);
        let x = b.var("X");
        b.static_fluent(
            fluent("derived", [pat(x)], val(true)),
            [relation("dom", [pat(x)])],
            crate::rule::IntervalExpr::Intersect(vec![crate::rule::IntervalExpr::Fluent(
                fluent_pat("base", [], val(true)),
            )]),
        );
        let rs = b.build().unwrap();
        let mut e = Engine::new(rs, WindowConfig::new(100, 100).unwrap());
        e.set_relation("dom", vec![vec![Term::int(1)]]).unwrap();
        // No events at all: base never holds, derived entries absent.
        let rec = e.query(100).unwrap();
        assert!(rec.fluent_entries("derived").is_empty());
        assert!(rec.fluent_entries("base").is_empty());
    }

    #[test]
    fn initially_seeds_inertia() {
        let mut e = Engine::new(on_off_ruleset(), WindowConfig::new(100, 100).unwrap());
        e.set_initially("on", vec![Term::sym("boiler")], Term::truth()).unwrap();
        e.add_event(Event::new("switch_off", [Term::sym("boiler")], 40)).unwrap();
        let rec = e.query(100).unwrap();
        let ivs = rec.intervals_of("on", &[Term::sym("boiler")], &Term::truth()).unwrap();
        // Held from the window start until the switch_off.
        assert_eq!(ivs.as_slice(), &[crate::interval::Interval::span(0, 40)]);
        // And persists across further windows when re-initiated never.
        let rec = e.query(200).unwrap();
        assert!(rec.intervals_of("on", &[Term::sym("boiler")], &Term::truth()).is_none());
    }

    #[test]
    fn initially_validation() {
        let mut e = Engine::new(on_off_ruleset(), WindowConfig::new(100, 100).unwrap());
        assert!(matches!(
            e.set_initially("ghost", vec![], Term::truth()),
            Err(RtecError::Undeclared { .. })
        ));
        e.query(100).unwrap();
        assert!(e.set_initially("on", vec![Term::sym("x")], Term::truth()).is_err());
    }

    #[test]
    fn recognition_stats_count() {
        let mut e = Engine::new(on_off_ruleset(), WindowConfig::new(100, 100).unwrap());
        e.add_event(Event::new("switch_on", [Term::sym("a")], 10)).unwrap();
        e.add_event(Event::new("switch_off", [Term::sym("a")], 20)).unwrap();
        e.add_event(Event::new("switch_on", [Term::sym("a")], 30)).unwrap();
        e.add_event(Event::new("switch_on", [Term::sym("b")], 15)).unwrap();
        let rec = e.query(100).unwrap();
        let stats = rec.stats();
        assert_eq!(stats.derived_events, 0);
        assert_eq!(stats.fluent_groundings, 2);
        assert_eq!(stats.intervals, 3);
    }

    #[test]
    fn fluent_value_can_be_variable() {
        // Track levels: level(X)=V initiated by set(X, V).
        let mut b = RuleSetBuilder::new();
        b.declare_event("set", 2);
        let x = b.var("X");
        let v = b.var("V");
        let t = b.var("T");
        b.initiated(
            fluent("level", [pat(x)], pat(v)),
            t,
            [happens(event_pat("set", [pat(x), pat(v)]), t)],
        );
        let t2 = b.var("T2");
        let v2 = b.var("V2");
        // any new set terminates every previous value
        b.terminated(
            fluent("level", [pat(x)], pat(v)),
            t2,
            [
                happens(event_pat("set", [pat(x), pat(v2)]), t2),
                holds(fluent_pat("levelSeen", [pat(x)], pat(v)), t2),
            ],
        );
        // helper simple fluent marking values ever set (never terminated)
        let t3 = b.var("T3");
        let v3 = b.var("V3");
        b.initiated(
            fluent("levelSeen", [pat(x)], pat(v3)),
            t3,
            [happens(event_pat("set", [pat(x), pat(v3)]), t3)],
        );
        let rs = b.build().unwrap();
        let mut e = Engine::new(rs, WindowConfig::new(1000, 1000).unwrap());
        e.add_event(Event::new("set", [Term::int(1), Term::int(5)], 10)).unwrap();
        e.add_event(Event::new("set", [Term::int(1), Term::int(9)], 50)).unwrap();
        let rec = e.query(1000).unwrap();
        let l5 = rec.intervals_of("level", &[Term::int(1)], &Term::int(5)).unwrap();
        assert_eq!(l5.as_slice(), &[crate::interval::Interval::span(10, 50)]);
        let l9 = rec.intervals_of("level", &[Term::int(1)], &Term::int(9)).unwrap();
        assert_eq!(l9.as_slice(), &[crate::interval::Interval::open_from(50)]);
    }

    #[test]
    fn initially_after_first_query_reports_start_time() {
        let mut e = Engine::new(on_off_ruleset(), WindowConfig::new(100, 100).unwrap());
        e.query(100).unwrap();
        let err = e.set_initially("on", vec![Term::sym("x")], Term::truth()).unwrap_err();
        assert_eq!(err, RtecError::EngineAlreadyStarted { first_query: 100 });
        assert_eq!(
            err.to_string(),
            "operation must precede the first query (recognition started at 100)"
        );
    }

    #[test]
    fn no_delta_tick_reuses_all_cached_results() {
        let mut e = Engine::new(on_off_ruleset(), WindowConfig::new(100, 50).unwrap());
        e.add_event(Event::new("switch_on", [Term::sym("lamp")], 10)).unwrap();
        let rec = e.query(100).unwrap();
        assert!(rec.timing.strata_evaluated > 0);
        // Second query: the one buffered event was already seen and nothing
        // new arrived, so no stratum is re-solved and no grounding rebuilt.
        let rec = e.query(150).unwrap();
        assert_eq!(rec.timing.strata_evaluated, 0);
        assert_eq!(rec.timing.groundings_recomputed, 0);
        assert!(rec.holds_at("on", &[Term::sym("lamp")], &Term::truth(), 120));
    }

    #[test]
    fn amendment_at_window_start_forces_full_recompute() {
        let mut e = Engine::new(on_off_ruleset(), WindowConfig::new(100, 50).unwrap());
        e.add_event(Event::new("switch_on", [Term::sym("lamp")], 60)).unwrap();
        e.query(100).unwrap();
        // A late event lands at the earliest still-visible time of the next
        // window (just above its start at 50): the frontier drops below all
        // cached evidence, so the affected stratum recomputes its grounding.
        e.add_stamped_event(Stamped::arriving_at(
            Event::new("switch_off", [Term::sym("lamp")], 51),
            140,
        ))
        .unwrap();
        let rec = e.query(150).unwrap();
        assert_eq!(rec.timing.strata_evaluated, 1);
        assert_eq!(rec.timing.groundings_recomputed, 1);
        let ivs = rec.intervals_of("on", &[Term::sym("lamp")], &Term::truth()).unwrap();
        assert_eq!(ivs.as_slice(), &[crate::interval::Interval::open_from(60)]);
    }

    /// `alarm(X)@T ← happensAt(probe(X,T2),T), not holdsAt(active(X),T2)`:
    /// the negated read targets a time taken from an event *argument*, so
    /// the stratum is not pivotable. Once T2 falls behind the window start
    /// the read flips to true with no input delta — the stratum must be
    /// re-solved on every window advance, not clean-skipped.
    fn probe_alarm_ruleset() -> RuleSet {
        let mut b = RuleSetBuilder::new();
        b.declare_event("probe", 2).declare_event("activate", 1).declare_event("deactivate", 1);
        let x = b.var("X");
        let t1 = b.var("T1");
        b.initiated(
            fluent("active", [pat(x)], val(true)),
            t1,
            [happens(event_pat("activate", [pat(x)]), t1)],
        );
        let t2 = b.var("T2");
        b.terminated(
            fluent("active", [pat(x)], val(true)),
            t2,
            [happens(event_pat("deactivate", [pat(x)]), t2)],
        );
        let t = b.var("T");
        let tp = b.var("Tp");
        b.derived_event(
            event_head("alarm", [pat(x)]),
            t,
            [
                happens(event_pat("probe", [pat(x), pat(tp)]), t),
                not_holds(fluent_pat("active", [pat(x)], val(true)), tp),
            ],
        );
        b.build().unwrap()
    }

    #[test]
    fn window_advance_rederives_event_arg_holds_reads() {
        let mut inc = Engine::new(probe_alarm_ruleset(), WindowConfig::new(40, 20).unwrap());
        let mut full = Engine::new(probe_alarm_ruleset(), WindowConfig::new(40, 20).unwrap());
        full.set_incremental(false);
        for e in [
            Event::new("activate", [Term::sym("s")], 5),
            Event::new("probe", [Term::sym("s"), Term::int(10)], 30),
        ] {
            inc.add_event(e.clone()).unwrap();
            full.add_event(e).unwrap();
        }
        // Q1 = 40 (window (0, 40]): active(s) holds at 10, no alarm.
        let (a, b) = (inc.query(40).unwrap(), full.query(40).unwrap());
        assert_eq!(a.derived_events, b.derived_events, "diverged at q=40");
        assert!(a.events_of("alarm").is_empty());
        // Q2 = 60 (window (20, 60]): no new input, but T2 = 10 has left the
        // window, so `not holdsAt(active(s), 10)` is now true and the alarm
        // at 30 must appear — the delta-empty skip would silently drop it.
        let (a, b) = (inc.query(60).unwrap(), full.query(60).unwrap());
        assert_eq!(a.derived_events, b.derived_events, "diverged at q=60");
        assert_eq!(a.events_of("alarm").len(), 1);
        assert_eq!(a.events_of("alarm")[0].time, 30);
    }

    #[test]
    fn incremental_matches_full_on_event_arg_holds_times() {
        // Differential over random arrival schedules for the non-pivotable
        // rule set: probes carry arbitrary read times (in-window, boundary
        // and expired), and the incremental engine must stay exactly equal
        // to full re-evaluation at every query.
        let mut seed: u64 = 0x0b5e_57f1_c0ff_ee11;
        let mut next = move || {
            seed ^= seed >> 12;
            seed ^= seed << 25;
            seed ^= seed >> 27;
            seed.wrapping_mul(0x2545f4914f6cdd1d)
        };
        for _case in 0..20 {
            let mut inc = Engine::new(probe_alarm_ruleset(), WindowConfig::new(80, 40).unwrap());
            let mut full = Engine::new(probe_alarm_ruleset(), WindowConfig::new(80, 40).unwrap());
            full.set_incremental(false);
            let n_events = 10 + (next() % 30) as i64;
            for _ in 0..n_events {
                let x = Term::sym(if next() % 2 == 0 { "a" } else { "b" });
                let t = (next() % 400) as Time;
                let arrival = t + (next() % 120) as Time;
                let ev = match next() % 3 {
                    0 => Event::new("activate", [x], t),
                    1 => Event::new("deactivate", [x], t),
                    // Read times biased toward the recent past so they
                    // regularly cross the window-start boundary.
                    _ => Event::new(
                        "probe",
                        [x, Term::int(t.saturating_sub((next() % 120) as i64))],
                        t,
                    ),
                };
                inc.add_stamped_event(Stamped::arriving_at(ev.clone(), arrival)).unwrap();
                full.add_stamped_event(Stamped::arriving_at(ev, arrival)).unwrap();
            }
            for q in (40..=520).step_by(40) {
                let a = inc.query(q).unwrap();
                let b = full.query(q).unwrap();
                assert_eq!(a.derived_events, b.derived_events, "events diverged at q={q}");
                let mut ga: Vec<_> = a
                    .fluent_entries("active")
                    .iter()
                    .map(|e| (e.args.clone(), e.value.clone(), e.ivs.clone()))
                    .collect();
                let mut gb: Vec<_> = b
                    .fluent_entries("active")
                    .iter()
                    .map(|e| (e.args.clone(), e.value.clone(), e.ivs.clone()))
                    .collect();
                ga.sort_by(|x, y| (&x.0, &x.1).cmp(&(&y.0, &y.1)));
                gb.sort_by(|x, y| (&x.0, &x.1).cmp(&(&y.0, &y.1)));
                assert_eq!(ga, gb, "fluent `active` diverged at q={q}");
            }
        }
    }

    #[test]
    fn incremental_matches_full_reevaluation_on_random_schedules() {
        // Differential test: the incremental engine must be indistinguishable
        // from full re-evaluation over arbitrary arrival schedules, including
        // delayed events amended into overlapping windows.
        let mut seed: u64 = 0x9e3779b97f4a7c15;
        let mut next = move || {
            // xorshift64* — deterministic, dependency-free pseudo-randomness.
            seed ^= seed >> 12;
            seed ^= seed << 25;
            seed ^= seed >> 27;
            seed.wrapping_mul(0x2545f4914f6cdd1d)
        };
        // delayIncrease (two-happens join + guards) feeding an inertial
        // fluent terminated by low-delay moves.
        let ruleset = || {
            let mut b = RuleSetBuilder::new();
            b.declare_event("move", 2);
            let bus = b.var("Bus");
            let d1 = b.var("D1");
            let d2 = b.var("D2");
            let t1 = b.var("T1");
            let t2 = b.var("T2");
            b.derived_event(
                event_head("delayIncrease", [pat(bus)]),
                t2,
                [
                    happens(event_pat("move", [pat(bus), pat(d1)]), t1),
                    happens(event_pat("move", [pat(bus), pat(d2)]), t2),
                    guard(cmp(NumExpr::sub(d2.into(), d1.into()), CmpOp::Gt, 300.0)),
                    guard(cmp(NumExpr::sub(t2.into(), t1.into()), CmpOp::Gt, 0.0)),
                    guard(cmp(NumExpr::sub(t2.into(), t1.into()), CmpOp::Lt, 60.0)),
                ],
            );
            let t3 = b.var("T3");
            b.initiated(
                fluent("congested", [pat(bus)], val(true)),
                t3,
                [happens(event_pat("delayIncrease", [pat(bus)]), t3)],
            );
            let t4 = b.var("T4");
            let d3 = b.var("D3");
            b.terminated(
                fluent("congested", [pat(bus)], val(true)),
                t4,
                [
                    happens(event_pat("move", [pat(bus), pat(d3)]), t4),
                    guard(cmp(d3, CmpOp::Lt, 100.0)),
                ],
            );
            b.build().unwrap()
        };
        for _case in 0..20 {
            let mut inc = Engine::new(ruleset(), WindowConfig::new(80, 40).unwrap());
            let mut full = Engine::new(ruleset(), WindowConfig::new(80, 40).unwrap());
            full.set_incremental(false);
            let n_events = 10 + (next() % 30) as i64;
            for _ in 0..n_events {
                let bus = Term::sym(if next() % 2 == 0 { "b1" } else { "b2" });
                let t = (next() % 400) as Time;
                let delay = (next() % 800) as i64;
                let arrival = t + (next() % 120) as Time;
                let ev = Event::new("move", [bus, Term::int(delay)], t);
                inc.add_stamped_event(Stamped::arriving_at(ev.clone(), arrival)).unwrap();
                full.add_stamped_event(Stamped::arriving_at(ev, arrival)).unwrap();
            }
            for q in (40..=520).step_by(40) {
                let a = inc.query(q).unwrap();
                let b = full.query(q).unwrap();
                assert_eq!(a.derived_events, b.derived_events, "events diverged at q={q}");
                let name = "congested";
                let mut ga: Vec<_> = a
                    .fluent_entries(name)
                    .iter()
                    .map(|e| (e.args.clone(), e.value.clone(), e.ivs.clone()))
                    .collect();
                let mut gb: Vec<_> = b
                    .fluent_entries(name)
                    .iter()
                    .map(|e| (e.args.clone(), e.value.clone(), e.ivs.clone()))
                    .collect();
                ga.sort_by(|x, y| (&x.0, &x.1).cmp(&(&y.0, &y.1)));
                gb.sort_by(|x, y| (&x.0, &x.1).cmp(&(&y.0, &y.1)));
                assert_eq!(ga, gb, "fluent `{name}` diverged at q={q}");
            }
        }
    }

    /// Feeds the multi-strata stream of [`parallel_strata_match_serial_exactly`]
    /// (with late arrivals) into `e`.
    fn feed_multi_strata(e: &mut Engine) {
        for i in 0..120i64 {
            let dev = Term::sym(["a", "b", "c"][(i % 3) as usize]);
            let kind =
                ["on_set", "hot_set", "busy_set", "on_clear", "hot_clear", "busy_clear", "check"]
                    [(i % 7) as usize];
            let arrival = if i % 3 == 0 { i + 20 } else { i };
            e.add_stamped_event(Stamped::arriving_at(Event::new(kind, [dev], i), arrival)).unwrap();
        }
    }

    #[test]
    fn restored_engine_matches_live_continuation_and_cold_replay() {
        let window = WindowConfig::new(60, 20).unwrap();
        let grid: Vec<Time> = (20..=140).step_by(20).collect();
        let crash_after = 60;

        // Live engine: runs the whole grid uninterrupted.
        let mut live = Engine::new(multi_strata_ruleset(), window);
        feed_multi_strata(&mut live);
        let mut snapshot = None;
        let mut live_out = Vec::new();
        for &q in &grid {
            live_out.push(canonical(&live.query(q).unwrap()));
            if q == crash_after {
                snapshot = Some(live.snapshot_state());
            }
        }
        let snapshot = snapshot.unwrap();

        // Restored engine: a fresh build of the same configuration restored
        // from the mid-stream snapshot must answer the remaining queries
        // exactly like the live engine did.
        let mut restored = Engine::new(multi_strata_ruleset(), window);
        restored.restore_state(&snapshot).unwrap();
        assert_eq!(restored.snapshot_state(), snapshot, "snapshot round trip is lossless");
        assert!(
            matches!(restored.query(crash_after), Err(RtecError::NonMonotonicQuery { .. })),
            "the restored query clock keeps monotonicity"
        );
        for (i, &q) in grid.iter().enumerate() {
            if q <= crash_after {
                continue;
            }
            let rec = restored.query(q).unwrap();
            assert_eq!(canonical(&rec), live_out[i], "restored run diverged at q={q}");
        }

        // Cold replay oracle: a fresh engine replaying the *entire* history
        // over the same grid agrees with both.
        let mut cold = Engine::new(multi_strata_ruleset(), window);
        feed_multi_strata(&mut cold);
        for (i, &q) in grid.iter().enumerate() {
            assert_eq!(canonical(&cold.query(q).unwrap()), live_out[i], "cold replay at q={q}");
        }
    }

    #[test]
    fn snapshot_roundtrips_observations_floats_and_inertia() {
        let mut b = RuleSetBuilder::new();
        b.declare_event("move", 1);
        b.declare_input_fluent("gps", 2);
        let bus = b.var("Bus");
        let t = b.var("T");
        b.initiated(
            fluent("busCong", [pat(bus)], val(true)),
            t,
            [
                happens(event_pat("move", [pat(bus)]), t),
                holds(fluent_pat("gps", [pat(bus), cnst(1i64)], val(true)), t),
            ],
        );
        let t2 = b.var("T2");
        b.terminated(
            fluent("busCong", [pat(bus)], val(true)),
            t2,
            [
                happens(event_pat("move", [pat(bus)]), t2),
                holds(fluent_pat("gps", [pat(bus), cnst(0i64)], val(true)), t2),
            ],
        );
        let rules = b.build().unwrap();
        let window = WindowConfig::new(100, 50).unwrap();

        let mut a = Engine::new(rules.clone(), window);
        // Awkward payloads: a float with a non-terminating decimal expansion,
        // a negative zero, and a symbol needing escaping.
        a.add_event(Event::new("move", [Term::sym("bus 7%")], 10)).unwrap();
        a.add_obs(FluentObs::new("gps", [Term::sym("bus 7%"), Term::int(1)], true, 10)).unwrap();
        a.add_event(Event::new("move", [Term::float(0.1 + 0.2)], 20)).unwrap();
        a.add_obs(FluentObs::new("gps", [Term::float(0.1 + 0.2), Term::int(1)], true, 20)).unwrap();
        a.add_event(Event::new("move", [Term::float(-0.0)], 30)).unwrap();
        let rec_a = a.query(50).unwrap();

        let mut c = Engine::new(rules, window);
        c.restore_state(&a.snapshot_state()).unwrap();
        // The restored engine keeps accepting input and the open busCong
        // interval persists by inertia, exactly as on the live engine.
        for e in [&mut a, &mut c] {
            e.add_event(Event::new("move", [Term::sym("bus 7%")], 60)).unwrap();
            e.add_obs(FluentObs::new("gps", [Term::sym("bus 7%"), Term::int(0)], true, 60))
                .unwrap();
        }
        let (ra, rc) = (a.query(100).unwrap(), c.query(100).unwrap());
        assert_eq!(canonical(&ra), canonical(&rc), "post-restore window diverged");
        let ivs = rc.intervals_of("busCong", &[Term::sym("bus 7%")], &Term::truth()).unwrap();
        assert_eq!(ivs.as_slice(), &[crate::interval::Interval::span(10, 60)]);
        assert!(
            !canonical(&rec_a).is_empty() && !canonical(&ra).is_empty(),
            "the scenario actually derives fluents"
        );
    }

    #[test]
    fn restore_rejects_corrupt_and_mismatched_snapshots() {
        let window = WindowConfig::new(60, 20).unwrap();
        let mut e = Engine::new(multi_strata_ruleset(), window);
        for bad in [
            "",
            "rtec-state v0\n",
            "rtec-state v1\nwat 1 2 3\n",
            "rtec-state v1\nev 2 0 0 check i:1\n",
            "rtec-state v1\nev 0 0 nope check i:1\n",
            "rtec-state v1\npf on b:1 1 s:a 5:3\n",
        ] {
            let err = e.restore_state(bad).unwrap_err();
            assert!(matches!(err, RtecError::CorruptState { .. }), "accepted: {bad:?} -> {err}");
        }
        // Undeclared symbols and arity mismatches are caught even though the
        // snapshot itself is well-formed.
        let undeclared = "rtec-state v1\nev 0 0 5 ghost i:1\n";
        assert!(matches!(
            e.restore_state(undeclared),
            Err(RtecError::CorruptState { detail }) if detail.contains("ghost")
        ));
        let wrong_arity = "rtec-state v1\nev 0 0 5 check i:1 i:2\n";
        assert!(matches!(
            e.restore_state(wrong_arity),
            Err(RtecError::CorruptState { detail }) if detail.contains("arity")
        ));
        // A failed restore leaves the engine usable.
        feed_multi_strata(&mut e);
        assert!(e.query(60).is_ok());
    }
}
