//! The recognition engine: windowed, stratified evaluation of rule sets.
//!
//! An [`Engine`] buffers arriving SDEs, and at each query time `Qi` evaluates
//! the rule set over the working memory `(Qi − WM, Qi]` (Section 4.2 of the
//! paper):
//!
//! 1. input events and fluent observations that have arrived by `Qi` and
//!    occurred inside the window are indexed;
//! 2. strata are evaluated bottom-up — derived events are added to the event
//!    index, simple fluents go through initiation/termination point collection
//!    and the law of inertia, statically-determined fluents evaluate their
//!    interval expressions;
//! 3. fluent intervals are cached so that the next query can seed the value
//!    each fluent has at its window start (inertia across windows).
//!
//! Re-deriving everything inside the window is what lets SDEs that arrive
//! *late* (but still inside the window) be amended into the results, exactly
//! as Figure 2 of the paper illustrates; SDEs older than the window are
//! irrevocably lost.

use crate::dsl::RuleSet;
use crate::error::RtecError;
use crate::event::{Event, FluentObs, Stamped};
use crate::interval::IntervalList;
use crate::pattern::{
    match_args, unbind_all, ArgPat, Bindings, EventPattern, FluentPattern, VarId,
};
use crate::rule::{
    BodyAtom, EventRule, GuardExpr, IntervalExpr, NumExpr, SfKind, SimpleFluentRule, StaticRule,
    ValRef,
};
use crate::stratify::HeadKind;
use crate::term::{Symbol, Term};
use crate::time::Time;
use crate::window::WindowConfig;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A registered boolean builtin predicate (e.g. the spatial `close/4`).
pub type BuiltinFn = Arc<dyn Fn(&[Term]) -> bool + Send + Sync>;

// ---------------------------------------------------------------------------
// Window-local stores
// ---------------------------------------------------------------------------

#[derive(Default)]
struct KindStore {
    /// Events of one kind, sorted by occurrence time.
    items: Vec<Event>,
    /// Indices into `items` grouped by first argument, each sorted by time.
    by_first: HashMap<Term, Vec<u32>>,
}

impl KindStore {
    fn rebuild_index(&mut self) {
        self.items.sort_by_key(|e| e.time);
        self.by_first.clear();
        for (i, e) in self.items.iter().enumerate() {
            if let Some(first) = e.args.first() {
                self.by_first.entry(first.clone()).or_default().push(i as u32);
            }
        }
    }
}

#[derive(Default)]
struct EventStore {
    by_kind: HashMap<Symbol, KindStore>,
}

impl EventStore {
    fn build(events: impl IntoIterator<Item = Event>) -> EventStore {
        let mut store = EventStore::default();
        for e in events {
            store.by_kind.entry(e.kind).or_default().items.push(e);
        }
        for ks in store.by_kind.values_mut() {
            ks.rebuild_index();
        }
        store
    }

    fn add_derived(&mut self, events: Vec<Event>) {
        let mut touched: HashSet<Symbol> = HashSet::new();
        for e in events {
            touched.insert(e.kind);
            self.by_kind.entry(e.kind).or_default().items.push(e);
        }
        for k in touched {
            self.by_kind.get_mut(&k).expect("just inserted").rebuild_index();
        }
    }
}

#[derive(Default)]
struct ObsStore {
    by_name: HashMap<Symbol, KindObsStore>,
}

#[derive(Default)]
struct KindObsStore {
    items: Vec<FluentObs>,
    by_first: HashMap<Term, Vec<u32>>,
}

impl KindObsStore {
    fn rebuild_index(&mut self) {
        self.items.sort_by_key(|o| o.time);
        self.by_first.clear();
        for (i, o) in self.items.iter().enumerate() {
            if let Some(first) = o.args.first() {
                self.by_first.entry(first.clone()).or_default().push(i as u32);
            }
        }
    }

    fn range_at(&self, t: Time) -> &[FluentObs] {
        let lo = self.items.partition_point(|o| o.time < t);
        let hi = self.items.partition_point(|o| o.time <= t);
        &self.items[lo..hi]
    }
}

impl ObsStore {
    fn build(obs: impl IntoIterator<Item = FluentObs>) -> ObsStore {
        let mut store = ObsStore::default();
        for o in obs {
            store.by_name.entry(o.name).or_default().items.push(o);
        }
        for ks in store.by_name.values_mut() {
            ks.rebuild_index();
        }
        store
    }
}

// ---------------------------------------------------------------------------
// Derived fluent store
// ---------------------------------------------------------------------------

/// One computed fluent grounding and its maximal intervals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FluentEntry {
    /// Ground arguments.
    pub args: Vec<Term>,
    /// The fluent value.
    pub value: Term,
    /// Maximal intervals where `name(args) = value` holds.
    pub ivs: IntervalList,
}

/// All derived fluent groundings computed at one query time.
#[derive(Debug, Clone, Default)]
pub struct FluentStore {
    by_name: HashMap<Symbol, Vec<FluentEntry>>,
    /// Indices into the entry vector, grouped by first argument — narrows
    /// `holdsAt` lookups with a bound leading argument (e.g. `noisy(Bus)`).
    by_first: HashMap<(Symbol, Term), Vec<u32>>,
}

impl FluentStore {
    /// The computed groundings of fluent `name` (empty slice if none).
    pub fn entries(&self, name: Symbol) -> &[FluentEntry] {
        self.by_name.get(&name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Entry indices of `name` whose first argument equals `first`.
    fn indices_by_first(&self, name: Symbol, first: &Term) -> Option<&[u32]> {
        self.by_first.get(&(name, first.clone())).map(Vec::as_slice)
    }

    /// Fluent names with at least one grounding.
    pub fn names(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.by_name.keys().copied()
    }

    fn insert(&mut self, name: Symbol, entry: FluentEntry) {
        let entries = self.by_name.entry(name).or_default();
        if let Some(first) = entry.args.first() {
            self.by_first.entry((name, first.clone())).or_default().push(entries.len() as u32);
        }
        entries.push(entry);
    }

    /// Looks up the intervals of one exact grounding.
    pub fn intervals(&self, name: Symbol, args: &[Term], value: &Term) -> Option<&IntervalList> {
        self.by_name
            .get(&name)?
            .iter()
            .find(|e| e.args == args && &e.value == value)
            .map(|e| &e.ivs)
    }
}

type FluentKey = (Symbol, Vec<Term>, Term);

// ---------------------------------------------------------------------------
// Recognition result
// ---------------------------------------------------------------------------

/// Aggregate counts of one recognition query (diagnostics/benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecognitionStats {
    /// Derived (complex) events recognised.
    pub derived_events: usize,
    /// Derived fluent groundings with at least one interval.
    pub fluent_groundings: usize,
    /// Total maximal intervals across all groundings.
    pub intervals: usize,
}

/// Wall-clock timing of one recognition query, split by phase.
///
/// Measured with `std::time::Instant` only, so the crate stays
/// dependency-free; callers (e.g. the pipeline layer) copy these into their
/// own metrics registries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryTiming {
    /// The whole `query` call.
    pub total: std::time::Duration,
    /// Selecting visible window contents, expiring old items and building
    /// the event/observation stores.
    pub windowing: std::time::Duration,
    /// Stratified rule evaluation (events, simple fluents, static fluents).
    pub evaluation: std::time::Duration,
}

/// The result of one recognition query.
#[derive(Debug, Clone)]
pub struct Recognition {
    /// All derived (complex) events recognised in the window, time-sorted.
    pub derived_events: Vec<Event>,
    /// The query time.
    pub query_time: Time,
    /// The window start (`query_time − WM`).
    pub window_start: Time,
    /// Number of input SDEs (events + fluent observations) in the window.
    pub sde_count: usize,
    /// Wall-clock cost of producing this result.
    pub timing: QueryTiming,
    fluents: FluentStore,
}

impl Recognition {
    /// The full derived fluent store.
    pub fn fluent_store(&self) -> &FluentStore {
        &self.fluents
    }

    /// Intervals of one exact fluent grounding, if computed.
    pub fn intervals_of(&self, name: &str, args: &[Term], value: &Term) -> Option<&IntervalList> {
        self.fluents.intervals(Symbol::new(name), args, value)
    }

    /// All computed groundings of fluent `name`.
    pub fn fluent_entries(&self, name: &str) -> &[FluentEntry] {
        self.fluents.entries(Symbol::new(name))
    }

    /// Derived events of the given kind, time-sorted.
    pub fn events_of(&self, kind: &str) -> Vec<&Event> {
        let k = Symbol::new(kind);
        self.derived_events.iter().filter(|e| e.kind == k).collect()
    }

    /// `holdsAt` on a derived fluent grounding.
    pub fn holds_at(&self, name: &str, args: &[Term], value: &Term, t: Time) -> bool {
        self.intervals_of(name, args, value).is_some_and(|l| l.contains(t))
    }

    /// Aggregate counts for diagnostics.
    pub fn stats(&self) -> RecognitionStats {
        let mut stats = RecognitionStats {
            derived_events: self.derived_events.len(),
            ..RecognitionStats::default()
        };
        for name in self.fluents.names() {
            for e in self.fluents.entries(name) {
                stats.fluent_groundings += 1;
                stats.intervals += e.ivs.len();
            }
        }
        stats
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// A windowed RTEC recognition engine for one rule set.
pub struct Engine {
    ruleset: RuleSet,
    window: WindowConfig,
    buffered_events: Vec<Stamped<Event>>,
    buffered_obs: Vec<Stamped<FluentObs>>,
    relations: HashMap<Symbol, Vec<Vec<Term>>>,
    builtins: HashMap<Symbol, BuiltinFn>,
    prev_fluents: HashMap<FluentKey, IntervalList>,
    last_query: Option<Time>,
}

struct EvalCtx<'a> {
    events: &'a EventStore,
    obs: &'a ObsStore,
    fluents: &'a FluentStore,
    relations: &'a HashMap<Symbol, Vec<Vec<Term>>>,
    builtins: &'a HashMap<Symbol, BuiltinFn>,
    input_fluents: &'a HashMap<Symbol, usize>,
}

impl Engine {
    /// Creates an engine for `ruleset` with the given window configuration.
    pub fn new(ruleset: RuleSet, window: WindowConfig) -> Engine {
        Engine {
            ruleset,
            window,
            buffered_events: Vec::new(),
            buffered_obs: Vec::new(),
            relations: HashMap::new(),
            builtins: HashMap::new(),
            prev_fluents: HashMap::new(),
            last_query: None,
        }
    }

    /// The window configuration.
    pub fn window(&self) -> WindowConfig {
        self.window
    }

    /// The rule set being executed.
    pub fn ruleset(&self) -> &RuleSet {
        &self.ruleset
    }

    /// Registers the implementation of a declared builtin predicate.
    pub fn register_builtin<F>(&mut self, name: &str, f: F) -> Result<(), RtecError>
    where
        F: Fn(&[Term]) -> bool + Send + Sync + 'static,
    {
        let sym = Symbol::new(name);
        if !self.ruleset.builtins.contains_key(&sym) {
            return Err(RtecError::UnknownBuiltin { name: name.to_string() });
        }
        self.builtins.insert(sym, Arc::new(f));
        Ok(())
    }

    /// Replaces the tuples of a declared relation.
    pub fn set_relation(&mut self, name: &str, tuples: Vec<Vec<Term>>) -> Result<(), RtecError> {
        let sym = Symbol::new(name);
        let arity = *self
            .ruleset
            .relations
            .get(&sym)
            .ok_or_else(|| RtecError::UnknownRelation { name: name.to_string() })?;
        if let Some(bad) = tuples.iter().find(|t| t.len() != arity) {
            return Err(RtecError::ArityMismatch {
                symbol: name.to_string(),
                declared: arity,
                used: bad.len(),
            });
        }
        self.relations.insert(sym, tuples);
        Ok(())
    }

    /// Declares that a simple fluent grounding holds *initially* — before
    /// any event of the stream (the Event Calculus `initially` predicate).
    /// Must be called before the first query; the value persists by inertia
    /// until a termination rule fires.
    pub fn set_initially(
        &mut self,
        name: &str,
        args: Vec<Term>,
        value: Term,
    ) -> Result<(), RtecError> {
        if let Some(previous) = self.last_query {
            return Err(RtecError::NonMonotonicQuery { previous, requested: previous });
        }
        let sym = Symbol::new(name);
        if !self.ruleset.derived_fluents.contains(&sym) {
            return Err(RtecError::Undeclared {
                symbol: name.to_string(),
                context: "set_initially (must be a derived simple fluent)".into(),
            });
        }
        self.prev_fluents.insert(
            (sym, args, value),
            IntervalList::single(crate::interval::Interval::open_from(crate::time::TIME_MIN)),
        );
        Ok(())
    }

    /// Buffers an event that arrives exactly when it occurs.
    pub fn add_event(&mut self, event: Event) -> Result<(), RtecError> {
        self.add_stamped_event(Stamped::<Event>::punctual(event))
    }

    /// Buffers an event with an explicit arrival time (possibly delayed).
    pub fn add_stamped_event(&mut self, ev: Stamped<Event>) -> Result<(), RtecError> {
        match self.ruleset.input_events.get(&ev.item.kind) {
            Some(&arity) if arity == ev.item.args.len() => {
                self.buffered_events.push(ev);
                Ok(())
            }
            Some(&arity) => Err(RtecError::ArityMismatch {
                symbol: ev.item.kind.as_str(),
                declared: arity,
                used: ev.item.args.len(),
            }),
            None => Err(RtecError::Undeclared {
                symbol: ev.item.kind.as_str(),
                context: "add_event (declare it with declare_event)".into(),
            }),
        }
    }

    /// Buffers an input fluent observation arriving when it occurs.
    pub fn add_obs(&mut self, obs: FluentObs) -> Result<(), RtecError> {
        self.add_stamped_obs(Stamped::<FluentObs>::punctual(obs))
    }

    /// Buffers an input fluent observation with an explicit arrival time.
    pub fn add_stamped_obs(&mut self, obs: Stamped<FluentObs>) -> Result<(), RtecError> {
        match self.ruleset.input_fluents.get(&obs.item.name) {
            Some(&arity) if arity == obs.item.args.len() => {
                self.buffered_obs.push(obs);
                Ok(())
            }
            Some(&arity) => Err(RtecError::ArityMismatch {
                symbol: obs.item.name.as_str(),
                declared: arity,
                used: obs.item.args.len(),
            }),
            None => Err(RtecError::Undeclared {
                symbol: obs.item.name.as_str(),
                context: "add_obs (declare it with declare_input_fluent)".into(),
            }),
        }
    }

    /// Number of buffered (not yet expired) input items.
    pub fn buffered(&self) -> usize {
        self.buffered_events.len() + self.buffered_obs.len()
    }

    /// Runs recognition at query time `q`.
    ///
    /// Query times must be strictly increasing. Items that have arrived by
    /// `q` and occurred in `(q − WM, q]` are processed; items whose
    /// occurrence time has fallen behind the window are discarded.
    pub fn query(&mut self, q: Time) -> Result<Recognition, RtecError> {
        if let Some(prev) = self.last_query {
            if q <= prev {
                return Err(RtecError::NonMonotonicQuery { previous: prev, requested: q });
            }
        }
        // All declared builtins must have implementations.
        for name in self.ruleset.builtins.keys() {
            if !self.builtins.contains_key(name) {
                return Err(RtecError::UnknownBuiltin { name: name.as_str() });
            }
        }

        let query_started = std::time::Instant::now();
        let start = self.window.window_start(q);

        // Select the visible window contents.
        let visible_events: Vec<Event> = self
            .buffered_events
            .iter()
            .filter(|s| s.arrival <= q && s.item.time > start && s.item.time <= q)
            .map(|s| s.item.clone())
            .collect();
        let visible_obs: Vec<FluentObs> = self
            .buffered_obs
            .iter()
            .filter(|s| s.arrival <= q && s.item.time > start && s.item.time <= q)
            .map(|s| s.item.clone())
            .collect();
        let sde_count = visible_events.len() + visible_obs.len();

        // Drop items that can never be in a future window (occurrence behind
        // the current window start; window starts only move forward).
        self.buffered_events.retain(|s| s.item.time > start);
        self.buffered_obs.retain(|s| s.item.time > start);

        let mut events = EventStore::build(visible_events);
        let obs = ObsStore::build(visible_obs);
        let windowing = query_started.elapsed();
        let evaluation_started = std::time::Instant::now();
        let mut fluents = FluentStore::default();
        let mut derived_events_all: Vec<Event> = Vec::new();
        let mut new_cache: HashMap<FluentKey, IntervalList> = HashMap::new();

        for stratum in self.ruleset.strata.clone() {
            match stratum.kind {
                HeadKind::Event => {
                    let rules: Vec<&EventRule> =
                        stratum.rule_indices.iter().map(|&i| &self.ruleset.ev_rules[i]).collect();
                    let ctx = EvalCtx {
                        events: &events,
                        obs: &obs,
                        fluents: &fluents,
                        relations: &self.relations,
                        builtins: &self.builtins,
                        input_fluents: &self.ruleset.input_fluents,
                    };
                    let new_events = eval_event_stratum(&rules, &ctx);
                    derived_events_all.extend(new_events.iter().cloned());
                    events.add_derived(new_events);
                }
                HeadKind::SimpleFluent => {
                    let rules: Vec<&SimpleFluentRule> =
                        stratum.rule_indices.iter().map(|&i| &self.ruleset.sf_rules[i]).collect();
                    let ctx = EvalCtx {
                        events: &events,
                        obs: &obs,
                        fluents: &fluents,
                        relations: &self.relations,
                        builtins: &self.builtins,
                        input_fluents: &self.ruleset.input_fluents,
                    };
                    let computed = eval_simple_fluent_stratum(
                        stratum.symbol,
                        &rules,
                        &ctx,
                        &self.prev_fluents,
                        start,
                    );
                    for (key, ivs) in computed {
                        if !ivs.is_empty() {
                            fluents.insert(
                                key.0,
                                FluentEntry {
                                    args: key.1.clone(),
                                    value: key.2.clone(),
                                    ivs: ivs.clone(),
                                },
                            );
                            new_cache.insert(key, ivs);
                        }
                    }
                }
                HeadKind::StaticFluent => {
                    let rules: Vec<&StaticRule> = stratum
                        .rule_indices
                        .iter()
                        .map(|&i| &self.ruleset.static_rules[i])
                        .collect();
                    let ctx = EvalCtx {
                        events: &events,
                        obs: &obs,
                        fluents: &fluents,
                        relations: &self.relations,
                        builtins: &self.builtins,
                        input_fluents: &self.ruleset.input_fluents,
                    };
                    let computed = eval_static_stratum(&rules, &ctx);
                    for (key, ivs) in computed {
                        if !ivs.is_empty() {
                            fluents.insert(key.0, FluentEntry { args: key.1, value: key.2, ivs });
                        }
                    }
                }
            }
        }

        self.prev_fluents = new_cache;
        self.last_query = Some(q);

        derived_events_all.sort_by_key(|a| (a.time, a.kind));
        let evaluation = evaluation_started.elapsed();
        Ok(Recognition {
            derived_events: derived_events_all,
            query_time: q,
            window_start: start,
            sde_count,
            timing: QueryTiming { total: query_started.elapsed(), windowing, evaluation },
            fluents,
        })
    }
}

// ---------------------------------------------------------------------------
// Body evaluation (backtracking over conditions)
// ---------------------------------------------------------------------------

fn term_time(t: &Term) -> Option<Time> {
    t.as_i64()
}

fn resolve(v: &ValRef, b: &Bindings) -> Option<Term> {
    match v {
        ValRef::Const(t) => Some(t.clone()),
        ValRef::Var(var) => b.get(*var).cloned(),
    }
}

fn eval_num(e: &NumExpr, b: &Bindings) -> Option<f64> {
    match e {
        NumExpr::Var(v) => b.get(*v)?.as_f64(),
        NumExpr::Const(c) => Some(*c),
        NumExpr::Add(l, r) => Some(eval_num(l, b)? + eval_num(r, b)?),
        NumExpr::Sub(l, r) => Some(eval_num(l, b)? - eval_num(r, b)?),
        NumExpr::Mul(l, r) => Some(eval_num(l, b)? * eval_num(r, b)?),
        NumExpr::Abs(x) => Some(eval_num(x, b)?.abs()),
    }
}

fn eval_guard(g: &GuardExpr, b: &Bindings) -> bool {
    match g {
        GuardExpr::Cmp { lhs, op, rhs } => match (eval_num(lhs, b), eval_num(rhs, b)) {
            (Some(l), Some(r)) => op.apply(l, r),
            _ => false,
        },
        GuardExpr::TermEq(l, r) => match (resolve(l, b), resolve(r, b)) {
            (Some(l), Some(r)) => l == r,
            _ => false,
        },
        GuardExpr::TermNe(l, r) => match (resolve(l, b), resolve(r, b)) {
            (Some(l), Some(r)) => l != r,
            _ => false,
        },
        GuardExpr::And(gs) => gs.iter().all(|g| eval_guard(g, b)),
        GuardExpr::Or(gs) => gs.iter().any(|g| eval_guard(g, b)),
        GuardExpr::Not(g) => !eval_guard(g, b),
    }
}

/// Matches an event against a pattern + time variable; on success calls
/// `k` and rolls back bindings afterwards.
fn with_event_match(
    pat: &EventPattern,
    time: VarId,
    e: &Event,
    b: &mut Bindings,
    k: &mut dyn FnMut(&mut Bindings),
) {
    // Time first: cheap check/bind.
    let t_term = Term::Int(e.time);
    let time_was_bound = b.is_bound(time);
    if time_was_bound {
        if b.get(time) != Some(&t_term) {
            return;
        }
    } else if !b.bind(time, &t_term) {
        return;
    }
    if let Some(bound) = match_args(&pat.args, &e.args, b) {
        k(b);
        unbind_all(&bound, b);
    }
    if !time_was_bound {
        b.unbind(time);
    }
}

fn solve(
    ctx: &EvalCtx<'_>,
    atoms: &[BodyAtom],
    b: &mut Bindings,
    out: &mut dyn FnMut(&mut Bindings),
) {
    let Some((atom, rest)) = atoms.split_first() else {
        out(b);
        return;
    };
    match atom {
        BodyAtom::Happens { pat, time } => {
            let Some(ks) = ctx.events.by_kind.get(&pat.kind) else { return };
            // Narrow enumeration by bound time, else by bound first arg.
            if let Some(t) = b.get(*time).and_then(term_time) {
                // Clone candidates? No — use index ranges.
                let lo = ks.items.partition_point(|e| e.time < t);
                let hi = ks.items.partition_point(|e| e.time <= t);
                for e in &ks.items[lo..hi] {
                    with_event_match(pat, *time, e, b, &mut |b| solve(ctx, rest, b, out));
                }
            } else {
                let first_bound: Option<Term> = match pat.args.first() {
                    Some(ArgPat::Const(c)) => Some(c.clone()),
                    Some(ArgPat::Var(v)) => b.get(*v).cloned(),
                    _ => None,
                };
                match first_bound {
                    Some(first) => {
                        if let Some(idxs) = ks.by_first.get(&first) {
                            for &i in idxs {
                                let e = &ks.items[i as usize];
                                with_event_match(pat, *time, e, b, &mut |b| {
                                    solve(ctx, rest, b, out)
                                });
                            }
                        }
                    }
                    None => {
                        for e in &ks.items {
                            with_event_match(pat, *time, e, b, &mut |b| solve(ctx, rest, b, out));
                        }
                    }
                }
            }
        }
        BodyAtom::Holds { pat, time, negated } => {
            let Some(t) = b.get(*time).and_then(term_time) else { return };
            if ctx.input_fluents.contains_key(&pat.name) {
                solve_holds_input(ctx, pat, t, *negated, b, rest, out);
            } else {
                solve_holds_derived(ctx, pat, t, *negated, b, rest, out);
            }
        }
        BodyAtom::Relation { name, args } => {
            if let Some(tuples) = ctx.relations.get(name) {
                for tuple in tuples {
                    if let Some(bound) = match_args(args, tuple, b) {
                        solve(ctx, rest, b, out);
                        unbind_all(&bound, b);
                    }
                }
            }
        }
        BodyAtom::Builtin { name, args } => {
            let Some(f) = ctx.builtins.get(name) else { return };
            let resolved: Option<Vec<Term>> = args.iter().map(|a| resolve(a, b)).collect();
            if let Some(terms) = resolved {
                if f(&terms) {
                    solve(ctx, rest, b, out);
                }
            }
        }
        BodyAtom::Guard(g) => {
            if eval_guard(g, b) {
                solve(ctx, rest, b, out);
            }
        }
    }
}

fn solve_holds_input(
    ctx: &EvalCtx<'_>,
    pat: &FluentPattern,
    t: Time,
    negated: bool,
    b: &mut Bindings,
    rest: &[BodyAtom],
    out: &mut dyn FnMut(&mut Bindings),
) {
    let Some(ks) = ctx.obs.by_name.get(&pat.name) else {
        if negated {
            solve(ctx, rest, b, out);
        }
        return;
    };
    let candidates = ks.range_at(t);
    if negated {
        let exists = candidates.iter().any(|o| match match_args(&pat.args, &o.args, b) {
            Some(bound_args) => {
                let ok = match match_args(
                    std::slice::from_ref(&pat.value),
                    std::slice::from_ref(&o.value),
                    b,
                ) {
                    Some(bound_val) => {
                        unbind_all(&bound_val, b);
                        true
                    }
                    None => false,
                };
                unbind_all(&bound_args, b);
                ok
            }
            None => false,
        });
        if !exists {
            solve(ctx, rest, b, out);
        }
        return;
    }
    for o in candidates {
        if let Some(bound_args) = match_args(&pat.args, &o.args, b) {
            if let Some(bound_val) =
                match_args(std::slice::from_ref(&pat.value), std::slice::from_ref(&o.value), b)
            {
                solve(ctx, rest, b, out);
                unbind_all(&bound_val, b);
            }
            unbind_all(&bound_args, b);
        }
    }
}

/// Matches a fluent entry's args+value against a pattern, rolling every new
/// binding back before returning. Returns whether the entry matches.
fn entry_matches(pat: &FluentPattern, e: &FluentEntry, b: &mut Bindings) -> bool {
    if let Some(bound_args) = match_args(&pat.args, &e.args, b) {
        let ok =
            match match_args(std::slice::from_ref(&pat.value), std::slice::from_ref(&e.value), b) {
                Some(bound_val) => {
                    unbind_all(&bound_val, b);
                    true
                }
                None => false,
            };
        unbind_all(&bound_args, b);
        ok
    } else {
        false
    }
}

fn solve_holds_derived(
    ctx: &EvalCtx<'_>,
    pat: &FluentPattern,
    t: Time,
    negated: bool,
    b: &mut Bindings,
    rest: &[BodyAtom],
    out: &mut dyn FnMut(&mut Bindings),
) {
    let entries = ctx.fluents.entries(pat.name);
    // Narrow by a bound first argument where possible.
    let first_bound: Option<Term> = match pat.args.first() {
        Some(ArgPat::Const(c)) => Some(c.clone()),
        Some(ArgPat::Var(v)) => b.get(*v).cloned(),
        _ => None,
    };
    let narrowed: Option<&[u32]> =
        first_bound.as_ref().and_then(|f| ctx.fluents.indices_by_first(pat.name, f));

    if negated {
        let exists = match narrowed {
            Some(idxs) => idxs.iter().any(|&i| {
                let e = &entries[i as usize];
                e.ivs.contains(t) && entry_matches(pat, e, b)
            }),
            None => {
                if first_bound.is_some() {
                    false // bound first arg with no index bucket: no grounding
                } else {
                    entries.iter().any(|e| e.ivs.contains(t) && entry_matches(pat, e, b))
                }
            }
        };
        if !exists {
            solve(ctx, rest, b, out);
        }
        return;
    }

    let mut visit = |e: &FluentEntry, b: &mut Bindings| {
        if !e.ivs.contains(t) {
            return;
        }
        if let Some(bound_args) = match_args(&pat.args, &e.args, b) {
            if let Some(bound_val) =
                match_args(std::slice::from_ref(&pat.value), std::slice::from_ref(&e.value), b)
            {
                solve(ctx, rest, b, out);
                unbind_all(&bound_val, b);
            }
            unbind_all(&bound_args, b);
        }
    };
    match narrowed {
        Some(idxs) => {
            for &i in idxs {
                visit(&entries[i as usize], b);
            }
        }
        None => {
            if first_bound.is_none() {
                for e in entries {
                    visit(e, b);
                }
            }
            // else: bound first arg without a bucket — no matches.
        }
    }
}

fn instantiate_args(pats: &[ArgPat], b: &Bindings) -> Vec<Term> {
    pats.iter()
        .map(|p| match p {
            ArgPat::Const(c) => c.clone(),
            ArgPat::Var(v) => b.get(*v).expect("head var bound (validated at build)").clone(),
            ArgPat::Any => unreachable!("wildcards are rejected in heads at build time"),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Stratum evaluation
// ---------------------------------------------------------------------------

fn eval_event_stratum(rules: &[&EventRule], ctx: &EvalCtx<'_>) -> Vec<Event> {
    let mut seen: HashSet<(Symbol, Vec<Term>, Time)> = HashSet::new();
    let mut events = Vec::new();
    for rule in rules {
        let mut b = Bindings::new(rule.n_vars);
        solve(ctx, &rule.body, &mut b, &mut |b| {
            let t =
                b.get(rule.time).and_then(term_time).expect("head time bound (validated at build)");
            let args = instantiate_args(&rule.head.args, b);
            if seen.insert((rule.head.kind, args.clone(), t)) {
                events.push(Event { kind: rule.head.kind, args, time: t });
            }
        });
    }
    events
}

/// Initiation/termination time-points collected per fluent grounding.
type PointsByGrounding = HashMap<(Vec<Term>, Term), (Vec<Time>, Vec<Time>)>;

fn eval_simple_fluent_stratum(
    symbol: Symbol,
    rules: &[&SimpleFluentRule],
    ctx: &EvalCtx<'_>,
    prev: &HashMap<FluentKey, IntervalList>,
    window_start: Time,
) -> Vec<(FluentKey, IntervalList)> {
    // Collect initiation/termination points per grounding.
    let mut points: PointsByGrounding = HashMap::new();
    for rule in rules {
        let mut b = Bindings::new(rule.n_vars);
        solve(ctx, &rule.body, &mut b, &mut |b| {
            let t =
                b.get(rule.time).and_then(term_time).expect("head time bound (validated at build)");
            let args = instantiate_args(&rule.head.args, b);
            let value = match &rule.head.value {
                ArgPat::Const(c) => c.clone(),
                ArgPat::Var(v) => b.get(*v).expect("head value bound").clone(),
                ArgPat::Any => unreachable!("validated at build"),
            };
            let entry = points.entry((args, value)).or_default();
            match rule.kind {
                SfKind::Initiated => entry.0.push(t),
                SfKind::Terminated => entry.1.push(t),
            }
        });
    }

    // Groundings to (re)compute: those with points now, plus cached
    // groundings of this fluent that still hold at the window start.
    let mut keys: HashSet<(Vec<Term>, Term)> = points.keys().cloned().collect();
    for ((name, args, value), ivs) in prev {
        if *name == symbol && ivs.contains(window_start) {
            keys.insert((args.clone(), value.clone()));
        }
    }

    let mut out = Vec::with_capacity(keys.len());
    for key in keys {
        let (inits, terms) = points.get(&key).cloned().unwrap_or_default();
        let full_key: FluentKey = (symbol, key.0.clone(), key.1.clone());
        let initially = prev.get(&full_key).is_some_and(|l| l.contains(window_start));
        let ivs = IntervalList::from_points(&inits, &terms, initially, window_start);
        out.push((full_key, ivs));
    }
    out
}

fn eval_interval_expr(expr: &IntervalExpr, b: &Bindings, fluents: &FluentStore) -> IntervalList {
    match expr {
        IntervalExpr::Fluent(pat) => {
            let mut acc: Vec<&IntervalList> = Vec::new();
            for e in fluents.entries(pat.name) {
                let mut probe = b.clone();
                if match_args(&pat.args, &e.args, &mut probe).is_some()
                    && match_args(
                        std::slice::from_ref(&pat.value),
                        std::slice::from_ref(&e.value),
                        &mut probe,
                    )
                    .is_some()
                {
                    acc.push(&e.ivs);
                }
            }
            IntervalList::union_all(acc)
        }
        IntervalExpr::Union(es) => {
            let lists: Vec<IntervalList> =
                es.iter().map(|e| eval_interval_expr(e, b, fluents)).collect();
            IntervalList::union_all(lists.iter())
        }
        IntervalExpr::Intersect(es) => {
            let lists: Vec<IntervalList> =
                es.iter().map(|e| eval_interval_expr(e, b, fluents)).collect();
            IntervalList::intersect_all(lists.iter())
        }
        IntervalExpr::RelComp(base, subs) => {
            let base_l = eval_interval_expr(base, b, fluents);
            let sub_ls: Vec<IntervalList> =
                subs.iter().map(|e| eval_interval_expr(e, b, fluents)).collect();
            IntervalList::relative_complement_all(&base_l, sub_ls.iter())
        }
    }
}

fn eval_static_stratum(rules: &[&StaticRule], ctx: &EvalCtx<'_>) -> Vec<(FluentKey, IntervalList)> {
    let mut acc: HashMap<FluentKey, IntervalList> = HashMap::new();
    for rule in rules {
        let mut b = Bindings::new(rule.n_vars);
        let mut solutions: Vec<Bindings> = Vec::new();
        solve(ctx, &rule.domain, &mut b, &mut |b| solutions.push(b.clone()));
        for sol in solutions {
            let ivs = eval_interval_expr(&rule.expr, &sol, ctx.fluents);
            if ivs.is_empty() {
                continue;
            }
            let args = instantiate_args(&rule.head.args, &sol);
            let value = match &rule.head.value {
                ArgPat::Const(c) => c.clone(),
                ArgPat::Var(v) => sol.get(*v).expect("head value bound").clone(),
                ArgPat::Any => unreachable!("validated at build"),
            };
            let key: FluentKey = (rule.head.name, args, value);
            acc.entry(key).and_modify(|existing| *existing = existing.union(&ivs)).or_insert(ivs);
        }
    }
    acc.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::rule::CmpOp;

    fn on_off_ruleset() -> RuleSet {
        let mut b = RuleSetBuilder::new();
        b.declare_event("switch_on", 1).declare_event("switch_off", 1);
        let dev = b.var("Dev");
        let t1 = b.var("T1");
        b.initiated(
            fluent("on", [pat(dev)], val(true)),
            t1,
            [happens(event_pat("switch_on", [pat(dev)]), t1)],
        );
        let t2 = b.var("T2");
        b.terminated(
            fluent("on", [pat(dev)], val(true)),
            t2,
            [happens(event_pat("switch_off", [pat(dev)]), t2)],
        );
        b.build().unwrap()
    }

    #[test]
    fn basic_inertia() {
        let mut e = Engine::new(on_off_ruleset(), WindowConfig::new(100, 100).unwrap());
        e.add_event(Event::new("switch_on", [Term::sym("lamp")], 10)).unwrap();
        e.add_event(Event::new("switch_off", [Term::sym("lamp")], 40)).unwrap();
        e.add_event(Event::new("switch_on", [Term::sym("lamp")], 70)).unwrap();
        let rec = e.query(100).unwrap();
        let ivs = rec.intervals_of("on", &[Term::sym("lamp")], &Term::truth()).unwrap();
        assert_eq!(
            ivs.as_slice(),
            &[crate::interval::Interval::span(10, 40), crate::interval::Interval::open_from(70)]
        );
        assert_eq!(rec.sde_count, 3);
    }

    #[test]
    fn per_entity_groundings_are_independent() {
        let mut e = Engine::new(on_off_ruleset(), WindowConfig::new(100, 100).unwrap());
        e.add_event(Event::new("switch_on", [Term::sym("a")], 10)).unwrap();
        e.add_event(Event::new("switch_on", [Term::sym("b")], 20)).unwrap();
        e.add_event(Event::new("switch_off", [Term::sym("a")], 30)).unwrap();
        let rec = e.query(100).unwrap();
        assert!(rec.holds_at("on", &[Term::sym("b")], &Term::truth(), 50));
        assert!(!rec.holds_at("on", &[Term::sym("a")], &Term::truth(), 50));
    }

    #[test]
    fn inertia_carries_across_windows() {
        let mut e = Engine::new(on_off_ruleset(), WindowConfig::new(100, 100).unwrap());
        e.add_event(Event::new("switch_on", [Term::sym("lamp")], 10)).unwrap();
        let _ = e.query(100).unwrap();
        // No new events; fluent must still hold in the next window.
        let rec = e.query(200).unwrap();
        assert!(rec.holds_at("on", &[Term::sym("lamp")], &Term::truth(), 150));
        // Terminate in a third window.
        e.add_event(Event::new("switch_off", [Term::sym("lamp")], 250)).unwrap();
        let rec = e.query(300).unwrap();
        let ivs = rec.intervals_of("on", &[Term::sym("lamp")], &Term::truth()).unwrap();
        assert_eq!(ivs.as_slice(), &[crate::interval::Interval::span(200, 250)]);
    }

    #[test]
    fn late_events_are_amended_when_wm_exceeds_step() {
        // WM 100, step 50: an event occurring at 120 that arrives at 160
        // is missed by the query at 150 but amended at 200.
        let mut e = Engine::new(on_off_ruleset(), WindowConfig::new(100, 50).unwrap());
        e.add_stamped_event(Stamped::arriving_at(
            Event::new("switch_on", [Term::sym("lamp")], 120),
            160,
        ))
        .unwrap();
        let rec = e.query(150).unwrap();
        assert!(rec.intervals_of("on", &[Term::sym("lamp")], &Term::truth()).is_none());
        let rec = e.query(200).unwrap();
        let ivs = rec.intervals_of("on", &[Term::sym("lamp")], &Term::truth()).unwrap();
        assert_eq!(ivs.as_slice(), &[crate::interval::Interval::open_from(120)]);
    }

    #[test]
    fn events_older_than_window_are_lost() {
        let mut e = Engine::new(on_off_ruleset(), WindowConfig::new(100, 100).unwrap());
        // Arrives far too late: occurrence 50, arrival 250. At query 200 it
        // is not visible (not arrived); at query 300 its occurrence is
        // outside (200, 300].
        e.add_stamped_event(Stamped::arriving_at(
            Event::new("switch_on", [Term::sym("lamp")], 50),
            250,
        ))
        .unwrap();
        assert!(e.query(200).unwrap().fluent_entries("on").is_empty());
        assert!(e.query(300).unwrap().fluent_entries("on").is_empty());
    }

    #[test]
    fn non_monotonic_queries_rejected() {
        let mut e = Engine::new(on_off_ruleset(), WindowConfig::new(100, 100).unwrap());
        e.query(100).unwrap();
        assert!(matches!(e.query(100), Err(RtecError::NonMonotonicQuery { .. })));
        assert!(matches!(e.query(50), Err(RtecError::NonMonotonicQuery { .. })));
    }

    #[test]
    fn undeclared_inputs_rejected() {
        let mut e = Engine::new(on_off_ruleset(), WindowConfig::new(100, 100).unwrap());
        assert!(e.add_event(Event::new("bogus", [Term::int(1)], 5)).is_err());
        assert!(e.add_event(Event::new("switch_on", [Term::int(1), Term::int(2)], 5)).is_err());
    }

    fn delay_increase_ruleset() -> RuleSet {
        // The paper's delayIncrease CE: two move events of the same bus less
        // than t=60 apart whose delay grows by more than d=300.
        let mut b = RuleSetBuilder::new();
        b.declare_event("move", 2); // (Bus, Delay) — simplified for the test
        let bus = b.var("Bus");
        let d1 = b.var("D1");
        let d2 = b.var("D2");
        let t1 = b.var("T1");
        let t2 = b.var("T2");
        b.derived_event(
            event_head("delayIncrease", [pat(bus)]),
            t2,
            [
                happens(event_pat("move", [pat(bus), pat(d1)]), t1),
                happens(event_pat("move", [pat(bus), pat(d2)]), t2),
                guard(cmp(NumExpr::sub(d2.into(), d1.into()), CmpOp::Gt, 300.0)),
                guard(cmp(NumExpr::sub(t2.into(), t1.into()), CmpOp::Gt, 0.0)),
                guard(cmp(NumExpr::sub(t2.into(), t1.into()), CmpOp::Lt, 60.0)),
            ],
        );
        b.build().unwrap()
    }

    #[test]
    fn derived_events_join_over_pairs() {
        let mut e = Engine::new(delay_increase_ruleset(), WindowConfig::new(1000, 1000).unwrap());
        e.add_event(Event::new("move", [Term::int(1), Term::int(100)], 10)).unwrap();
        e.add_event(Event::new("move", [Term::int(1), Term::int(500)], 40)).unwrap(); // +400 in 30s
        e.add_event(Event::new("move", [Term::int(2), Term::int(100)], 10)).unwrap();
        e.add_event(Event::new("move", [Term::int(2), Term::int(150)], 40)).unwrap(); // small increase
        e.add_event(Event::new("move", [Term::int(3), Term::int(0)], 10)).unwrap();
        e.add_event(Event::new("move", [Term::int(3), Term::int(900)], 400)).unwrap(); // too far apart
        let rec = e.query(1000).unwrap();
        let des = rec.events_of("delayIncrease");
        assert_eq!(des.len(), 1);
        assert_eq!(des[0].args, vec![Term::int(1)]);
        assert_eq!(des[0].time, 40);
    }

    #[test]
    fn derived_event_feeds_fluent() {
        // alarm fluent goes up when delayIncrease occurs.
        let mut b = RuleSetBuilder::new();
        b.declare_event("move", 2);
        let bus = b.var("Bus");
        let d1 = b.var("D1");
        let d2 = b.var("D2");
        let t1 = b.var("T1");
        let t2 = b.var("T2");
        b.derived_event(
            event_head("delayIncrease", [pat(bus)]),
            t2,
            [
                happens(event_pat("move", [pat(bus), pat(d1)]), t1),
                happens(event_pat("move", [pat(bus), pat(d2)]), t2),
                guard(cmp(NumExpr::sub(d2.into(), d1.into()), CmpOp::Gt, 300.0)),
                guard(cmp(NumExpr::sub(t2.into(), t1.into()), CmpOp::Gt, 0.0)),
            ],
        );
        let t3 = b.var("T3");
        b.initiated(
            fluent("alarm", [pat(bus)], val(true)),
            t3,
            [happens(event_pat("delayIncrease", [pat(bus)]), t3)],
        );
        let rs = b.build().unwrap();

        let mut e = Engine::new(rs, WindowConfig::new(1000, 1000).unwrap());
        e.add_event(Event::new("move", [Term::int(1), Term::int(0)], 10)).unwrap();
        e.add_event(Event::new("move", [Term::int(1), Term::int(400)], 30)).unwrap();
        let rec = e.query(1000).unwrap();
        assert!(rec.holds_at("alarm", &[Term::int(1)], &Term::truth(), 500));
    }

    #[test]
    fn input_fluent_conditions() {
        // congested location from gps observations co-timed with move events.
        let mut b = RuleSetBuilder::new();
        b.declare_event("move", 1);
        b.declare_input_fluent("gps", 2); // (Bus, Congestion)
        let bus = b.var("Bus");
        let t = b.var("T");
        b.initiated(
            fluent("busCong", [pat(bus)], val(true)),
            t,
            [
                happens(event_pat("move", [pat(bus)]), t),
                holds(fluent_pat("gps", [pat(bus), cnst(1i64)], val(true)), t),
            ],
        );
        let t2 = b.var("T2");
        b.terminated(
            fluent("busCong", [pat(bus)], val(true)),
            t2,
            [
                happens(event_pat("move", [pat(bus)]), t2),
                holds(fluent_pat("gps", [pat(bus), cnst(0i64)], val(true)), t2),
            ],
        );
        let rs = b.build().unwrap();
        let mut e = Engine::new(rs, WindowConfig::new(1000, 1000).unwrap());
        e.add_event(Event::new("move", [Term::int(7)], 10)).unwrap();
        e.add_obs(FluentObs::new("gps", [Term::int(7), Term::int(1)], true, 10)).unwrap();
        e.add_event(Event::new("move", [Term::int(7)], 50)).unwrap();
        e.add_obs(FluentObs::new("gps", [Term::int(7), Term::int(0)], true, 50)).unwrap();
        let rec = e.query(1000).unwrap();
        let ivs = rec.intervals_of("busCong", &[Term::int(7)], &Term::truth()).unwrap();
        assert_eq!(ivs.as_slice(), &[crate::interval::Interval::span(10, 50)]);
    }

    #[test]
    fn negation_as_failure() {
        let mut b = RuleSetBuilder::new();
        b.declare_event("ping", 1);
        b.declare_event("mute", 1);
        b.declare_event("unmute", 1);
        let x = b.var("X");
        let t = b.var("T");
        b.initiated(
            fluent("muted", [pat(x)], val(true)),
            t,
            [happens(event_pat("mute", [pat(x)]), t)],
        );
        let tu = b.var("TU");
        b.terminated(
            fluent("muted", [pat(x)], val(true)),
            tu,
            [happens(event_pat("unmute", [pat(x)]), tu)],
        );
        let t2 = b.var("T2");
        b.derived_event(
            event_head("audiblePing", [pat(x)]),
            t2,
            [
                happens(event_pat("ping", [pat(x)]), t2),
                not_holds(fluent_pat("muted", [pat(x)], val(true)), t2),
            ],
        );
        let rs = b.build().unwrap();
        let mut e = Engine::new(rs, WindowConfig::new(1000, 1000).unwrap());
        e.add_event(Event::new("mute", [Term::int(1)], 20)).unwrap();
        e.add_event(Event::new("ping", [Term::int(1)], 10)).unwrap(); // before mute -> audible
        e.add_event(Event::new("ping", [Term::int(1)], 30)).unwrap(); // muted
        e.add_event(Event::new("unmute", [Term::int(1)], 40)).unwrap();
        e.add_event(Event::new("ping", [Term::int(1)], 50)).unwrap(); // audible again
        let rec = e.query(1000).unwrap();
        let times: Vec<Time> = rec.events_of("audiblePing").iter().map(|e| e.time).collect();
        assert_eq!(times, vec![10, 50]);
    }

    #[test]
    fn static_fluent_relative_complement() {
        // disagreement(X) = a(X) \ b(X), domain from relation `ids`.
        let mut b = RuleSetBuilder::new();
        b.declare_event("startA", 1);
        b.declare_event("stopA", 1);
        b.declare_event("startB", 1);
        b.declare_event("stopB", 1);
        b.declare_relation("ids", 1);
        let x = b.var("X");
        for (fl, on, off) in [("a", "startA", "stopA"), ("b", "startB", "stopB")] {
            let t1 = b.var(&format!("Ti_{fl}"));
            b.initiated(
                fluent(fl, [pat(x)], val(true)),
                t1,
                [happens(event_pat(on, [pat(x)]), t1)],
            );
            let t2 = b.var(&format!("Tt_{fl}"));
            b.terminated(
                fluent(fl, [pat(x)], val(true)),
                t2,
                [happens(event_pat(off, [pat(x)]), t2)],
            );
        }
        b.static_fluent(
            fluent("disagreement", [pat(x)], val(true)),
            [relation("ids", [pat(x)])],
            IntervalExpr::RelComp(
                Box::new(IntervalExpr::Fluent(fluent_pat("a", [pat(x)], val(true)))),
                vec![IntervalExpr::Fluent(fluent_pat("b", [pat(x)], val(true)))],
            ),
        );
        let rs = b.build().unwrap();
        let mut e = Engine::new(rs, WindowConfig::new(1000, 1000).unwrap());
        e.set_relation("ids", vec![vec![Term::int(1)]]).unwrap();
        // Note: the window at query 1000 is (0, 1000], so time 0 would be
        // excluded; start at 5.
        e.add_event(Event::new("startA", [Term::int(1)], 5)).unwrap();
        e.add_event(Event::new("stopA", [Term::int(1)], 100)).unwrap();
        e.add_event(Event::new("startB", [Term::int(1)], 30)).unwrap();
        e.add_event(Event::new("stopB", [Term::int(1)], 60)).unwrap();
        let rec = e.query(1000).unwrap();
        let ivs = rec.intervals_of("disagreement", &[Term::int(1)], &Term::truth()).unwrap();
        assert_eq!(
            ivs.as_slice(),
            &[crate::interval::Interval::span(5, 30), crate::interval::Interval::span(60, 100)]
        );
    }

    #[test]
    fn builtins_and_relations() {
        let mut b = RuleSetBuilder::new();
        b.declare_event("at", 2); // (Bus, Pos)
        b.declare_relation("poi", 1); // points of interest
        b.declare_builtin("near", 2);
        let bus = b.var("Bus");
        let p = b.var("P");
        let q = b.var("Q");
        let t = b.var("T");
        b.derived_event(
            event_head("visit", [pat(bus), pat(q)]),
            t,
            [
                happens(event_pat("at", [pat(bus), pat(p)]), t),
                relation("poi", [pat(q)]),
                builtin("near", [ValRef::Var(p), ValRef::Var(q)]),
            ],
        );
        let rs = b.build().unwrap();
        let mut e = Engine::new(rs, WindowConfig::new(1000, 1000).unwrap());
        e.set_relation("poi", vec![vec![Term::int(100)], vec![Term::int(500)]]).unwrap();
        e.register_builtin("near", |args: &[Term]| match (args[0].as_f64(), args[1].as_f64()) {
            (Some(a), Some(b)) => (a - b).abs() <= 10.0,
            _ => false,
        })
        .unwrap();
        e.add_event(Event::new("at", [Term::int(1), Term::int(95)], 10)).unwrap();
        e.add_event(Event::new("at", [Term::int(1), Term::int(300)], 20)).unwrap();
        let rec = e.query(1000).unwrap();
        let vs = rec.events_of("visit");
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].args, vec![Term::int(1), Term::int(100)]);
    }

    #[test]
    fn missing_builtin_registration_is_an_error() {
        let mut b = RuleSetBuilder::new();
        b.declare_event("e", 1);
        b.declare_builtin("f", 1);
        let x = b.var("X");
        let t = b.var("T");
        b.derived_event(
            event_head("d", [pat(x)]),
            t,
            [happens(event_pat("e", [pat(x)]), t), builtin("f", [ValRef::Var(x)])],
        );
        let rs = b.build().unwrap();
        let mut e = Engine::new(rs, WindowConfig::new(100, 100).unwrap());
        assert!(matches!(e.query(100), Err(RtecError::UnknownBuiltin { .. })));
    }

    #[test]
    fn compound_guards_or_not_abs_mul() {
        // alarm(X) when |X·2| is in [4, 10] OR X == 0, and NOT X == 3.
        let mut b = RuleSetBuilder::new();
        b.declare_event("tick", 1);
        let x = b.var("X");
        let t = b.var("T");
        use crate::rule::{CmpOp, GuardExpr, NumExpr};
        let double_abs = NumExpr::Abs(Box::new(NumExpr::Mul(
            Box::new(NumExpr::Var(x)),
            Box::new(NumExpr::Const(2.0)),
        )));
        b.derived_event(
            event_head("alarm", [pat(x)]),
            t,
            [
                happens(event_pat("tick", [pat(x)]), t),
                guard(GuardExpr::Or(vec![
                    GuardExpr::And(vec![
                        cmp(double_abs.clone(), CmpOp::Ge, 4.0),
                        cmp(double_abs, CmpOp::Le, 10.0),
                    ]),
                    term_eq(x, Term::int(0)),
                ])),
                guard(GuardExpr::Not(Box::new(term_eq(x, Term::int(3))))),
            ],
        );
        let rs = b.build().unwrap();
        let mut e = Engine::new(rs, WindowConfig::new(100, 100).unwrap());
        for (t, v) in [(1, -4i64), (2, 0), (3, 1), (4, 3), (5, 5)] {
            e.add_event(Event::new("tick", [Term::int(v)], t)).unwrap();
        }
        let rec = e.query(100).unwrap();
        let fired: Vec<i64> =
            rec.events_of("alarm").iter().map(|e| e.args[0].as_i64().unwrap()).collect();
        // -4: |−8| not in [4,10]? |−8|=8 ∈ [4,10] ✓; 0: second disjunct ✓;
        // 1: |2| < 4 ✗; 3: |6| ∈ [4,10] but excluded by Not ✗; 5: |10| ✓.
        assert_eq!(fired, vec![-4, 0, 5]);
    }

    #[test]
    fn static_fluent_empty_when_leaves_empty() {
        let mut b = RuleSetBuilder::new();
        b.declare_event("e", 0);
        b.declare_relation("dom", 1);
        let t = b.var("T");
        b.initiated(fluent("base", [], val(true)), t, [happens(event_pat("e", []), t)]);
        let x = b.var("X");
        b.static_fluent(
            fluent("derived", [pat(x)], val(true)),
            [relation("dom", [pat(x)])],
            crate::rule::IntervalExpr::Intersect(vec![crate::rule::IntervalExpr::Fluent(
                fluent_pat("base", [], val(true)),
            )]),
        );
        let rs = b.build().unwrap();
        let mut e = Engine::new(rs, WindowConfig::new(100, 100).unwrap());
        e.set_relation("dom", vec![vec![Term::int(1)]]).unwrap();
        // No events at all: base never holds, derived entries absent.
        let rec = e.query(100).unwrap();
        assert!(rec.fluent_entries("derived").is_empty());
        assert!(rec.fluent_entries("base").is_empty());
    }

    #[test]
    fn initially_seeds_inertia() {
        let mut e = Engine::new(on_off_ruleset(), WindowConfig::new(100, 100).unwrap());
        e.set_initially("on", vec![Term::sym("boiler")], Term::truth()).unwrap();
        e.add_event(Event::new("switch_off", [Term::sym("boiler")], 40)).unwrap();
        let rec = e.query(100).unwrap();
        let ivs = rec.intervals_of("on", &[Term::sym("boiler")], &Term::truth()).unwrap();
        // Held from the window start until the switch_off.
        assert_eq!(ivs.as_slice(), &[crate::interval::Interval::span(0, 40)]);
        // And persists across further windows when re-initiated never.
        let rec = e.query(200).unwrap();
        assert!(rec.intervals_of("on", &[Term::sym("boiler")], &Term::truth()).is_none());
    }

    #[test]
    fn initially_validation() {
        let mut e = Engine::new(on_off_ruleset(), WindowConfig::new(100, 100).unwrap());
        assert!(matches!(
            e.set_initially("ghost", vec![], Term::truth()),
            Err(RtecError::Undeclared { .. })
        ));
        e.query(100).unwrap();
        assert!(e.set_initially("on", vec![Term::sym("x")], Term::truth()).is_err());
    }

    #[test]
    fn recognition_stats_count() {
        let mut e = Engine::new(on_off_ruleset(), WindowConfig::new(100, 100).unwrap());
        e.add_event(Event::new("switch_on", [Term::sym("a")], 10)).unwrap();
        e.add_event(Event::new("switch_off", [Term::sym("a")], 20)).unwrap();
        e.add_event(Event::new("switch_on", [Term::sym("a")], 30)).unwrap();
        e.add_event(Event::new("switch_on", [Term::sym("b")], 15)).unwrap();
        let rec = e.query(100).unwrap();
        let stats = rec.stats();
        assert_eq!(stats.derived_events, 0);
        assert_eq!(stats.fluent_groundings, 2);
        assert_eq!(stats.intervals, 3);
    }

    #[test]
    fn fluent_value_can_be_variable() {
        // Track levels: level(X)=V initiated by set(X, V).
        let mut b = RuleSetBuilder::new();
        b.declare_event("set", 2);
        let x = b.var("X");
        let v = b.var("V");
        let t = b.var("T");
        b.initiated(
            fluent("level", [pat(x)], pat(v)),
            t,
            [happens(event_pat("set", [pat(x), pat(v)]), t)],
        );
        let t2 = b.var("T2");
        let v2 = b.var("V2");
        // any new set terminates every previous value
        b.terminated(
            fluent("level", [pat(x)], pat(v)),
            t2,
            [
                happens(event_pat("set", [pat(x), pat(v2)]), t2),
                holds(fluent_pat("levelSeen", [pat(x)], pat(v)), t2),
            ],
        );
        // helper simple fluent marking values ever set (never terminated)
        let t3 = b.var("T3");
        let v3 = b.var("V3");
        b.initiated(
            fluent("levelSeen", [pat(x)], pat(v3)),
            t3,
            [happens(event_pat("set", [pat(x), pat(v3)]), t3)],
        );
        let rs = b.build().unwrap();
        let mut e = Engine::new(rs, WindowConfig::new(1000, 1000).unwrap());
        e.add_event(Event::new("set", [Term::int(1), Term::int(5)], 10)).unwrap();
        e.add_event(Event::new("set", [Term::int(1), Term::int(9)], 50)).unwrap();
        let rec = e.query(1000).unwrap();
        let l5 = rec.intervals_of("level", &[Term::int(1)], &Term::int(5)).unwrap();
        assert_eq!(l5.as_slice(), &[crate::interval::Interval::span(10, 50)]);
        let l9 = rec.intervals_of("level", &[Term::int(1)], &Term::int(9)).unwrap();
        assert_eq!(l9.as_slice(), &[crate::interval::Interval::open_from(50)]);
    }
}
