//! Patterns and variable bindings for rule bodies.
//!
//! Rule bodies match events and fluent groundings against patterns whose
//! arguments are constants, named variables, or the anonymous `_` wildcard
//! (a 'free' Prolog variable in the paper's notation). Matching threads a
//! [`Bindings`] environment through the body conditions, so shared variables
//! implement joins.

use crate::term::{Symbol, Term};

/// A rule-scoped variable, identified by its slot index in [`Bindings`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// Slot index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One argument position of a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgPat {
    /// Matches anything, binds nothing (Prolog `_`).
    Any,
    /// Matches only the given constant.
    Const(Term),
    /// Matches anything; binds (or checks against) the variable.
    Var(VarId),
}

impl ArgPat {
    /// The variable bound by this pattern position, if any.
    pub fn var(&self) -> Option<VarId> {
        match self {
            ArgPat::Var(v) => Some(*v),
            _ => None,
        }
    }
}

/// A pattern over event instances: `kind(args…)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventPattern {
    /// Event type to match.
    pub kind: Symbol,
    /// Argument patterns, one per event argument.
    pub args: Vec<ArgPat>,
}

/// A pattern over fluent groundings: `name(args…) = value`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FluentPattern {
    /// Fluent name to match.
    pub name: Symbol,
    /// Argument patterns.
    pub args: Vec<ArgPat>,
    /// Pattern over the fluent's value.
    pub value: ArgPat,
}

/// A variable environment: one optional term per variable slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bindings {
    slots: Vec<Option<Term>>,
}

impl Bindings {
    /// Fresh environment with `n` unbound slots.
    pub fn new(n: usize) -> Bindings {
        Bindings { slots: vec![None; n] }
    }

    /// The term bound to `v`, if any.
    pub fn get(&self, v: VarId) -> Option<&Term> {
        self.slots.get(v.index()).and_then(|s| s.as_ref())
    }

    /// Binds `v` to `t`; returns `false` (leaving the environment unchanged)
    /// when `v` is already bound to a different term.
    pub fn bind(&mut self, v: VarId, t: &Term) -> bool {
        match &self.slots[v.index()] {
            Some(existing) => existing == t,
            None => {
                self.slots[v.index()] = Some(t.clone());
                true
            }
        }
    }

    /// Unbinds `v` (used for backtracking).
    pub fn unbind(&mut self, v: VarId) {
        self.slots[v.index()] = None;
    }

    /// Whether `v` is bound.
    pub fn is_bound(&self, v: VarId) -> bool {
        self.get(v).is_some()
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when there are no slots at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Reuses this environment for a rule with `n` variables: every slot is
    /// cleared and the slot vector resized in place. Allocation only happens
    /// when `n` exceeds the largest size ever requested, which is what lets
    /// the compiled evaluation path share one environment across all rules
    /// of a window without per-rule allocations.
    pub fn reset(&mut self, n: usize) {
        self.slots.clear();
        self.slots.resize(n, None);
    }

    /// Capacity of the underlying slot vector (for allocation accounting).
    pub fn capacity(&self) -> usize {
        self.slots.capacity()
    }
}

/// Matches one argument pattern against a term, updating `b`.
/// Returns the variable that was *newly* bound (for backtracking), wrapped in
/// `Ok`; `Err(())` when the match fails.
fn match_arg(pat: &ArgPat, term: &Term, b: &mut Bindings) -> Result<Option<VarId>, ()> {
    match pat {
        ArgPat::Any => Ok(None),
        ArgPat::Const(c) => {
            if c == term {
                Ok(None)
            } else {
                Err(())
            }
        }
        ArgPat::Var(v) => {
            if b.is_bound(*v) {
                if b.get(*v) == Some(term) {
                    Ok(None)
                } else {
                    Err(())
                }
            } else if b.bind(*v, term) {
                Ok(Some(*v))
            } else {
                Err(())
            }
        }
    }
}

/// Matches a slice of argument patterns against ground terms.
///
/// On success, returns the list of variables newly bound by this match (the
/// caller unbinds them when backtracking). On failure the environment is
/// restored and `None` is returned.
pub fn match_args(pats: &[ArgPat], terms: &[Term], b: &mut Bindings) -> Option<Vec<VarId>> {
    if pats.len() != terms.len() {
        return None;
    }
    let mut bound = Vec::new();
    for (p, t) in pats.iter().zip(terms) {
        match match_arg(p, t, b) {
            Ok(Some(v)) => bound.push(v),
            Ok(None) => {}
            Err(()) => {
                for v in bound {
                    b.unbind(v);
                }
                return None;
            }
        }
    }
    Some(bound)
}

/// Undoes a set of bindings returned by [`match_args`].
pub fn unbind_all(vars: &[VarId], b: &mut Bindings) {
    for v in vars {
        b.unbind(*v);
    }
}

/// Allocation-free variant of [`match_args`]: newly bound variables are
/// pushed onto the caller's `trail` instead of a fresh `Vec`. On success the
/// trail has grown by the number of new bindings; on failure both the
/// environment and the trail are restored to their state at entry and
/// `false` is returned. Undo a successful match with [`undo_trail`] using
/// the trail length recorded before the call.
pub fn match_args_trail(
    pats: &[ArgPat],
    terms: &[Term],
    b: &mut Bindings,
    trail: &mut Vec<VarId>,
) -> bool {
    if pats.len() != terms.len() {
        return false;
    }
    let mark = trail.len();
    for (p, t) in pats.iter().zip(terms) {
        match match_arg(p, t, b) {
            Ok(Some(v)) => trail.push(v),
            Ok(None) => {}
            Err(()) => {
                undo_trail(trail, mark, b);
                return false;
            }
        }
    }
    true
}

/// Unbinds every variable pushed onto `trail` past `mark` (in reverse push
/// order) and truncates the trail back to `mark`.
pub fn undo_trail(trail: &mut Vec<VarId>, mark: usize, b: &mut Bindings) {
    while trail.len() > mark {
        let v = trail.pop().expect("trail length checked");
        b.unbind(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn binds_fresh_variables() {
        let mut b = Bindings::new(2);
        let pats = [ArgPat::Var(v(0)), ArgPat::Const(Term::int(7))];
        let terms = [Term::sym("bus1"), Term::int(7)];
        let bound = match_args(&pats, &terms, &mut b).expect("should match");
        assert_eq!(bound, vec![v(0)]);
        assert_eq!(b.get(v(0)), Some(&Term::sym("bus1")));
    }

    #[test]
    fn rejects_constant_mismatch() {
        let mut b = Bindings::new(1);
        let pats = [ArgPat::Const(Term::int(7))];
        assert!(match_args(&pats, &[Term::int(8)], &mut b).is_none());
    }

    #[test]
    fn join_on_shared_variable() {
        let mut b = Bindings::new(1);
        assert!(match_args(&[ArgPat::Var(v(0))], &[Term::sym("a")], &mut b).is_some());
        // Second match with the same variable only succeeds on the same term.
        assert!(match_args(&[ArgPat::Var(v(0))], &[Term::sym("b")], &mut b).is_none());
        assert!(match_args(&[ArgPat::Var(v(0))], &[Term::sym("a")], &mut b).is_some());
    }

    #[test]
    fn failure_restores_environment() {
        let mut b = Bindings::new(2);
        let pats = [ArgPat::Var(v(0)), ArgPat::Const(Term::int(1))];
        let terms = [Term::sym("x"), Term::int(2)];
        assert!(match_args(&pats, &terms, &mut b).is_none());
        assert!(!b.is_bound(v(0)), "partial binding must be rolled back");
    }

    #[test]
    fn repeated_variable_within_one_pattern() {
        let mut b = Bindings::new(1);
        let pats = [ArgPat::Var(v(0)), ArgPat::Var(v(0))];
        assert!(match_args(&pats, &[Term::int(3), Term::int(3)], &mut b).is_some());
        let mut b2 = Bindings::new(1);
        assert!(match_args(&pats, &[Term::int(3), Term::int(4)], &mut b2).is_none());
        assert!(!b2.is_bound(v(0)));
    }

    #[test]
    fn arity_mismatch_fails() {
        let mut b = Bindings::new(0);
        assert!(match_args(&[ArgPat::Any], &[], &mut b).is_none());
    }

    #[test]
    fn unbind_all_rolls_back() {
        let mut b = Bindings::new(2);
        let bound = match_args(
            &[ArgPat::Var(v(0)), ArgPat::Var(v(1))],
            &[Term::int(1), Term::int(2)],
            &mut b,
        )
        .unwrap();
        unbind_all(&bound, &mut b);
        assert!(!b.is_bound(v(0)) && !b.is_bound(v(1)));
    }
}
