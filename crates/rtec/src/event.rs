//! Events and input fluent observations.
//!
//! Two kinds of input arrive at the engine (formalisation (1) of the paper):
//!
//! * **events** — `happensAt(move(Bus, Line, Operator, Delay), T)` facts;
//! * **input fluent observations** — `holdsAt(gps(Bus, Lon, Lat, Dir, Cong) =
//!   true, T)` facts, i.e. point samples of fluents whose definition lives
//!   outside the rule set.
//!
//! Both carry an *occurrence* time; a [`Stamped`] wrapper adds the *arrival*
//! time so that the windowing machinery can reproduce the delayed-SDE
//! behaviour of Figure 2.

use crate::term::{Symbol, Term};
use crate::time::Time;
use std::fmt;

/// An event instance: `happensAt(kind(args…), time)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Event {
    /// Event type symbol (e.g. `move`, `traffic`).
    pub kind: Symbol,
    /// Ground argument terms.
    pub args: Vec<Term>,
    /// Occurrence time.
    pub time: Time,
}

impl Event {
    /// Builds an event instance.
    pub fn new<K, I, T>(kind: K, args: I, time: Time) -> Event
    where
        K: Into<Symbol>,
        I: IntoIterator<Item = T>,
        T: Into<Term>,
    {
        Event { kind: kind.into(), args: args.into_iter().map(Into::into).collect(), time }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "happensAt({}(", self.kind)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "), {})", self.time)
    }
}

/// A point observation of an input fluent:
/// `holdsAt(name(args…) = value, time)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FluentObs {
    /// Fluent name symbol (e.g. `gps`).
    pub name: Symbol,
    /// Ground argument terms.
    pub args: Vec<Term>,
    /// The observed value.
    pub value: Term,
    /// Observation time.
    pub time: Time,
}

impl FluentObs {
    /// Builds an input fluent observation.
    pub fn new<K, I, T, V>(name: K, args: I, value: V, time: Time) -> FluentObs
    where
        K: Into<Symbol>,
        I: IntoIterator<Item = T>,
        T: Into<Term>,
        V: Into<Term>,
    {
        FluentObs {
            name: name.into(),
            args: args.into_iter().map(Into::into).collect(),
            value: value.into(),
            time,
        }
    }
}

impl fmt::Display for FluentObs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "holdsAt({}(", self.name)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ") = {}, {})", self.value, self.time)
    }
}

/// Adds an arrival time to an input item. SDEs travelling through mediators
/// may arrive later than they occurred; the engine only sees an item at
/// queries past its arrival time.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Stamped<T> {
    /// The wrapped item.
    pub item: T,
    /// When the item became visible to the engine.
    pub arrival: Time,
}

impl<T> Stamped<T> {
    /// Wraps `item` with an explicit arrival time.
    pub fn arriving_at(item: T, arrival: Time) -> Stamped<T> {
        Stamped { item, arrival }
    }
}

impl Stamped<Event> {
    /// Wraps an event that arrives exactly when it occurs.
    pub fn punctual(item: Event) -> Stamped<Event> {
        let arrival = item.time;
        Stamped { item, arrival }
    }
}

impl Stamped<FluentObs> {
    /// Wraps an observation that arrives exactly when it occurs.
    pub fn punctual(item: FluentObs) -> Stamped<FluentObs> {
        let arrival = item.time;
        Stamped { item, arrival }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_construction_and_display() {
        let e = Event::new(
            "move",
            [Term::int(33009), Term::sym("r10"), Term::sym("o7"), Term::int(400)],
            99,
        );
        assert_eq!(e.kind, Symbol::new("move"));
        assert_eq!(e.args.len(), 4);
        assert_eq!(e.to_string(), "happensAt(move(33009, r10, o7, 400), 99)");
    }

    #[test]
    fn fluent_obs_display() {
        let o =
            FluentObs::new("gps", [Term::int(1), Term::float(-6.26), Term::float(53.35)], true, 7);
        assert_eq!(o.to_string(), "holdsAt(gps(1, -6.26, 53.35) = true, 7)");
    }

    #[test]
    fn punctual_stamping() {
        let e = Event::new("move", [Term::int(1)], 50);
        let s = Stamped::<Event>::punctual(e.clone());
        assert_eq!(s.arrival, 50);
        let late = Stamped::arriving_at(e, 80);
        assert_eq!(late.arrival, 80);
        assert_eq!(late.item.time, 50);
    }
}
