//! # insight-rtec — a run-time Event Calculus engine
//!
//! A from-scratch Rust implementation of RTEC, the *Event Calculus for
//! Run-Time reasoning* (Artikis, Sergot, Paliouras; DEBS 2012), as used as the
//! complex event processing component of the EDBT 2014 paper *"Heterogeneous
//! Stream Processing and Crowdsourcing for Urban Traffic Management"*.
//!
//! The engine recognises *complex events* (CEs) over streams of time-stamped
//! *simple derived events* (SDEs). It provides the Event Calculus predicates
//! of the paper's Table 1:
//!
//! | Predicate | Meaning | Here |
//! |---|---|---|
//! | `happensAt(E, T)` | event `E` occurs at time `T` | input events + [`rule::EventRule`] |
//! | `holdsAt(F=V, T)` | fluent `F` has value `V` at `T` | point queries on interval lists |
//! | `holdsFor(F=V, I)` | maximal intervals where `F=V` holds | [`interval::IntervalList`] |
//! | `initiatedAt` / `terminatedAt` | effects of events on simple fluents | [`rule::SimpleFluentRule`] |
//! | `union_all`, `intersect_all`, `relative_complement_all` | interval algebra for statically-determined fluents | [`interval`] + [`rule::IntervalExpr`] |
//!
//! ## Windowing
//!
//! Recognition runs at query times `Q1, Q2, …` separated by a *step*; at each
//! query only SDEs inside the *working memory* `(Qi − WM, Qi]` that have
//! **arrived** by `Qi` are considered (Section 4.2 / Figure 2 of the paper).
//! Choosing `WM > step` lets SDEs that occurred before the previous query but
//! arrived late still be amended into the recognition result; SDEs older than
//! the window are irrevocably discarded.
//!
//! ## Quick example
//!
//! ```
//! use insight_rtec::prelude::*;
//!
//! // A fluent `on(Device)=true` initiated by `switch_on(Device)` and
//! // terminated by `switch_off(Device)`.
//! let mut b = RuleSetBuilder::new();
//! b.declare_event("switch_on", 1);
//! b.declare_event("switch_off", 1);
//! let dev = b.var("Dev");
//! let t1 = b.var("T1");
//! b.initiated(
//!     fluent("on", [pat(dev)], val(Term::truth())),
//!     t1,
//!     [happens(event_pat("switch_on", [pat(dev)]), t1)],
//! );
//! let t2 = b.var("T2");
//! b.terminated(
//!     fluent("on", [pat(dev)], val(Term::truth())),
//!     t2,
//!     [happens(event_pat("switch_off", [pat(dev)]), t2)],
//! );
//! let rs = b.build().unwrap();
//!
//! let mut engine = Engine::new(rs, WindowConfig::new(100, 100).unwrap());
//! engine.add_event(Event::new("switch_on", [Term::sym("lamp")], 10));
//! engine.add_event(Event::new("switch_off", [Term::sym("lamp")], 40));
//! let rec = engine.query(100).unwrap();
//! let ivs = rec.intervals_of("on", &[Term::sym("lamp")], &Term::truth()).unwrap();
//! assert_eq!(ivs.iter().collect::<Vec<_>>(), vec![&Interval::span(10, 40)]);
//! ```

#![warn(missing_docs)]

pub mod compile;
pub mod dsl;
pub mod engine;
pub mod error;
pub mod event;
pub mod interval;
pub mod pattern;
pub mod pool;
pub mod pretty;
pub mod rule;
mod slotstate;
pub mod stratify;
pub mod term;
pub mod time;
pub mod window;

/// Convenience re-exports for typical engine users.
pub mod prelude {
    pub use crate::compile::CompiledPlan;
    pub use crate::dsl::{
        any, builtin, cmp, cnst, event_head, event_pat, fluent, fluent_pat, guard, happens, holds,
        not_holds, pat, relation, term_eq, term_ne, val, RuleSetBuilder,
    };
    pub use crate::engine::{Engine, Recognition};
    pub use crate::error::RtecError;
    pub use crate::event::{Event, FluentObs, Stamped};
    pub use crate::interval::{Interval, IntervalList};
    pub use crate::rule::{GuardExpr, IntervalExpr, NumExpr};
    pub use crate::term::{Symbol, Term};
    pub use crate::time::Time;
    pub use crate::window::WindowConfig;
}
