//! The rule language: simple fluents, statically-determined fluents and
//! derived (complex) events.
//!
//! RTEC rules are logic-programming clauses; this module represents them as a
//! typed AST that the engine interprets. Three rule forms exist, mirroring
//! Section 4.1 of the paper:
//!
//! * [`SimpleFluentRule`] — `initiatedAt(F=V, T) ← body` and
//!   `terminatedAt(F=V, T) ← body`; the engine applies the law of inertia to
//!   turn initiation/termination points into maximal intervals.
//! * [`StaticRule`] — `holdsFor(F=V, I) ← interval expression` built from
//!   `union_all` / `intersect_all` / `relative_complement_all` over the
//!   intervals of other fluents.
//! * [`EventRule`] — `happensAt(E, T) ← body`, instantaneous complex events
//!   such as the paper's `delayIncrease`.
//!
//! Bodies are conjunctions of [`BodyAtom`]s evaluated left to right with
//! backtracking; shared variables express joins exactly as in the Prolog
//! original.

use crate::pattern::{ArgPat, EventPattern, FluentPattern, VarId};
use crate::term::{Symbol, Term};

/// A value reference inside guards and builtin calls: a variable or constant.
#[derive(Debug, Clone, PartialEq)]
pub enum ValRef {
    /// A rule variable (must be bound when the guard/builtin is evaluated).
    Var(VarId),
    /// A constant term.
    Const(Term),
}

impl From<VarId> for ValRef {
    fn from(v: VarId) -> ValRef {
        ValRef::Var(v)
    }
}
impl From<Term> for ValRef {
    fn from(t: Term) -> ValRef {
        ValRef::Const(t)
    }
}

/// A numeric expression over bound variables.
#[derive(Debug, Clone, PartialEq)]
pub enum NumExpr {
    /// A variable holding an `Int` or `Float` term.
    Var(VarId),
    /// A numeric literal.
    Const(f64),
    /// Sum of two expressions.
    Add(Box<NumExpr>, Box<NumExpr>),
    /// Difference of two expressions.
    Sub(Box<NumExpr>, Box<NumExpr>),
    /// Product of two expressions.
    Mul(Box<NumExpr>, Box<NumExpr>),
    /// Absolute value.
    Abs(Box<NumExpr>),
}

impl NumExpr {
    /// Convenience: `lhs - rhs` (associated constructor, not `std::ops::Sub`
    /// — these build AST nodes, they don't compute).
    #[allow(clippy::should_implement_trait)]
    pub fn sub(lhs: NumExpr, rhs: NumExpr) -> NumExpr {
        NumExpr::Sub(Box::new(lhs), Box::new(rhs))
    }

    /// Convenience: `lhs + rhs` (associated constructor, not `std::ops::Add`).
    #[allow(clippy::should_implement_trait)]
    pub fn add(lhs: NumExpr, rhs: NumExpr) -> NumExpr {
        NumExpr::Add(Box::new(lhs), Box::new(rhs))
    }

    /// Variables mentioned by the expression (for bound-ness checking).
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            NumExpr::Var(v) => out.push(*v),
            NumExpr::Const(_) => {}
            NumExpr::Add(a, b) | NumExpr::Sub(a, b) | NumExpr::Mul(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            NumExpr::Abs(a) => a.collect_vars(out),
        }
    }
}

impl From<VarId> for NumExpr {
    fn from(v: VarId) -> NumExpr {
        NumExpr::Var(v)
    }
}
impl From<f64> for NumExpr {
    fn from(v: f64) -> NumExpr {
        NumExpr::Const(v)
    }
}
impl From<i64> for NumExpr {
    fn from(v: i64) -> NumExpr {
        NumExpr::Const(v as f64)
    }
}

/// Comparison operators for numeric guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==` (numeric, exact)
    Eq,
    /// `!=` (numeric, exact)
    Ne,
}

impl CmpOp {
    /// Applies the operator.
    pub fn apply(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }
}

/// A boolean guard over bound variables (Prolog's arithmetic/equality
/// conditions, e.g. `Delay − Delay' > d`, `BusVal ≠ CrowdVal`).
#[derive(Debug, Clone, PartialEq)]
pub enum GuardExpr {
    /// Numeric comparison.
    Cmp {
        /// Left operand.
        lhs: NumExpr,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        rhs: NumExpr,
    },
    /// Term equality (works for symbols, bools, …).
    TermEq(ValRef, ValRef),
    /// Term inequality.
    TermNe(ValRef, ValRef),
    /// Conjunction.
    And(Vec<GuardExpr>),
    /// Disjunction.
    Or(Vec<GuardExpr>),
    /// Negation.
    Not(Box<GuardExpr>),
}

impl GuardExpr {
    /// Variables mentioned by the guard.
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            GuardExpr::Cmp { lhs, rhs, .. } => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
            GuardExpr::TermEq(a, b) | GuardExpr::TermNe(a, b) => {
                for r in [a, b] {
                    if let ValRef::Var(v) = r {
                        out.push(*v);
                    }
                }
            }
            GuardExpr::And(gs) | GuardExpr::Or(gs) => {
                for g in gs {
                    g.collect_vars(out);
                }
            }
            GuardExpr::Not(g) => g.collect_vars(out),
        }
    }
}

/// One condition of a rule body.
#[derive(Debug, Clone, PartialEq)]
pub enum BodyAtom {
    /// `happensAt(pattern, T)` — matches input or derived events.
    Happens {
        /// Event pattern.
        pat: EventPattern,
        /// Time variable (bound to the event's occurrence time, or filtering
        /// when already bound).
        time: VarId,
    },
    /// `holdsAt(pattern = value, T)` or `not holdsAt(…)`.
    Holds {
        /// Fluent pattern.
        pat: FluentPattern,
        /// Time variable; must be bound by an earlier condition.
        time: VarId,
        /// Negation-as-failure when `true`.
        negated: bool,
    },
    /// A finite relation lookup/join, e.g. the table of SCATS intersection
    /// coordinates. Tuples are provided to the engine at run time.
    Relation {
        /// Relation name.
        name: Symbol,
        /// Argument patterns (unbound variables enumerate the table).
        args: Vec<ArgPat>,
    },
    /// A registered boolean builtin over fully bound arguments, e.g. the
    /// paper's atemporal `close/4` spatial predicate.
    Builtin {
        /// Builtin name.
        name: Symbol,
        /// Arguments (all must be bound at evaluation time).
        args: Vec<ValRef>,
    },
    /// An arithmetic / term-equality guard.
    Guard(GuardExpr),
}

/// Head template of a fluent rule: `name(args…) = value`.
#[derive(Debug, Clone, PartialEq)]
pub struct FluentTemplate {
    /// Fluent name.
    pub name: Symbol,
    /// Argument templates (`Var` or `Const`; `Any` is rejected at build).
    pub args: Vec<ArgPat>,
    /// Value template.
    pub value: ArgPat,
}

/// Head template of an event rule: `kind(args…)`.
#[derive(Debug, Clone, PartialEq)]
pub struct EventTemplate {
    /// Event kind.
    pub kind: Symbol,
    /// Argument templates.
    pub args: Vec<ArgPat>,
}

/// Whether a simple-fluent rule initiates or terminates its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SfKind {
    /// `initiatedAt(F=V, T) ← body`.
    Initiated,
    /// `terminatedAt(F=V, T) ← body`.
    Terminated,
}

/// An initiation/termination rule for a simple fluent.
#[derive(Debug, Clone)]
pub struct SimpleFluentRule {
    /// Initiation or termination.
    pub kind: SfKind,
    /// The fluent-value pair this rule affects.
    pub head: FluentTemplate,
    /// The head time variable (bound by a `Happens` condition in the body).
    pub time: VarId,
    /// Body conditions, evaluated left to right.
    pub body: Vec<BodyAtom>,
    /// Variable environment size.
    pub n_vars: usize,
    /// Human-readable label for error messages.
    pub label: String,
}

/// A derived (complex) event rule: `happensAt(head, T) ← body`.
#[derive(Debug, Clone)]
pub struct EventRule {
    /// The derived event template.
    pub head: EventTemplate,
    /// Head time variable.
    pub time: VarId,
    /// Body conditions.
    pub body: Vec<BodyAtom>,
    /// Variable environment size.
    pub n_vars: usize,
    /// Human-readable label.
    pub label: String,
}

/// An interval expression defining a statically-determined fluent.
#[derive(Debug, Clone, PartialEq)]
pub enum IntervalExpr {
    /// `holdsFor` of every grounding matching the (possibly partially bound)
    /// pattern; multiple matching groundings are unioned.
    Fluent(FluentPattern),
    /// `union_all` over sub-expressions.
    Union(Vec<IntervalExpr>),
    /// `intersect_all` over sub-expressions.
    Intersect(Vec<IntervalExpr>),
    /// `relative_complement_all(base, [subtrahends…])`.
    RelComp(Box<IntervalExpr>, Vec<IntervalExpr>),
}

impl IntervalExpr {
    /// Fluent names referenced by the expression (for stratification).
    pub fn collect_fluents(&self, out: &mut Vec<Symbol>) {
        match self {
            IntervalExpr::Fluent(p) => out.push(p.name),
            IntervalExpr::Union(es) | IntervalExpr::Intersect(es) => {
                for e in es {
                    e.collect_fluents(out);
                }
            }
            IntervalExpr::RelComp(base, subs) => {
                base.collect_fluents(out);
                for e in subs {
                    e.collect_fluents(out);
                }
            }
        }
    }

    /// Variables mentioned by the expression's patterns.
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            IntervalExpr::Fluent(p) => {
                for a in p.args.iter().chain(std::iter::once(&p.value)) {
                    if let ArgPat::Var(v) = a {
                        out.push(*v);
                    }
                }
            }
            IntervalExpr::Union(es) | IntervalExpr::Intersect(es) => {
                for e in es {
                    e.collect_vars(out);
                }
            }
            IntervalExpr::RelComp(base, subs) => {
                base.collect_vars(out);
                for e in subs {
                    e.collect_vars(out);
                }
            }
        }
    }
}

/// A statically-determined fluent definition.
///
/// The `domain` conditions enumerate the groundings of the head (e.g. the
/// SCATS intersection locations for `sourceDisagreement(LonInt, LatInt)`);
/// for each grounding the interval expression is evaluated.
#[derive(Debug, Clone)]
pub struct StaticRule {
    /// The fluent-value pair being defined.
    pub head: FluentTemplate,
    /// Domain conditions (relations/guards) enumerating head groundings.
    pub domain: Vec<BodyAtom>,
    /// The defining interval expression.
    pub expr: IntervalExpr,
    /// Variable environment size.
    pub n_vars: usize,
    /// Human-readable label.
    pub label: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_ops() {
        assert!(CmpOp::Lt.apply(1.0, 2.0));
        assert!(CmpOp::Le.apply(2.0, 2.0));
        assert!(CmpOp::Gt.apply(3.0, 2.0));
        assert!(CmpOp::Ge.apply(2.0, 2.0));
        assert!(CmpOp::Eq.apply(2.0, 2.0));
        assert!(CmpOp::Ne.apply(2.0, 3.0));
    }

    #[test]
    fn num_expr_collects_vars() {
        let e =
            NumExpr::sub(NumExpr::Var(VarId(3)), NumExpr::Abs(Box::new(NumExpr::Var(VarId(5)))));
        let mut vs = Vec::new();
        e.collect_vars(&mut vs);
        assert_eq!(vs, vec![VarId(3), VarId(5)]);
    }

    #[test]
    fn guard_collects_vars() {
        let g = GuardExpr::And(vec![
            GuardExpr::TermNe(ValRef::Var(VarId(1)), ValRef::Const(Term::sym("x"))),
            GuardExpr::Cmp { lhs: NumExpr::Var(VarId(2)), op: CmpOp::Lt, rhs: NumExpr::Const(5.0) },
        ]);
        let mut vs = Vec::new();
        g.collect_vars(&mut vs);
        assert_eq!(vs, vec![VarId(1), VarId(2)]);
    }

    #[test]
    fn interval_expr_collects_fluents() {
        let f = |name: &str| {
            IntervalExpr::Fluent(FluentPattern {
                name: Symbol::new(name),
                args: vec![ArgPat::Var(VarId(0))],
                value: ArgPat::Const(Term::truth()),
            })
        };
        let e = IntervalExpr::RelComp(Box::new(f("busCongestion")), vec![f("scatsIntCongestion")]);
        let mut fs = Vec::new();
        e.collect_fluents(&mut fs);
        assert_eq!(fs, vec![Symbol::new("busCongestion"), Symbol::new("scatsIntCongestion")]);
        let mut vs = Vec::new();
        e.collect_vars(&mut vs);
        assert_eq!(vs, vec![VarId(0), VarId(0)]);
    }
}
