//! Retained slot-indexed window state for the compiled engine.
//!
//! The interpreter (and the first compiled engine) rebuilt its per-window
//! caches from scratch every query: four fresh `HashMap`s keyed by symbols
//! and `Vec<Term>` groundings, fresh SDE-buffer indexes, and a fresh
//! `Arc<Vec<Interval>>` per fluent grounding. This module replaces all of
//! that — for the compiled path only — with state that is *retained and
//! compacted* across queries:
//!
//! - per-stratum grounding tables ([`SfTable`], [`EvTable`], [`StTable`])
//!   whose entries are generation-stamped instead of being moved between an
//!   "old" and a "new" map. A window cycle bumps the generation, touches the
//!   groundings the delta reaches, and leaves everything else in place.
//!   Grounding keys live in per-table `Term` pools (no per-key `Vec`), and a
//!   sorted order index keeps iteration deterministic — the same
//!   sorted-by-key order the interpreter gets from its `BTreeSet`, so both
//!   engines emit identical output order regardless of table history.
//! - double-buffered derivation sides in [`EvTable`]: survivors are copied
//!   from the previous side's pool into the next side's pool (compaction),
//!   then the sides swap. Capacity is reused; steady state allocates
//!   nothing.
//! - a per-table [`IntervalArena`] for transient interval algebra, so
//!   interval construction and comparison never allocate; an owned
//!   [`IntervalList`] is materialised only when a grounding's output
//!   actually changed (and even then the previous `Arc` is reused when the
//!   contents come out equal).
//!
//! Everything here is *derived state*: like the compiled plan, it is
//! excluded from checkpoint snapshots and rebuilt on restore (the engine
//! re-seeds the previous-window intervals from its canonical caches and
//! marks itself dirty, so a restored engine answers queries exactly like a
//! cold one).
//!
//! [`CycleState::begin_caps`]/[`CycleState::end_caps`] implement the
//! allocation accounting: every retained buffer's capacity is snapshotted
//! around a window cycle and each buffer that grew counts as one
//! allocation. After warm-up a steady-state cycle reports **zero** — the
//! regression test in `tests/zero_alloc.rs` pins exactly that.

use crate::interval::{Interval, IntervalArena, IntervalList, IvRange};
use crate::pattern::VarId;
use crate::term::Term;
use crate::time::Time;

/// One cached initiation (`init == true`) or termination point of a simple
/// fluent grounding, with the evidence span of the rule body that produced
/// it (the same validity contract as the interpreter's `CachedPoint`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CPoint {
    pub init: bool,
    pub time: Time,
    pub span_min: Time,
    pub span_max: Time,
}

/// One cached derivation of a derived event: head args as a range into the
/// owning side's term pool, plus occurrence time and evidence span.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CDeriv {
    pub off: u32,
    pub len: u16,
    pub time: Time,
    pub span_min: Time,
    pub span_max: Time,
}

/// One materialised (deduplicated, in-window) derived event, referencing
/// args in the owning side's term pool. Sorted by `(time, args)`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MatRef {
    pub time: Time,
    pub off: u32,
    pub len: u16,
}

/// Compares a pooled grounding key against a probe `(args, value)` — the
/// same lexicographic `(Vec<Term>, Term)` order the interpreter's `BTreeSet`
/// universe uses.
fn key_cmp(
    pool: &[Term],
    off: u32,
    len: u16,
    val: &Term,
    args: &[Term],
    value: &Term,
) -> std::cmp::Ordering {
    let key = &pool[off as usize..off as usize + len as usize];
    key.cmp(args).then_with(|| val.cmp(value))
}

// ---------------------------------------------------------------------------
// Simple-fluent table
// ---------------------------------------------------------------------------

/// One retained simple-fluent grounding: cached points and previous-window
/// output, stamped with the generation they reflect.
pub(crate) struct SfGrounding {
    pub key_off: u32,
    pub key_len: u16,
    pub value: Term,
    /// Generation whose `pts`/`out` this grounding holds; participates in
    /// generation `g` exactly when `data_gen + 1 == g` (the interpreter's
    /// "key present in last window's caches").
    pub data_gen: u64,
    /// Generation last touched by fresh solve output.
    pub touch_gen: u64,
    /// Cached initiation/termination points (with evidence spans).
    pub pts: Vec<CPoint>,
    /// Previous-window output intervals (the differential reference and the
    /// `Arc` reused when this window's output is unchanged).
    pub out: IntervalList,
}

/// Retained state of one simple-fluent stratum.
#[derive(Default)]
pub(crate) struct SfTable {
    pub gs: Vec<SfGrounding>,
    /// Grounding ids sorted by `(args, value)`.
    pub order: Vec<u32>,
    /// Concatenated grounding key args.
    pub pool: Vec<Term>,
    /// Fresh points collected during this window's solves, by grounding id.
    pub fresh: Vec<(u32, CPoint)>,
    // Per-window scratch, retained across cycles.
    pub set_old: Vec<(Time, bool)>,
    pub set_new: Vec<(Time, bool)>,
    pub inits: Vec<Time>,
    pub terms: Vec<Time>,
    pub ivs: Vec<Interval>,
    pub key_buf: Vec<Term>,
    pub arena: IntervalArena,
}

impl SfTable {
    /// Grounding id for `(args, value)`, inserting a new (empty) grounding
    /// when unseen. Ids are stable for the table's lifetime; the sorted
    /// order index is maintained incrementally.
    pub fn lookup_or_insert(&mut self, args: &[Term], value: &Term) -> u32 {
        let pos = self.order.partition_point(|&gid| {
            let g = &self.gs[gid as usize];
            key_cmp(&self.pool, g.key_off, g.key_len, &g.value, args, value).is_lt()
        });
        if let Some(&gid) = self.order.get(pos) {
            let g = &self.gs[gid as usize];
            if key_cmp(&self.pool, g.key_off, g.key_len, &g.value, args, value).is_eq() {
                return gid;
            }
        }
        let gid = self.gs.len() as u32;
        let key_off = self.pool.len() as u32;
        self.pool.extend(args.iter().cloned());
        self.gs.push(SfGrounding {
            key_off,
            key_len: args.len() as u16,
            value: value.clone(),
            data_gen: 0,
            touch_gen: 0,
            pts: Vec::new(),
            out: IntervalList::empty(),
        });
        self.order.insert(pos, gid);
        gid
    }

    /// Key args of a grounding.
    pub fn key_args(&self, g: &SfGrounding) -> &[Term] {
        &self.pool[g.key_off as usize..g.key_off as usize + g.key_len as usize]
    }

    /// Drops groundings that have been stale for at least two generations
    /// once they outnumber the live ones — keeps the table (and its key
    /// pool) proportional to the active grounding universe under churn.
    pub fn maybe_compact(&mut self, gen: u64) {
        let stale = self.gs.iter().filter(|g| g.data_gen + 1 < gen && g.touch_gen < gen).count();
        if stale <= self.gs.len() / 2 || stale < 16 {
            return;
        }
        let mut gs = std::mem::take(&mut self.gs);
        let mut pool = std::mem::take(&mut self.pool);
        self.order.clear();
        let mut kept: Vec<SfGrounding> = Vec::with_capacity(gs.len() - stale);
        let mut new_pool: Vec<Term> = Vec::with_capacity(pool.len());
        for mut g in gs.drain(..) {
            if g.data_gen + 1 < gen && g.touch_gen < gen {
                continue;
            }
            let off = new_pool.len() as u32;
            new_pool.extend_from_slice(
                &pool[g.key_off as usize..(g.key_off + g.key_len as u32) as usize],
            );
            g.key_off = off;
            kept.push(g);
        }
        pool.clear();
        for gid in 0..kept.len() as u32 {
            let g = &kept[gid as usize];
            let pos = self.order.partition_point(|&o| {
                let other = &kept[o as usize];
                key_cmp(
                    &new_pool,
                    other.key_off,
                    other.key_len,
                    &other.value,
                    &new_pool[g.key_off as usize..(g.key_off + g.key_len as u32) as usize],
                    &g.value,
                )
                .is_lt()
            });
            self.order.insert(pos, gid);
        }
        self.gs = kept;
        self.pool = new_pool;
    }

    fn visit_caps(&self, f: &mut impl FnMut(usize)) {
        f(self.gs.capacity());
        f(self.order.capacity());
        f(self.pool.capacity());
        f(self.fresh.capacity());
        f(self.set_old.capacity());
        f(self.set_new.capacity());
        f(self.inits.capacity());
        f(self.terms.capacity());
        f(self.ivs.capacity());
        f(self.key_buf.capacity());
        f(self.arena.capacity());
        for g in &self.gs {
            f(g.pts.capacity());
        }
    }
}

// ---------------------------------------------------------------------------
// Derived-event table
// ---------------------------------------------------------------------------

/// Retained state of one derived-event stratum: double-buffered derivation
/// sides whose pools swap each window (survivor args are compacted from the
/// previous side's pool into the next's).
#[derive(Default)]
pub(crate) struct EvTable {
    /// Generation `cur`/`mat_cur` reflect.
    pub data_gen: u64,
    pub cur: Vec<CDeriv>,
    pub next: Vec<CDeriv>,
    pub pool_cur: Vec<Term>,
    pub pool_next: Vec<Term>,
    pub mat_cur: Vec<MatRef>,
    pub mat_next: Vec<MatRef>,
}

impl EvTable {
    /// Args slice of a ref into the *current* side's pool.
    pub fn cur_args(&self, off: u32, len: u16) -> &[Term] {
        &self.pool_cur[off as usize..off as usize + len as usize]
    }

    /// Builds `mat_next` from `next`: the deduplicated `(time, args)` pairs
    /// with `time > start`, sorted — the compiled twin of
    /// `materialized_events`, without the owned `Event`s.
    pub fn build_mat_next(&mut self, start: Time) {
        self.mat_next.clear();
        for d in &self.next {
            if d.time > start {
                self.mat_next.push(MatRef { time: d.time, off: d.off, len: d.len });
            }
        }
        let pool = &self.pool_next;
        self.mat_next.sort_unstable_by(|a, b| {
            a.time.cmp(&b.time).then_with(|| {
                pool[a.off as usize..(a.off + a.len as u32) as usize]
                    .cmp(&pool[b.off as usize..(b.off + b.len as u32) as usize])
            })
        });
        self.mat_next.dedup_by(|a, b| {
            a.time == b.time
                && pool[a.off as usize..(a.off + a.len as u32) as usize]
                    == pool[b.off as usize..(b.off + b.len as u32) as usize]
        });
    }

    /// Earliest divergence between the previous window's materialised events
    /// (viewed with `time > start`) and the next side's — the compiled twin
    /// of `first_event_divergence` over pooled refs.
    pub fn mat_divergence(&self, start: Time) -> Time {
        let old = &self.mat_cur[self.mat_cur.partition_point(|m| m.time <= start)..];
        let new = &self.mat_next;
        let (mut i, mut j) = (0usize, 0usize);
        loop {
            match (old.get(i), new.get(j)) {
                (Some(x), Some(y)) => {
                    let xa = &self.pool_cur[x.off as usize..(x.off + x.len as u32) as usize];
                    let ya = &self.pool_next[y.off as usize..(y.off + y.len as u32) as usize];
                    if x.time == y.time && xa == ya {
                        i += 1;
                        j += 1;
                    } else {
                        return x.time.min(y.time);
                    }
                }
                (Some(x), None) => return x.time,
                (None, Some(y)) => return y.time,
                (None, None) => return crate::time::TIME_MAX,
            }
        }
    }

    /// Swaps the sides after a window: `next` becomes the retained current
    /// state, the old side's buffers are cleared in place for reuse.
    pub fn swap_sides(&mut self, gen: u64) {
        std::mem::swap(&mut self.cur, &mut self.next);
        std::mem::swap(&mut self.pool_cur, &mut self.pool_next);
        std::mem::swap(&mut self.mat_cur, &mut self.mat_next);
        self.next.clear();
        self.pool_next.clear();
        self.mat_next.clear();
        self.data_gen = gen;
    }

    fn visit_caps(&self, f: &mut impl FnMut(usize)) {
        f(self.cur.capacity());
        f(self.next.capacity());
        f(self.pool_cur.capacity());
        f(self.pool_next.capacity());
        f(self.mat_cur.capacity());
        f(self.mat_next.capacity());
    }
}

// ---------------------------------------------------------------------------
// Static-fluent table
// ---------------------------------------------------------------------------

/// One retained static-fluent grounding.
pub(crate) struct StGrounding {
    pub key_off: u32,
    pub key_len: u16,
    pub value: Term,
    /// Generation whose `out` this grounding holds.
    pub data_gen: u64,
    /// Generation `acc` accumulates for.
    pub acc_gen: u64,
    /// This window's accumulated (normalised) intervals across rules.
    pub acc: Vec<Interval>,
    /// Previous-window output (differential reference / reusable `Arc`).
    pub out: IntervalList,
}

/// Retained state of one static-fluent stratum.
#[derive(Default)]
pub(crate) struct StTable {
    pub gs: Vec<StGrounding>,
    pub order: Vec<u32>,
    pub pool: Vec<Term>,
    // Per-window scratch, retained across cycles.
    pub key_buf: Vec<Term>,
    pub ranges: Vec<IvRange>,
    pub expr_trail: Vec<VarId>,
    pub arena: IntervalArena,
}

impl StTable {
    /// Grounding id for `(args, value)`, inserting when unseen.
    pub fn lookup_or_insert(&mut self, args: &[Term], value: &Term) -> u32 {
        let pos = self.order.partition_point(|&gid| {
            let g = &self.gs[gid as usize];
            key_cmp(&self.pool, g.key_off, g.key_len, &g.value, args, value).is_lt()
        });
        if let Some(&gid) = self.order.get(pos) {
            let g = &self.gs[gid as usize];
            if key_cmp(&self.pool, g.key_off, g.key_len, &g.value, args, value).is_eq() {
                return gid;
            }
        }
        let gid = self.gs.len() as u32;
        let key_off = self.pool.len() as u32;
        self.pool.extend(args.iter().cloned());
        self.gs.push(StGrounding {
            key_off,
            key_len: args.len() as u16,
            value: value.clone(),
            data_gen: 0,
            acc_gen: 0,
            acc: Vec::new(),
            out: IntervalList::empty(),
        });
        self.order.insert(pos, gid);
        gid
    }

    /// Key args of a grounding.
    pub fn key_args(&self, g: &StGrounding) -> &[Term] {
        &self.pool[g.key_off as usize..g.key_off as usize + g.key_len as usize]
    }

    fn visit_caps(&self, f: &mut impl FnMut(usize)) {
        f(self.gs.capacity());
        f(self.order.capacity());
        f(self.pool.capacity());
        f(self.key_buf.capacity());
        f(self.ranges.capacity());
        f(self.expr_trail.capacity());
        f(self.arena.capacity());
        for g in &self.gs {
            f(g.acc.capacity());
        }
    }
}

// ---------------------------------------------------------------------------
// Cycle state
// ---------------------------------------------------------------------------

/// Retained per-stratum state, aligned with the plan's instruction array.
pub(crate) enum StratumState {
    Ev(EvTable),
    Sf(SfTable),
    St(StTable),
}

impl StratumState {
    fn visit_caps(&self, f: &mut impl FnMut(usize)) {
        match self {
            StratumState::Ev(t) => t.visit_caps(f),
            StratumState::Sf(t) => t.visit_caps(f),
            StratumState::St(t) => t.visit_caps(f),
        }
    }
}

/// All retained compiled-path window state of one engine: slot-indexed
/// frontiers and SDE stores, per-stratum grounding tables, and the
/// capacity-accounting scratch. Derived state — never serialised, rebuilt
/// after restore or a mode toggle.
pub(crate) struct CycleState {
    /// Window-cycle generation; bumped once per compiled query.
    pub gen: u64,
    /// Whether the tables reflect the engine's canonical caches (false after
    /// restore, interpreter queries or arena toggles; the next compiled
    /// query reseeds).
    pub synced: bool,
    /// Plan shape this state was built for (`n_slots`, `n_strata`).
    pub shape: (usize, usize),
    pub frontiers: Vec<Time>,
    pub events: crate::compile::CEventStore,
    pub obs: crate::compile::CObsStore,
    pub fluents: crate::compile::CFluentStore,
    pub strata: Vec<Option<StratumState>>,
    /// Capacity snapshot taken by [`CycleState::begin_caps`].
    caps: Vec<usize>,
    /// Cumulative count of retained-buffer growth events observed.
    pub allocs: u64,
}

impl CycleState {
    pub fn new(n_slots: usize, n_strata: usize) -> CycleState {
        CycleState {
            gen: 0,
            synced: false,
            shape: (n_slots, n_strata),
            frontiers: Vec::new(),
            events: crate::compile::CEventStore::new(n_slots),
            obs: crate::compile::CObsStore::new(n_slots),
            fluents: crate::compile::CFluentStore::new(n_slots),
            strata: Vec::with_capacity(n_strata),
            caps: Vec::new(),
            allocs: 0,
        }
    }

    fn visit_caps(&self, f: &mut impl FnMut(usize)) {
        f(self.frontiers.capacity());
        self.events.visit_caps(f);
        self.obs.visit_caps(f);
        self.fluents.visit_caps(f);
        for s in self.strata.iter().flatten() {
            s.visit_caps(f);
        }
    }

    /// Snapshots every retained buffer's capacity before a window cycle.
    pub fn begin_caps(&mut self) {
        let mut caps = std::mem::take(&mut self.caps);
        caps.clear();
        self.visit_caps(&mut |c| caps.push(c));
        self.caps = caps;
    }

    /// Counts the buffers that grew (or appeared) since
    /// [`CycleState::begin_caps`] — the cycle's allocation count — and adds
    /// it to the cumulative counter.
    pub fn end_caps(&mut self) -> u64 {
        let caps = std::mem::take(&mut self.caps);
        let mut grew = 0u64;
        let mut i = 0usize;
        self.visit_caps(&mut |c| {
            match caps.get(i) {
                Some(&before) if c > before => grew += 1,
                None if c > 0 => grew += 1,
                _ => {}
            }
            i += 1;
        });
        self.caps = caps;
        self.allocs += grew;
        grew
    }
}
