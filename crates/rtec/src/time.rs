//! Linear, discrete time.
//!
//! RTEC assumes time is linear and discrete, represented by integer
//! time-points (Section 4.1 of the paper). In the Dublin deployment the unit
//! is one second; nothing in the engine depends on the unit.

/// A discrete time-point. Negative values are permitted (useful for windows
/// that start before the epoch of a trace).
pub type Time = i64;

/// The earliest representable time-point.
pub const TIME_MIN: Time = i64::MIN;

/// The latest representable time-point.
pub const TIME_MAX: Time = i64::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extremes_order() {
        const { assert!(TIME_MIN < 0 && 0 < TIME_MAX) };
    }
}
