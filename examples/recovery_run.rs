//! Recovery run: the §3 Streams topology with crash-recovery supervision —
//! a deterministic kill (`chaos::KillAt`) strikes the RTEC stage mid-stream,
//! the supervisor rebuilds the worker from its factories, restores the
//! latest checkpoint and replays the logged suffix. The recognition output
//! must be byte-identical to the kill-free run; the example exits non-zero
//! otherwise, so CI can use it as a smoke test.
//!
//! ```sh
//! cargo run --release --example recovery_run
//! ```

use insight_repro::core::pipeline::{build_pipeline_with, PipelineOptions};
use insight_repro::core::replay::canonical_recognitions;
use insight_repro::datagen::scenario::{Scenario, ScenarioConfig};
use insight_repro::rtec::window::WindowConfig;
use insight_repro::streams::chaos::KillSwitch;
use insight_repro::streams::runtime::Runtime;
use insight_repro::traffic::TrafficRulesConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 40-minute scenario, checkpoint barriers every 200 items, a restart
    // budget of 2 per worker lifetime (one kill needs one).
    let scenario = Scenario::generate(ScenarioConfig::small(2400, 42))?;
    let n = scenario.sdes.len() as u64;
    let window = WindowConfig::new(600, 300)?;
    let rules = TrafficRulesConfig::static_mode();
    let supervised = || PipelineOptions::recovering(200, 2);
    println!("scenario: {n} SDEs, checkpoint every 200, restart budget 2");

    // Kill-free baseline under the same supervision.
    let (topology, sink) = build_pipeline_with(&scenario, rules.clone(), window, &supervised())?;
    Runtime::new(topology).run()?;
    let baseline = canonical_recognitions(&sink.items());
    assert!(!baseline.is_empty(), "kill-free run produced no recognitions");
    println!("baseline: {} canonical recognition lines", baseline.lines().count());

    // Kill the RTEC worker at three points across the stream: before the
    // first barrier (recovery replays from the start), mid-stream, and near
    // the end. Each run must recover to the byte-identical baseline.
    for kill_at in [2, n / 2, n - 1] {
        let switch = KillSwitch::new();
        let options =
            PipelineOptions { kill_rtec_at: Some((kill_at, switch.clone())), ..supervised() };
        let (topology, sink) = build_pipeline_with(&scenario, rules.clone(), window, &options)?;
        let runtime = Runtime::new(topology);
        let metrics = runtime.metrics();
        runtime.run()?; // supervised: the injected kill must not abort the run
        assert!(switch.fired(), "kill at {kill_at}/{n} never struck");

        let snapshot = metrics.snapshot();
        let (mut ckpts, mut restores, mut replayed, mut recovery_ns) = (0u64, 0u64, 0u64, 0u64);
        for stage in snapshot.stages.values() {
            ckpts += stage.checkpoints;
            restores += stage.restores;
            replayed += stage.replayed_items;
            recovery_ns += stage.recovery_ns;
        }
        assert!(restores > 0, "kill at {kill_at}/{n}: supervisor never restored a checkpoint");
        let out = canonical_recognitions(&sink.items());
        assert_eq!(
            out, baseline,
            "kill at {kill_at}/{n}: recovered output diverged from the kill-free run"
        );
        println!(
            "kill at {kill_at:>5}/{n}: recovered in {:.2} ms \
             ({ckpts} barriers, {restores} restore(s), {replayed} item(s) replayed) — \
             output identical to baseline",
            recovery_ns as f64 / 1e6
        );
    }

    println!("\nOK: recovery equivalence held for every kill point");
    Ok(())
}
