//! Observability report: run the §3 Streams topology over a synthetic Dublin
//! rush-hour scenario and print what the metrics layer saw — per-stage
//! throughput and process latency, queue depths and backpressure stalls,
//! RTEC per-window query latencies and crowd resolution counters — first as
//! a human-readable table, then as the JSON snapshot.
//!
//! ```sh
//! cargo run --release --example metrics_report
//! ```

use insight_repro::core::pipeline::build_pipeline;
use insight_repro::datagen::scenario::{Scenario, ScenarioConfig};
use insight_repro::rtec::window::WindowConfig;
use insight_repro::streams::runtime::Runtime;
use insight_repro::traffic::{NoisyVariant, TrafficRulesConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 45-minute scenario with a quarter of the bus fleet mis-reporting,
    // so the crowdsourcing stage has disagreements to resolve.
    let mut cfg = ScenarioConfig::small(2700, 42);
    cfg.fleet.faulty_fraction = 0.25;
    cfg.fleet.n_buses = 32;
    let scenario = Scenario::generate(cfg)?;
    let (start, end) = scenario.window();
    println!(
        "scenario: {} SDEs over {} s, {} buses, {} SCATS sensors",
        scenario.sdes.len(),
        end - start,
        scenario.fleet.buses.len(),
        scenario.scats.len()
    );

    // Rule-set (4): buses stay trusted until the crowd sides with SCATS,
    // which is what lets sourceDisagreement CEs reach the crowd stage.
    let window = WindowConfig::new(600, 300)?;
    let rules = TrafficRulesConfig::self_adaptive(NoisyVariant::CrowdValidated);
    let (topology, sink) = build_pipeline(&scenario, rules, window)?;

    // The runtime owns a metrics registry; grab a handle before `run`
    // consumes it. Every stage, queue, and the RTEC/crowd processors
    // report into it.
    let runtime = Runtime::new(topology);
    let metrics = runtime.metrics();
    let stats = runtime.run()?;

    println!(
        "\npipeline done: {} recognition summaries collected \
         ({} items consumed, {} emitted across all stages)",
        sink.len(),
        stats.total_consumed(),
        stats.total_emitted()
    );

    let snapshot = metrics.snapshot();
    println!("\n{}", snapshot.render_table());

    println!("=== JSON snapshot ===");
    println!("{}", snapshot.to_json());
    Ok(())
}
