//! Citizen micro-blogging reports as an additional congestion source — the
//! Twitter-style stream the paper's introduction motivates, implemented as
//! an extension rule-set (`citizenCongestion`).
//!
//! Generates geo-tagged texts, classifies them by keyword, feeds the
//! classified reports into RTEC next to the bus/SCATS streams, and checks
//! the recognised citizen congestion against the scenario's ground truth.
//!
//! ```sh
//! cargo run --release --example citizen_reports
//! ```

use insight_repro::datagen::citizens::{classify, generate, CitizenConfig};
use insight_repro::datagen::scenario::{Scenario, ScenarioConfig};
use insight_repro::rtec::window::WindowConfig;
use insight_repro::traffic::recognizer::TrafficRecognizer;
use insight_repro::traffic::TrafficRulesConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::generate(ScenarioConfig::small(3600, 7))?;
    let (start, end) = scenario.window();

    let citizen_cfg =
        CitizenConfig { n_users: 400, reports_per_hour: 6.0, topicality: 0.6, accuracy: 0.97 };
    let reports = generate(&scenario.network, &scenario.field, &citizen_cfg, start, end - start, 7);
    let classified = reports.iter().filter(|r| classify(&r.text).is_some()).count();
    println!(
        "{} citizen reports generated; {} classified as traffic-related, {} chatter",
        reports.len(),
        classified,
        reports.len() - classified
    );
    println!("\nsample reports:");
    for r in reports.iter().take(6) {
        let tag = match classify(&r.text) {
            Some(true) => "[congestion]",
            Some(false) => "[clear]     ",
            None => "[chatter]   ",
        };
        println!("  {tag} @({:.4}, {:.4}) t={} \"{}\"", r.lon, r.lat, r.time, r.text);
    }

    // Recognise citizenCongestion next to the regular streams.
    let mut rules = TrafficRulesConfig::static_mode();
    rules.citizen_reports = true;
    let mut rec = TrafficRecognizer::from_deployment(
        rules,
        WindowConfig::new(end - start, end - start)?,
        &scenario.scats,
    )?;
    for sde in &scenario.sdes {
        rec.ingest(sde)?;
    }
    for r in &reports {
        rec.ingest_citizen_report(r)?;
    }
    let result = rec.query(end)?;

    let citizen_entries = result.raw.fluent_entries("citizenCongestion");
    println!("\ncitizenCongestion recognised at {} areas of interest", citizen_entries.len());

    // Validate interval onsets against the ground truth.
    let (mut correct, mut total) = (0usize, 0usize);
    for e in citizen_entries {
        let (lon, lat) = (e.args[0].as_f64().expect("lon"), e.args[1].as_f64().expect("lat"));
        for iv in e.ivs.iter() {
            total += 1;
            if scenario.truth_congested(lon, lat, iv.start()) {
                correct += 1;
            }
        }
    }
    if total > 0 {
        println!(
            "onset precision against ground truth: {correct}/{total} ({:.0} %)",
            100.0 * correct as f64 / total as f64
        );
        println!(
            "(single-report initiation inherits rule-set (3)'s veracity problem: one\n\
             wrong report opens an interval — the same weakness the paper's noisy-source\n\
             machinery addresses for buses, and would have to address here.)"
        );
    } else {
        println!("no reports landed close enough to an area of interest this run");
    }

    // Report-level accuracy: how often a classified report matches the
    // ground truth at the reporter's location.
    let (mut report_ok, mut report_total) = (0usize, 0usize);
    for r in &reports {
        if let Some(claim) = classify(&r.text) {
            report_total += 1;
            if claim == scenario.truth_congested(r.lon, r.lat, r.time) {
                report_ok += 1;
            }
        }
    }
    println!(
        "report-level accuracy: {report_ok}/{report_total} ({:.0} %)",
        100.0 * report_ok as f64 / report_total.max(1) as f64
    );

    // Cross-source corroboration: areas where SCATS and citizens agree.
    let scats_areas: Vec<(f64, f64)> =
        result.congested_intersections().iter().map(|&(loc, _)| loc).collect();
    let corroborated = citizen_entries
        .iter()
        .filter(|e| {
            let lon = e.args[0].as_f64().unwrap_or(0.0);
            let lat = e.args[1].as_f64().unwrap_or(0.0);
            scats_areas.iter().any(|&(slon, slat)| slon == lon && slat == lat)
        })
        .count();
    println!("areas corroborated by SCATS congestion: {corroborated}");
    Ok(())
}
