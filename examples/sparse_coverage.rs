//! Traffic modelling under data sparsity: the §6 component in isolation.
//!
//! Generates a street network, instruments a fraction of junctions with
//! SCATS sensors, grid-searches the regularized-Laplacian hyperparameters
//! (§7.3), estimates flow at every uncovered junction, compares against
//! naive baselines, and renders the Figure 9-style map as ASCII art (and a
//! PPM image under `target/`).
//!
//! ```sh
//! cargo run --release --example sparse_coverage
//! ```

use insight_repro::datagen::congestion::{CongestionConfig, CongestionField};
use insight_repro::datagen::network::{NetworkConfig, StreetNetwork};
use insight_repro::gp::gridsearch::GridSearch;
use insight_repro::gp::regression::{rmse, GpRegression};
use insight_repro::gp::render::{render_ascii, render_ppm};
use insight_repro::gp::Graph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = StreetNetwork::generate(
        &NetworkConfig { nx: 16, ny: 12, ..NetworkConfig::dublin_default() },
        99,
    )?;
    let field = CongestionField::generate(&network, CongestionConfig::default_for(86_400), 99);
    let graph = Graph::new(network.junctions().to_vec(), network.segments())?;
    println!(
        "street network: {} junctions, {} segments (avg degree {:.2})",
        network.len(),
        network.segments().len(),
        network.average_degree()
    );

    // Ground truth: flow at the evening rush hour.
    let t = (17.5 * 3600.0) as i64;
    let truth: Vec<f64> = (0..network.len()).map(|v| field.flow(v, t)).collect();

    // Observe every 4th junction (25 % sensor coverage).
    let observations: Vec<(usize, f64)> =
        (0..network.len()).step_by(4).map(|v| (v, truth[v])).collect();
    println!(
        "sensor coverage: {} of {} junctions ({:.0} %)",
        observations.len(),
        network.len(),
        100.0 * observations.len() as f64 / network.len() as f64
    );

    // Hyperparameter grid search in [0, 10] as in the paper.
    let search = GridSearch::default().run(&graph, &observations)?;
    println!(
        "grid search winner: alpha = {}, beta = {} (hold-out RMSE {:.1})",
        search.best.alpha, search.best.beta, search.best_rmse
    );

    // Fit on all observations, predict the uncovered junctions.
    let gp = GpRegression::fit(&graph, &search.best, &observations, 0.1, true)?;
    let posterior = gp.predict_unobserved()?;
    let truth_pairs: Vec<(usize, f64)> = posterior.targets.iter().map(|&v| (v, truth[v])).collect();
    let gp_rmse = rmse(&posterior, &truth_pairs).unwrap();

    // Baselines.
    let mean_flow = observations.iter().map(|&(_, f)| f).sum::<f64>() / observations.len() as f64;
    let mean_rmse =
        (truth_pairs.iter().map(|&(_, f)| (f - mean_flow) * (f - mean_flow)).sum::<f64>()
            / truth_pairs.len() as f64)
            .sqrt();
    let nn_rmse = {
        let mut sum = 0.0;
        for &(v, f) in &truth_pairs {
            // Nearest observed junction by hop distance.
            let d = graph.bfs_distances(v)?;
            let (nearest, _) = observations
                .iter()
                .map(|&(o, val)| ((o, val), d[o]))
                .min_by_key(|&(_, hops)| hops)
                .unwrap();
            sum += (f - nearest.1) * (f - nearest.1);
        }
        (sum / truth_pairs.len() as f64).sqrt()
    };

    println!("\nheld-out flow RMSE (vehicles/hour):");
    println!("  GP (regularized Laplacian):  {gp_rmse:>8.1}");
    println!("  nearest observed junction:   {nn_rmse:>8.1}");
    println!("  global mean:                 {mean_rmse:>8.1}");

    // Figure 9: green (low) to red (high) map of the GP estimates.
    let all = gp.predict_all()?;
    let values: Vec<(usize, f64)> =
        all.targets.iter().copied().zip(all.mean.iter().copied()).collect();
    println!("\nflow estimates (0 = low … 9 = high), every junction:");
    print!("{}", render_ascii(&graph, &values, 64, 20));

    let ppm = render_ppm(&graph, &values, 480, 360, 3);
    let path = std::path::Path::new("target/sparse_coverage_fig9.ppm");
    std::fs::create_dir_all("target")?;
    std::fs::write(path, ppm)?;
    println!("\nPPM rendering written to {}", path.display());
    Ok(())
}
