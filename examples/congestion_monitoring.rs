//! Congestion monitoring: static vs self-adaptive recognition over a
//! scenario with deliberately faulty buses — the motivating workload of the
//! paper's Sections 1 and 4.3.
//!
//! Shows how rule-set (3) (static) is polluted by lying buses while
//! rule-set (3′) + `noisy` (self-adaptive) discards them, and how the
//! recognised `noisy(Bus)` set compares to the actually faulty vehicles.
//!
//! ```sh
//! cargo run --release --example congestion_monitoring
//! ```

use insight_repro::datagen::scenario::{Scenario, ScenarioConfig};
use insight_repro::rtec::window::WindowConfig;
use insight_repro::traffic::{DistributedRecognizer, NoisyVariant, TrafficRulesConfig};

fn run_mode(
    scenario: &Scenario,
    rules: TrafficRulesConfig,
) -> Result<(usize, usize, Vec<i64>), Box<dyn std::error::Error>> {
    let window = WindowConfig::new(900, 450)?;
    let mut rec = DistributedRecognizer::from_deployment(rules, window, &scenario.scats)?;
    let (start, end) = scenario.window();

    let mut sde_idx = 0;
    let mut bus_congestion_intervals = 0usize;
    let mut disagreement_intervals = 0usize;
    let mut noisy: Vec<i64> = Vec::new();
    let mut q = start + 450;
    while q <= end {
        while sde_idx < scenario.sdes.len() && scenario.sdes[sde_idx].arrival <= q {
            rec.ingest(&scenario.sdes[sde_idx])?;
            sde_idx += 1;
        }
        let result = rec.query(q)?;
        for (_, r) in &result.per_region {
            bus_congestion_intervals +=
                r.bus_congestions().iter().map(|(_, ivs)| ivs.len()).sum::<usize>();
            disagreement_intervals +=
                r.source_disagreements().iter().map(|(_, ivs)| ivs.len()).sum::<usize>();
            for (bus, _) in r.noisy_buses() {
                if !noisy.contains(&bus) {
                    noisy.push(bus);
                }
            }
        }
        q += 450;
    }
    Ok((bus_congestion_intervals, disagreement_intervals, noisy))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = ScenarioConfig::small(2700, 2024);
    cfg.fleet.n_buses = 40;
    cfg.fleet.faulty_fraction = 0.35;
    let scenario = Scenario::generate(cfg)?;

    let faulty: Vec<i64> =
        scenario.fleet.buses.iter().filter(|b| b.faulty).map(|b| b.id as i64).collect();
    println!(
        "scenario: {} buses ({} faulty), {} sensors, {} SDEs, {} incidents",
        scenario.fleet.buses.len(),
        faulty.len(),
        scenario.scats.len(),
        scenario.sdes.len(),
        scenario.field.incidents().len(),
    );

    println!("\n--- static recognition (rule-set 3: every source trusted) ---");
    let (bus_cong_s, disagree_s, _) = run_mode(&scenario, TrafficRulesConfig::static_mode())?;
    println!("bus congestion intervals:     {bus_cong_s}");
    println!("source disagreement intervals: {disagree_s}");

    println!("\n--- self-adaptive recognition (rule-sets 3' + 5) ---");
    let (bus_cong_a, disagree_a, noisy) =
        run_mode(&scenario, TrafficRulesConfig::self_adaptive(NoisyVariant::Pessimistic))?;
    println!("bus congestion intervals:     {bus_cong_a}");
    println!("source disagreement intervals: {disagree_a}");
    println!("buses marked noisy:            {}", noisy.len());

    let true_positive = noisy.iter().filter(|b| faulty.contains(b)).count();
    println!("  of which actually faulty:    {true_positive} ({} faulty in total)", faulty.len());
    println!(
        "\nself-adaptive mode suppressed {} bus-congestion intervals contributed by unreliable vehicles",
        bus_cong_s.saturating_sub(bus_cong_a)
    );
    Ok(())
}
