//! Chaos run: the §3 Streams topology over a synthetic Dublin scenario with
//! deterministic fault injection — 5% of SDE items corrupted at the source,
//! plus drops and out-of-order delivery — executed under supervision
//! policies (`Skip` on the region engines, `DeadLetter` on the crowd
//! stage). The run must complete with a non-empty recognition report and
//! zero process aborts; the example exits non-zero otherwise, so CI can use
//! it as a smoke test.
//!
//! ```sh
//! cargo run --release --example chaos_run
//! ```

use insight_repro::core::pipeline::build_chaos_pipeline;
use insight_repro::core::system::FaultReport;
use insight_repro::datagen::scenario::{Scenario, ScenarioConfig};
use insight_repro::rtec::window::WindowConfig;
use insight_repro::streams::chaos::ChaosConfig;
use insight_repro::streams::runtime::Runtime;
use insight_repro::traffic::{NoisyVariant, TrafficRulesConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 45-minute rush-hour scenario with some of the fleet mis-reporting,
    // so every stage — including crowdsourcing — sees traffic.
    let mut cfg = ScenarioConfig::small(2700, 42);
    cfg.fleet.faulty_fraction = 0.25;
    cfg.fleet.n_buses = 32;
    let scenario = Scenario::generate(cfg)?;
    println!(
        "scenario: {} SDEs, {} buses, {} SCATS sensors",
        scenario.sdes.len(),
        scenario.fleet.buses.len(),
        scenario.scats.len()
    );

    // The acceptance bar: 5% corruption plus drops and reordering.
    let chaos = ChaosConfig {
        corrupt_rate: 0.05,
        drop_rate: 0.02,
        duplicate_rate: 0.01,
        delay_rate: 0.02,
        ..ChaosConfig::new(1)
    };
    println!(
        "chaos: corrupt {:.0}%, drop {:.0}%, duplicate {:.0}%, delay {:.0}% (seed {})",
        chaos.corrupt_rate * 100.0,
        chaos.drop_rate * 100.0,
        chaos.duplicate_rate * 100.0,
        chaos.delay_rate * 100.0,
        chaos.seed
    );

    let window = WindowConfig::new(600, 300)?;
    let rules = TrafficRulesConfig::self_adaptive(NoisyVariant::CrowdValidated);
    let (topology, sink, chaos_stats) = build_chaos_pipeline(&scenario, rules, window, chaos)?;
    let dead_letters = topology.dead_letters();

    let runtime = Runtime::new(topology);
    let metrics = runtime.metrics();
    let stats = runtime.run()?; // supervised: injected faults must not abort

    println!("\n=== injected chaos per source ===");
    for (source, s) in &chaos_stats {
        println!(
            "{source:>12}: dropped {}, duplicated {}, delayed {}, corrupted {}",
            s.dropped.get(),
            s.duplicated.get(),
            s.delayed.get(),
            s.corrupted.get()
        );
    }

    let snapshot = metrics.snapshot();
    let faults = FaultReport::from_snapshot(&snapshot);
    println!("\n=== fault report ===\n{faults}");
    println!("dead-letter records: {}", dead_letters.len());

    println!(
        "\npipeline done: {} recognition summaries ({} items consumed, {} emitted)",
        sink.len(),
        stats.total_consumed(),
        stats.total_emitted()
    );

    // Smoke-test assertions for CI: the Dublin report is non-empty despite
    // the injected faults, and corruption was actually exercised.
    let corrupted: u64 = chaos_stats.iter().map(|(_, s)| s.corrupted.get()).sum();
    assert!(corrupted > 0, "chaos harness injected no corruption");
    assert!(!sink.is_empty(), "no recognition summaries despite supervision");
    assert!(faults.malformed_sdes > 0, "corrupted SDEs should be counted as malformed");
    println!("\nOK: non-empty recognition report under 5% corruption, zero aborts");
    Ok(())
}
