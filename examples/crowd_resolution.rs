//! Crowdsourced disagreement resolution: the §5 pipeline in isolation.
//!
//! Simulates the paper's participant cohort answering congestion questions,
//! shows the online EM reliability estimates converging (Figure 5), the
//! posterior peakedness statistic, and the per-connection latency breakdown
//! of the query execution engine (Figure 6).
//!
//! ```sh
//! cargo run --release --example crowd_resolution
//! ```

use insight_repro::crowd::engine::{QueryExecutionEngine, Worker, WorkerId};
use insight_repro::crowd::latency::ConnectionType;
use insight_repro::crowd::model::{CrowdQuery, LabelSet, SimulatedParticipant};
use insight_repro::crowd::online_em::OnlineEm;
use insight_repro::crowd::stats::{EstimationTrace, PeakednessTracker};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let labels = LabelSet::traffic_default();
    let cohort = SimulatedParticipant::paper_cohort();
    let mut em = OnlineEm::paper_default(cohort.len());
    let mut trace = EstimationTrace::new(cohort.len());
    let mut peaked = PeakednessTracker::paper_default();
    let mut rng = StdRng::seed_from_u64(5);

    println!("participants (true error probabilities):");
    for (i, p) in cohort.iter().enumerate() {
        println!("  {i}: p = {}", p.p_err);
    }

    let events = 1000;
    for t in 0..events {
        let truth = t % labels.len();
        let answers: Vec<(usize, usize)> = cohort
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.answer(truth, &labels, &mut rng).unwrap()))
            .collect();
        let outcome = em.process(&labels.uniform_prior(), &answers)?;
        peaked.record(outcome.confidence);
        trace.snapshot(em.estimates());
    }

    println!("\nestimates after {events} queries (estimate / truth / rel. error):");
    for (i, p) in cohort.iter().enumerate() {
        let est = trace.final_estimate(i).unwrap();
        let rel = trace.relative_error(i, events - 1, p.p_err).unwrap();
        println!("  {i}: {est:.3} / {:.2} / {:+.1} %", p.p_err, rel * 100.0);
    }
    println!(
        "\nordering of participants by reliability recovered: {}",
        trace.ordering_correct(&cohort.iter().map(|p| p.p_err).collect::<Vec<_>>(), 0.06)
    );
    println!(
        "posteriors with one label above 0.99: {:.1} % (the paper reports ~94 %)",
        peaked.fraction().unwrap() * 100.0
    );

    // --- query execution engine latency (Figure 6) ---
    println!("\nquery execution engine latency (10 task executions per connection):");
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12}",
        "conn", "trigger ms", "push ms", "comm ms", "total ms"
    );
    for connection in ConnectionType::ALL {
        let mut engine = QueryExecutionEngine::new();
        for i in 0..10u64 {
            engine.register(Worker {
                id: WorkerId(i),
                lon: -6.26,
                lat: 53.35,
                connection,
                avg_comp_ms: 100.0,
            });
        }
        let query = CrowdQuery {
            question: "Congestion at O'Connell Bridge?".into(),
            answers: vec!["yes".into(), "no".into()],
            lon: -6.26,
            lat: 53.35,
            deadline_ms: None,
        };
        let ids: Vec<WorkerId> = (0..10).map(WorkerId).collect();
        let exec = engine.execute(&query, &ids, |_| Some(0), &mut rng)?;
        let mean = exec.mean_latency().unwrap();
        println!(
            "{:<6} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
            connection.name(),
            mean.trigger_ms,
            mean.push_ms,
            mean.comm_ms,
            mean.total_ms()
        );
    }
    println!("\neven on 2G the end-to-end engine latency stays below one second.");
    Ok(())
}
