//! Quickstart: run the whole INSIGHT system over a small synthetic Dublin
//! scenario and print the operator alert feed.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use insight_repro::core::{InsightSystem, OperatorAlert, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 30-minute rush-hour scenario: 24 buses, 40 SCATS sensors, a couple
    // of injected incidents, 15 % of buses mis-reporting congestion.
    let mut config = SystemConfig::small(2700, 42);
    config.scenario.fleet.faulty_fraction = 0.25;

    println!("Generating scenario and assembling the system…");
    let mut system = InsightSystem::new(config)?;
    println!(
        "  street network: {} junctions, {} segments",
        system.scenario().network.len(),
        system.scenario().network.segments().len()
    );
    println!(
        "  {} SCATS sensors on {} intersections, {} buses, {} SDEs",
        system.scenario().scats.len(),
        system.scenario().scats.intersections().len(),
        system.scenario().fleet.buses.len(),
        system.scenario().sdes.len()
    );

    let report = system.run()?;

    println!("\n=== operator alert feed ===");
    for alert in report.alerts.iter().take(40) {
        println!("{alert}");
    }
    if report.alerts.len() > 40 {
        println!("… and {} more alerts", report.alerts.len() - 40);
    }

    println!("\n=== run summary ===");
    println!("windows processed:        {}", report.windows.len());
    let total_sdes: usize = report.windows.iter().map(|w| w.sde_count).sum();
    println!("SDEs recognised over:     {total_sdes}");
    let max_rec = report.windows.iter().map(|w| w.recognition_time).max().unwrap_or_default();
    println!("max recognition time:     {max_rec:?}");
    let disagreements =
        report.alerts_where(|a| matches!(a, OperatorAlert::SourceDisagreement { .. })).len();
    println!("source disagreements:     {disagreements}");
    match report.crowd_accuracy {
        Some(acc) => println!("crowd verdict accuracy:   {:.1} %", acc * 100.0),
        None => println!("crowd verdict accuracy:   n/a (no disagreements crowdsourced)"),
    }
    let (observed, estimated) = report.model_coverage;
    println!("junctions observed:       {observed}");
    println!("junctions GP-estimated:   {estimated}");

    println!("\n=== proactive control recommendations ===");
    for (t, action) in report.control_actions.iter().take(10) {
        println!("[{t}] {action}");
    }
    if report.control_actions.is_empty() {
        println!("(no congestion severe enough to act on in this run)");
    }

    // The operator map (Figure 1's output): flow estimates, green -> red.
    std::fs::create_dir_all("target")?;
    let map_path = "target/quickstart_operator_map.ppm";
    std::fs::write(map_path, system.render_map(480, 360)?)?;
    println!("operator map rendered to  {map_path}");
    Ok(())
}
