//! Integration: file-backed Streams sources and sinks (the original
//! framework's file streams), including the Aggregate processor performing
//! the paper's "sensor readings are aggregated within fixed time intervals"
//! step as a topology.

use insight_repro::core::items::sde_to_item;
use insight_repro::datagen::scenario::{Scenario, ScenarioConfig};
use insight_repro::streams::item::DataItem;
use insight_repro::streams::processor::{Aggregate, FilterEquals};
use insight_repro::streams::runtime::Runtime;
use insight_repro::streams::sink::{CollectSink, JsonLinesSink};
use insight_repro::streams::source::{JsonLinesSource, VecSource};
use insight_repro::streams::topology::{Input, Output, Topology};
use std::io::{BufReader, Write};

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("insight-streams-{}-{}", std::process::id(), name));
    p
}

#[test]
fn json_lines_roundtrip_through_files() {
    let scenario = Scenario::generate(ScenarioConfig::small(600, 41)).unwrap();
    let items: Vec<DataItem> = scenario.sdes.iter().take(200).map(sde_to_item).collect();
    let path = temp_path("roundtrip.jsonl");

    // Write topology: memory -> file.
    {
        let file = std::fs::File::create(&path).unwrap();
        let mut t = Topology::new();
        t.add_source("mem", VecSource::new(items.clone()));
        t.process("dump")
            .input(Input::Stream("mem".into()))
            .output(Output::Sink(Box::new(JsonLinesSink::new(file))))
            .done();
        Runtime::new(t).run().unwrap();
    }

    // Read topology: file -> memory.
    let file = std::fs::File::open(&path).unwrap();
    let mut t = Topology::new();
    t.add_source("file", JsonLinesSource::new(BufReader::new(file)));
    let sink = CollectSink::shared();
    t.process("load")
        .input(Input::Stream("file".into()))
        .output(Output::Sink(Box::new(sink.clone())))
        .done();
    Runtime::new(t).run().unwrap();

    assert_eq!(sink.items(), items, "items survive the file roundtrip exactly");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn aggregate_topology_summarises_scats_flow() {
    let scenario = Scenario::generate(ScenarioConfig::small(1800, 42)).unwrap();
    let items: Vec<DataItem> = scenario.sdes.iter().map(sde_to_item).collect();
    let n_scats = scenario.sdes.iter().filter(|s| !s.is_bus()).count();
    assert!(n_scats > 10);

    let mut t = Topology::new();
    t.add_source("sde", VecSource::new(items));
    t.add_queue("scats", 2048);
    t.process("filter")
        .input(Input::Stream("sde".into()))
        .processor(FilterEquals::new("kind", "scats"))
        .output(Output::Queue("scats".into()))
        .done();
    let sink = CollectSink::shared();
    t.process("aggregate")
        .input(Input::Queue("scats".into()))
        .processor(Aggregate::new("flow", 10))
        .output(Output::Sink(Box::new(sink.clone())))
        .done();
    Runtime::new(t).run().unwrap();

    let summaries = sink.items();
    // ceil(n/10) summaries including the finish() tail.
    assert_eq!(summaries.len(), n_scats.div_ceil(10));
    for s in &summaries {
        let avg = s.get_f64("flow_avg").expect("summary has avg");
        let min = s.get_f64("flow_min").unwrap();
        let max = s.get_f64("flow_max").unwrap();
        assert!(min <= avg && avg <= max);
        assert!(s.get_i64("count").unwrap() >= 1);
    }
}

#[test]
fn corrupt_file_fails_the_pipeline() {
    let path = temp_path("corrupt.jsonl");
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "{{\"ok\": 1}}").unwrap();
    writeln!(f, "not json at all").unwrap();
    drop(f);

    let file = std::fs::File::open(&path).unwrap();
    let mut t = Topology::new();
    t.add_source("file", JsonLinesSource::new(BufReader::new(file)));
    t.process("load").input(Input::Stream("file".into())).output(Output::Discard).done();
    assert!(Runtime::new(t).run().is_err());
    let _ = std::fs::remove_file(&path);
}
