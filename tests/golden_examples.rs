//! Golden-snapshot tests for the examples' observable output.
//!
//! Each test re-runs an example's logic in-process with the example's exact
//! parameters, renders the same lines the example prints, canonicalises away
//! everything wall-clock (recognition-time lines, `*_ns` histogram contents,
//! queue `depth_high_water`/stall counters — all of which measure the host,
//! not the data), and compares the result byte-for-byte against the checked-
//! in snapshot under `tests/golden/`.
//!
//! To refresh after an intentional behaviour change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_examples
//! ```
//!
//! then review the diff of `tests/golden/*.txt` like any other code change.

use insight_repro::core::pipeline::build_pipeline;
use insight_repro::core::{InsightSystem, OperatorAlert, SystemConfig};
use insight_repro::datagen::scenario::{Scenario, ScenarioConfig};
use insight_repro::rtec::window::WindowConfig;
use insight_repro::streams::metrics::{HistogramSnapshot, MetricsSnapshot, HISTOGRAM_BUCKETS};
use insight_repro::streams::runtime::Runtime;
use insight_repro::traffic::{DistributedRecognizer, NoisyVariant, TrafficRulesConfig};
use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Compares `actual` against the golden file, or rewrites the file when
/// `UPDATE_GOLDEN=1` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             `UPDATE_GOLDEN=1 cargo test --test golden_examples`",
            path.display()
        )
    });
    if actual != expected {
        let mismatch = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .map(|i| {
                format!(
                    "first differing line {}:\n  - {}\n  + {}",
                    i + 1,
                    expected.lines().nth(i).unwrap_or(""),
                    actual.lines().nth(i).unwrap_or(""),
                )
            })
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: {} golden vs {} actual",
                    expected.lines().count(),
                    actual.lines().count()
                )
            });
        panic!(
            "golden mismatch for {name}\n{mismatch}\n\
             if the change is intentional, refresh with \
             `UPDATE_GOLDEN=1 cargo test --test golden_examples` and review the diff"
        );
    }
}

/// FNV-1a over arbitrary bytes — pins large binary artefacts (the operator
/// map) without checking megabytes of pixels into the tree.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The quickstart example's output with the one wall-clock line (max
/// recognition time) omitted and the rendered map reduced to a size + hash.
#[test]
fn golden_quickstart() {
    let mut config = SystemConfig::small(2700, 42);
    config.scenario.fleet.faulty_fraction = 0.25;
    let mut system = InsightSystem::new(config).expect("system");

    let mut out = String::new();
    writeln!(
        out,
        "street network: {} junctions, {} segments",
        system.scenario().network.len(),
        system.scenario().network.segments().len()
    )
    .unwrap();
    writeln!(
        out,
        "{} SCATS sensors on {} intersections, {} buses, {} SDEs",
        system.scenario().scats.len(),
        system.scenario().scats.intersections().len(),
        system.scenario().fleet.buses.len(),
        system.scenario().sdes.len()
    )
    .unwrap();

    let report = system.run().expect("run");

    writeln!(out, "\n=== operator alert feed ===").unwrap();
    for alert in report.alerts.iter().take(40) {
        writeln!(out, "{alert}").unwrap();
    }
    if report.alerts.len() > 40 {
        writeln!(out, "… and {} more alerts", report.alerts.len() - 40).unwrap();
    }

    writeln!(out, "\n=== run summary ===").unwrap();
    writeln!(out, "windows processed:        {}", report.windows.len()).unwrap();
    let total_sdes: usize = report.windows.iter().map(|w| w.sde_count).sum();
    writeln!(out, "SDEs recognised over:     {total_sdes}").unwrap();
    // The example also prints the max recognition time; that measures the
    // host, so the snapshot leaves it out.
    let disagreements =
        report.alerts_where(|a| matches!(a, OperatorAlert::SourceDisagreement { .. })).len();
    writeln!(out, "source disagreements:     {disagreements}").unwrap();
    match report.crowd_accuracy {
        Some(acc) => writeln!(out, "crowd verdict accuracy:   {:.1} %", acc * 100.0).unwrap(),
        None => writeln!(out, "crowd verdict accuracy:   n/a").unwrap(),
    }
    let (observed, estimated) = report.model_coverage;
    writeln!(out, "junctions observed:       {observed}").unwrap();
    writeln!(out, "junctions GP-estimated:   {estimated}").unwrap();

    writeln!(out, "\n=== proactive control recommendations ===").unwrap();
    for (t, action) in report.control_actions.iter().take(10) {
        writeln!(out, "[{t}] {action}").unwrap();
    }
    if report.control_actions.is_empty() {
        writeln!(out, "(no congestion severe enough to act on in this run)").unwrap();
    }

    let map = system.render_map(480, 360).expect("map");
    writeln!(out, "\noperator map: {} bytes, fnv1a {:016x}", map.len(), fnv1a(map.as_bytes()))
        .unwrap();

    assert_golden("quickstart.txt", &out);
}

/// One recognition pass of the congestion_monitoring example.
fn congestion_mode(scenario: &Scenario, rules: TrafficRulesConfig) -> (usize, usize, Vec<i64>) {
    let window = WindowConfig::new(900, 450).expect("window");
    let mut rec =
        DistributedRecognizer::from_deployment(rules, window, &scenario.scats).expect("recognizer");
    let (start, end) = scenario.window();

    let mut sde_idx = 0;
    let mut bus_congestion_intervals = 0usize;
    let mut disagreement_intervals = 0usize;
    let mut noisy: Vec<i64> = Vec::new();
    let mut q = start + 450;
    while q <= end {
        while sde_idx < scenario.sdes.len() && scenario.sdes[sde_idx].arrival <= q {
            rec.ingest(&scenario.sdes[sde_idx]).expect("ingest");
            sde_idx += 1;
        }
        let result = rec.query(q).expect("query");
        for (_, r) in &result.per_region {
            bus_congestion_intervals +=
                r.bus_congestions().iter().map(|(_, ivs)| ivs.len()).sum::<usize>();
            disagreement_intervals +=
                r.source_disagreements().iter().map(|(_, ivs)| ivs.len()).sum::<usize>();
            for (bus, _) in r.noisy_buses() {
                if !noisy.contains(&bus) {
                    noisy.push(bus);
                }
            }
        }
        q += 450;
    }
    (bus_congestion_intervals, disagreement_intervals, noisy)
}

/// The congestion_monitoring example prints only logical-time quantities, so
/// its snapshot is the full output verbatim.
#[test]
fn golden_congestion_monitoring() {
    let mut cfg = ScenarioConfig::small(2700, 2024);
    cfg.fleet.n_buses = 40;
    cfg.fleet.faulty_fraction = 0.35;
    let scenario = Scenario::generate(cfg).expect("scenario");

    let faulty: Vec<i64> =
        scenario.fleet.buses.iter().filter(|b| b.faulty).map(|b| b.id as i64).collect();
    let mut out = String::new();
    writeln!(
        out,
        "scenario: {} buses ({} faulty), {} sensors, {} SDEs, {} incidents",
        scenario.fleet.buses.len(),
        faulty.len(),
        scenario.scats.len(),
        scenario.sdes.len(),
        scenario.field.incidents().len(),
    )
    .unwrap();

    writeln!(out, "\n--- static recognition (rule-set 3: every source trusted) ---").unwrap();
    let (bus_cong_s, disagree_s, _) = congestion_mode(&scenario, TrafficRulesConfig::static_mode());
    writeln!(out, "bus congestion intervals:     {bus_cong_s}").unwrap();
    writeln!(out, "source disagreement intervals: {disagree_s}").unwrap();

    writeln!(out, "\n--- self-adaptive recognition (rule-sets 3' + 5) ---").unwrap();
    let (bus_cong_a, disagree_a, noisy) =
        congestion_mode(&scenario, TrafficRulesConfig::self_adaptive(NoisyVariant::Pessimistic));
    writeln!(out, "bus congestion intervals:     {bus_cong_a}").unwrap();
    writeln!(out, "source disagreement intervals: {disagree_a}").unwrap();
    writeln!(out, "buses marked noisy:            {}", noisy.len()).unwrap();

    let true_positive = noisy.iter().filter(|b| faulty.contains(b)).count();
    writeln!(
        out,
        "  of which actually faulty:    {true_positive} ({} faulty in total)",
        faulty.len()
    )
    .unwrap();
    writeln!(
        out,
        "\nsuppressed bus-congestion intervals: {}",
        bus_cong_s.saturating_sub(bus_cong_a)
    )
    .unwrap();

    assert_golden("congestion_monitoring.txt", &out);
}

/// Zeroes every wall-clock measurement in a metrics snapshot, keeping the
/// deterministic parts (flow counts, fault counters, histogram sample
/// counts).
fn scrub_wall_clock(mut snap: MetricsSnapshot) -> MetricsSnapshot {
    fn keep_count_only(h: &mut HistogramSnapshot) {
        *h = HistogramSnapshot {
            count: h.count,
            sum_ns: 0,
            min_ns: 0,
            max_ns: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        };
    }
    for stage in snap.stages.values_mut() {
        keep_count_only(&mut stage.process_ns);
    }
    for queue in snap.queues.values_mut() {
        // Depth high water and stalls depend on the thread schedule, stall
        // time on the host; none describe the data. The batch-size
        // distribution is the same kind of measurement: how many items a
        // consumer finds per wake is a race between producer and consumer,
        // not a property of the stream (total items flow through `sent` /
        // `received`, which stay).
        queue.depth = 0;
        queue.depth_high_water = 0;
        queue.send_stalls = 0;
        queue.stall_ns = 0;
        queue.batch_sizes = HistogramSnapshot {
            count: 0,
            sum_ns: 0,
            min_ns: 0,
            max_ns: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        };
    }
    for (name, hist) in snap.histograms.iter_mut() {
        if name.ends_with("_ns") {
            keep_count_only(hist);
        }
    }
    snap
}

/// The metrics_report example's JSON snapshot with wall-clock and schedule-
/// dependent fields scrubbed to zero.
#[test]
fn golden_metrics_report_json() {
    let mut cfg = ScenarioConfig::small(2700, 42);
    cfg.fleet.faulty_fraction = 0.25;
    cfg.fleet.n_buses = 32;
    let scenario = Scenario::generate(cfg).expect("scenario");
    let (start, end) = scenario.window();

    let mut out = String::new();
    writeln!(
        out,
        "scenario: {} SDEs over {} s, {} buses, {} SCATS sensors",
        scenario.sdes.len(),
        end - start,
        scenario.fleet.buses.len(),
        scenario.scats.len()
    )
    .unwrap();

    let window = WindowConfig::new(600, 300).expect("window");
    let rules = TrafficRulesConfig::self_adaptive(NoisyVariant::CrowdValidated);
    let (topology, sink) = build_pipeline(&scenario, rules, window).expect("topology");
    let runtime = Runtime::new(topology);
    let metrics = runtime.metrics();
    let stats = runtime.run().expect("run");

    writeln!(
        out,
        "pipeline done: {} recognition summaries, {} items consumed, {} emitted",
        sink.len(),
        stats.total_consumed(),
        stats.total_emitted()
    )
    .unwrap();

    writeln!(out, "\n=== JSON snapshot (wall-clock scrubbed) ===").unwrap();
    writeln!(out, "{}", scrub_wall_clock(metrics.snapshot()).to_json()).unwrap();

    assert_golden("metrics_report.txt", &out);
}
