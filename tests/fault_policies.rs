//! Supervision-layer integration tests: fault policies, panic isolation,
//! and dead-letter capture over real topologies.

use insight_repro::streams::chaos::PanicEvery;
use insight_repro::streams::error::StreamsError;
use insight_repro::streams::fault::FaultPolicy;
use insight_repro::streams::item::DataItem;
use insight_repro::streams::processor::{Context, Processor};
use insight_repro::streams::runtime::Runtime;
use insight_repro::streams::sink::CollectSink;
use insight_repro::streams::source::VecSource;
use insight_repro::streams::topology::{Input, Output, Topology};
use proptest::prelude::*;
use std::collections::HashSet;
use std::time::Duration;

fn numbered(n: i64) -> Vec<DataItem> {
    (0..n).map(|i| DataItem::new().with("n", i)).collect()
}

fn values(sink: &CollectSink) -> Vec<i64> {
    sink.items().iter().map(|i| i.get_i64("n").unwrap()).collect()
}

/// Errors on items whose `n` is in the faulted set.
struct FailOn {
    faulted: HashSet<i64>,
}

impl Processor for FailOn {
    fn process(
        &mut self,
        item: DataItem,
        _ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        match item.get_i64("n") {
            Some(n) if self.faulted.contains(&n) => {
                Err(StreamsError::ServiceError { detail: format!("injected fault on item {n}") })
            }
            _ => Ok(Some(item)),
        }
    }
}

/// Fails the first `failures` invocations, then succeeds forever.
struct FlakyUntil {
    failures: usize,
    calls: usize,
}

impl Processor for FlakyUntil {
    fn process(
        &mut self,
        item: DataItem,
        _ctx: &mut Context,
    ) -> Result<Option<DataItem>, StreamsError> {
        self.calls += 1;
        if self.calls <= self.failures {
            Err(StreamsError::ServiceError { detail: format!("flaky call {}", self.calls) })
        } else {
            Ok(Some(item))
        }
    }
}

proptest! {
    /// Under `Skip`, the output stream equals the input stream minus the
    /// faulted items, in the original order.
    #[test]
    fn skip_output_is_input_minus_faults_in_order(
        n in 1i64..120,
        fault_every in 2i64..10,
        offset in 0i64..10,
    ) {
        let faulted: HashSet<i64> =
            (0..n).filter(|i| (i + offset) % fault_every == 0).collect();
        let sink = CollectSink::shared();
        let mut topology = Topology::new();
        topology.add_source("in", VecSource::new(numbered(n)));
        topology
            .process("flaky")
            .input(Input::Stream("in".into()))
            .fault_policy(FaultPolicy::Skip { max_consecutive: usize::MAX })
            .processor(FailOn { faulted: faulted.clone() })
            .output(Output::Sink(Box::new(sink.clone())))
            .done();
        Runtime::new(topology).run().unwrap();

        let expected: Vec<i64> = (0..n).filter(|i| !faulted.contains(i)).collect();
        prop_assert_eq!(values(&sink), expected);
    }
}

#[test]
fn skip_escalates_after_max_consecutive_faults() {
    // Items 10..=13 fault: a run of 4 > max_consecutive = 3 must escalate.
    let sink = CollectSink::shared();
    let mut topology = Topology::new();
    topology.add_source("in", VecSource::new(numbered(20)));
    topology
        .process("flaky")
        .input(Input::Stream("in".into()))
        .fault_policy(FaultPolicy::Skip { max_consecutive: 3 })
        .processor(FailOn { faulted: (10..=13).collect() })
        .output(Output::Sink(Box::new(sink.clone())))
        .done();
    let err = Runtime::new(topology).run().unwrap_err();
    assert!(matches!(err, StreamsError::ProcessorFailed { .. }), "escalated: {err}");
}

#[test]
fn retry_succeeds_on_the_nth_attempt() {
    // Two failures, then success: Retry with 2 extra attempts recovers the
    // item; Retry with only 1 would fail the run.
    let run = |attempts: usize| {
        let sink = CollectSink::shared();
        let mut topology = Topology::new();
        topology.add_source("in", VecSource::new(numbered(5)));
        topology
            .process("flaky")
            .input(Input::Stream("in".into()))
            .fault_policy(FaultPolicy::Retry { attempts, backoff: Duration::from_millis(1) })
            .processor(FlakyUntil { failures: 2, calls: 0 })
            .output(Output::Sink(Box::new(sink.clone())))
            .done();
        let runtime = Runtime::new(topology);
        let metrics = runtime.metrics();
        (runtime.run(), sink, metrics)
    };

    let (result, sink, metrics) = run(2);
    result.expect("two retries cover two failures");
    assert_eq!(values(&sink), vec![0, 1, 2, 3, 4], "every item recovered, order kept");
    let stage = metrics.snapshot().stages.get("flaky").cloned().unwrap();
    assert_eq!(stage.retries, 2, "one re-invocation per failure");
    assert_eq!(stage.faults, 2);

    let (result, _, _) = run(1);
    assert!(result.is_err(), "one retry cannot cover two failures");
}

#[test]
fn dead_letter_preserves_item_payloads_and_stage_identity() {
    let faulted: HashSet<i64> = [2, 5, 11].into_iter().collect();
    let sink = CollectSink::shared();
    let mut topology = Topology::new();
    topology.add_source("in", VecSource::new(numbered(15)));
    topology
        .process("flaky")
        .input(Input::Stream("in".into()))
        .dead_letter()
        .processor(FailOn { faulted: faulted.clone() })
        .output(Output::Sink(Box::new(sink.clone())))
        .done();
    let dead_letters = topology.dead_letters();
    Runtime::new(topology).run().unwrap();

    assert_eq!(values(&sink), vec![0, 1, 3, 4, 6, 7, 8, 9, 10, 12, 13, 14]);
    let records = dead_letters.drain();
    assert_eq!(records.len(), 3);
    let mut dead: Vec<i64> = Vec::new();
    for r in &records {
        assert_eq!(r.process, "flaky");
        assert_eq!(r.processor, Some(0), "the failing processor is identified");
        let item = r.item.as_ref().expect("offending item preserved");
        dead.push(item.get_i64("n").unwrap());
        assert!(r.error.to_string().contains("injected fault"), "{}", r.error);
    }
    dead.sort_unstable();
    assert_eq!(dead, vec![2, 5, 11], "payloads survive for post-mortem");
}

/// Regression: a panicking processor must not wedge downstream queues —
/// end-of-stream still propagates through the full topology and the run
/// completes with correct ordering under both `Skip` and `DeadLetter`.
#[test]
fn panicking_processor_does_not_wedge_downstream() {
    for policy in [
        FaultPolicy::Skip { max_consecutive: usize::MAX },
        FaultPolicy::DeadLetter { queue: Default::default() },
    ] {
        let sink = CollectSink::shared();
        let mut topology = Topology::new();
        topology.add_source("in", VecSource::new(numbered(100)));
        topology.add_queue("mid", 8);
        topology
            .process("panicky")
            .input(Input::Stream("in".into()))
            .fault_policy(policy.clone())
            .processor(PanicEvery::new(20))
            .output(Output::Queue("mid".into()))
            .done();
        // A second process downstream of the panicking one: if EOS were
        // lost or the queue poisoned, this process would hang the join.
        topology
            .process("downstream")
            .input(Input::Queue("mid".into()))
            .output(Output::Sink(Box::new(sink.clone())))
            .done();
        let runtime = Runtime::new(topology);
        let metrics = runtime.metrics();
        runtime.run().unwrap_or_else(|e| panic!("run must survive panics under {policy:?}: {e}"));

        // Items 19, 39, 59, 79, 99 hit the scheduled panic (1-based 20th).
        let expected: Vec<i64> = (0..100).filter(|n| (n + 1) % 20 != 0).collect();
        assert_eq!(values(&sink), expected, "ordering survives under {policy:?}");
        let stage = metrics.snapshot().stages.get("panicky").cloned().unwrap();
        assert_eq!(stage.faults, 5);
        assert_eq!(stage.panics, 5, "all five faults were isolated panics");
    }
}

#[test]
fn panic_under_fail_fast_reports_processor_panicked() {
    let sink = CollectSink::shared();
    let mut topology = Topology::new();
    topology.add_source("in", VecSource::new(numbered(30)));
    topology
        .process("panicky")
        .input(Input::Stream("in".into()))
        .processor(PanicEvery::new(10))
        .output(Output::Sink(Box::new(sink.clone())))
        .done();
    let err = Runtime::new(topology).run().unwrap_err();
    match err {
        StreamsError::ProcessorPanicked { process, payload } => {
            assert_eq!(process, "panicky");
            assert!(payload.contains("scheduled panic"), "{payload}");
        }
        other => panic!("expected ProcessorPanicked, got {other}"),
    }
}
