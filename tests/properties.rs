//! Cross-crate property-based tests.

use insight_repro::crowd::model::{LabelSet, SimulatedParticipant};
use insight_repro::crowd::online_em::OnlineEm;
use insight_repro::datagen::mediator::{mediate, MediatorConfig};
use insight_repro::datagen::stream::{BusRecord, Sde, SdeBody};
use insight_repro::gp::graph::Graph;
use insight_repro::gp::kernel::{Kernel, RegularizedLaplacian};
use insight_repro::rtec::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bus_sde(t: i64) -> Sde {
    Sde::punctual(
        t,
        SdeBody::Bus(BusRecord {
            bus: 1,
            line: 1,
            operator: 0,
            delay_s: 0,
            lon: -6.26,
            lat: 53.35,
            direction: 0,
            congestion: false,
        }),
    )
}

proptest! {
    /// The mediator never invents records, never delivers before
    /// occurrence, and respects its delay bound.
    #[test]
    fn mediator_respects_causality(
        n in 1usize..200,
        max_delay in 0i64..300,
        drop in 0.0f64..0.9,
        seed in 0u64..u64::MAX,
    ) {
        let records: Vec<Sde> = (0..n as i64).map(|i| bus_sde(i * 7)).collect();
        let cfg = MediatorConfig { max_delay_s: max_delay, drop_probability: drop, thinning: 1 };
        let out = mediate(records, &cfg, seed).unwrap();
        prop_assert!(out.len() <= n);
        for s in &out {
            prop_assert!(s.arrival >= s.time);
            prop_assert!(s.arrival <= s.time + max_delay);
        }
        // sorted by arrival
        prop_assert!(out.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    /// Online EM posteriors are valid distributions for arbitrary valid
    /// priors and answer sets.
    #[test]
    fn online_em_posteriors_are_distributions(
        weights in proptest::collection::vec(0.01f64..10.0, 4),
        answers in proptest::collection::vec((0usize..10, 0usize..4), 0..10),
        seed in 0u64..1000,
    ) {
        let _ = seed;
        let mut em = OnlineEm::paper_default(10);
        let sum: f64 = weights.iter().sum();
        let prior: Vec<f64> = weights.iter().map(|w| w / sum).collect();
        let outcome = em.process(&prior, &answers).unwrap();
        prop_assert!((outcome.posterior.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(outcome.posterior.iter().all(|&p| (0.0..=1.0).contains(&p)));
        prop_assert!(outcome.map_label < 4);
        for &p in em.estimates() {
            prop_assert!(p > 0.0 && p < 1.0);
        }
    }

    /// Simulated participants obey their configured error rate direction:
    /// a perfect participant always answers the truth.
    #[test]
    fn perfect_participants_never_lie(truth in 0usize..4, seed in 0u64..u64::MAX) {
        let labels = LabelSet::traffic_default();
        let p = SimulatedParticipant::new(0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert_eq!(p.answer(truth, &labels, &mut rng).unwrap(), truth);
    }

    /// The regularized Laplacian kernel is SPD (Cholesky succeeds) on
    /// arbitrary connected grid graphs and hyperparameters.
    #[test]
    fn regularized_laplacian_always_spd(
        w in 2usize..7,
        h in 2usize..7,
        alpha in 0.1f64..10.0,
        beta in 0.1f64..10.0,
    ) {
        let g = Graph::grid(w, h);
        let k = RegularizedLaplacian::new(alpha, beta).unwrap().covariance(&g).unwrap();
        prop_assert!(k.is_symmetric(1e-8));
        prop_assert!(k.cholesky().is_ok());
    }

    /// NearestK returns exactly the k closest workers (checked against a
    /// brute-force sort).
    #[test]
    fn nearest_k_policy_is_exact(
        coords in proptest::collection::vec((-6.4f64..-6.1, 53.28f64..53.42), 1..25),
        k in 1usize..10,
        q in 0usize..25,
    ) {
        use insight_repro::crowd::engine::{Worker, WorkerId};
        use insight_repro::crowd::latency::{ConnectionType, LatencyModel};
        use insight_repro::crowd::policy::SelectionPolicy;
        use insight_repro::datagen::network::distance_m;

        let workers: Vec<Worker> = coords
            .iter()
            .enumerate()
            .map(|(i, &(lon, lat))| Worker {
                id: WorkerId(i as u64),
                lon,
                lat,
                connection: ConnectionType::WiFi,
                avg_comp_ms: 0.0,
            })
            .collect();
        let refs: Vec<&Worker> = workers.iter().collect();
        let (qlon, qlat) = coords[q % coords.len()];
        let selected = SelectionPolicy::NearestK(k).select(
            &refs, qlon, qlat, None, &LatencyModel::default(),
        );
        prop_assert_eq!(selected.len(), k.min(workers.len()));
        // Every selected worker is at least as close as every unselected one.
        let dist = |id: u64| {
            let w = &workers[id as usize];
            distance_m((w.lon, w.lat), (qlon, qlat))
        };
        let max_sel = selected.iter().map(|w| dist(w.0)).fold(0.0, f64::max);
        for w in &workers {
            if !selected.contains(&w.id) {
                prop_assert!(dist(w.id.0) >= max_sel - 1e-9);
            }
        }
    }

    /// The Streams runtime conserves items: with no filtering, everything a
    /// source produces reaches the sink, across arbitrary fan-in.
    #[test]
    fn streams_runtime_conserves_items(
        sizes in proptest::collection::vec(0usize..200, 1..5),
        capacity in 1usize..64,
    ) {
        use insight_repro::streams::item::DataItem;
        use insight_repro::streams::runtime::Runtime;
        use insight_repro::streams::sink::CountSink;
        use insight_repro::streams::source::VecSource;
        use insight_repro::streams::topology::{Input, Output, Topology};

        let mut t = Topology::new();
        t.add_queue("merge", capacity);
        let total: usize = sizes.iter().sum();
        for (i, &n) in sizes.iter().enumerate() {
            let name = format!("src{i}");
            t.add_source(&name, VecSource::new((0..n).map(|j| DataItem::new().with("n", j as i64))));
            t.process(&format!("fwd{i}"))
                .input(Input::Stream(name))
                .output(Output::Queue("merge".into()))
                .done();
        }
        let sink = CountSink::shared();
        t.process("count").input(Input::Queue("merge".into())).output(Output::Sink(Box::new(sink.clone()))).done();
        Runtime::new(t).run().unwrap();
        prop_assert_eq!(sink.count() as usize, total);
    }

    /// RTEC inertia: for any interleaving of on/off events, the fluent holds
    /// at a time iff the most recent preceding event was an `on`.
    #[test]
    fn rtec_inertia_matches_last_writer(
        mut times in proptest::collection::vec((1i64..999, proptest::bool::ANY), 1..30),
        probe in 1i64..999,
    ) {
        times.sort();
        times.dedup_by_key(|(t, _)| *t);

        let mut b = RuleSetBuilder::new();
        b.declare_event("on", 0);
        b.declare_event("off", 0);
        let t1 = b.var("T1");
        b.initiated(fluent("f", [], val(true)), t1, [happens(event_pat("on", []), t1)]);
        let t2 = b.var("T2");
        b.terminated(fluent("f", [], val(true)), t2, [happens(event_pat("off", []), t2)]);
        let rs = b.build().unwrap();
        let mut engine = Engine::new(rs, WindowConfig::new(1000, 1000).unwrap());
        for &(t, on) in &times {
            engine.add_event(Event::new(if on { "on" } else { "off" }, Vec::<Term>::new(), t)).unwrap();
        }
        let rec = engine.query(1000).unwrap();
        let expected = times
            .iter().rfind(|&&(t, _)| t <= probe)  // times sorted: the latest event at or before probe
            .map(|&(_, on)| on)
            .unwrap_or(false);
        prop_assert_eq!(rec.holds_at("f", &[], &Term::truth(), probe), expected);
    }
}
