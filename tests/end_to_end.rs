//! Cross-crate integration: the full Figure 1 loop on small scenarios.

use insight_repro::core::{InsightSystem, OperatorAlert, SystemConfig};
use insight_repro::datagen::scenario::{Scenario, ScenarioConfig};
use insight_repro::rtec::window::WindowConfig;
use insight_repro::traffic::{DistributedRecognizer, NoisyVariant, TrafficRulesConfig};

#[test]
fn full_system_produces_alerts_and_model_coverage() {
    let mut system = InsightSystem::new(SystemConfig::small(1800, 55)).unwrap();
    let report = system.run().unwrap();

    assert!(!report.windows.is_empty());
    let total_sdes: usize = report.windows.iter().map(|w| w.sde_count).sum();
    assert!(total_sdes > 100, "windows saw {total_sdes} SDEs");
    let (observed, estimated) = report.model_coverage;
    assert!(observed > 0);
    assert_eq!(observed + estimated, system.model().graph().len());
    // Recognition is real-time at this scale: far below the step size.
    for w in &report.windows {
        assert!(w.recognition_time.as_secs_f64() < 5.0);
    }
}

#[test]
fn crowd_loop_resolves_disagreements_accurately() {
    let mut cfg = SystemConfig::small(2700, 77);
    cfg.scenario.fleet.faulty_fraction = 0.4;
    cfg.scenario.fleet.n_buses = 40;
    let mut system = InsightSystem::new(cfg).unwrap();
    let report = system.run().unwrap();

    let disagreement_alerts =
        report.alerts_where(|a| matches!(a, OperatorAlert::SourceDisagreement { .. }));
    assert!(
        !disagreement_alerts.is_empty(),
        "a heavily faulty fleet must trigger source disagreements"
    );
    // Every disagreement alert carries a crowd verdict (the paper: CEs are
    // labelled with the details obtained from the participants).
    for a in &disagreement_alerts {
        if let OperatorAlert::SourceDisagreement { crowd_verdict, confidence, .. } = a {
            assert!(crowd_verdict.is_some());
            assert!(confidence.unwrap() > 0.0);
        }
    }
    let accuracy = report.crowd_accuracy.expect("disagreements were crowdsourced");
    assert!(accuracy >= 0.6, "crowd accuracy {accuracy}");
}

#[test]
fn crowd_feedback_silences_faulty_buses_under_rule_set_4() {
    // With the crowd-validated variant, faulty buses are only discarded
    // after crowd verdicts arrive — which requires the closed feedback loop
    // to actually work end to end.
    let mut cfg = SystemConfig::small(2700, 91);
    cfg.scenario.fleet.faulty_fraction = 0.5;
    cfg.scenario.fleet.n_buses = 30;
    let mut system = InsightSystem::new(cfg).unwrap();
    let report = system.run().unwrap();

    let noisy_alerts = report.alerts_where(|a| matches!(a, OperatorAlert::NoisyBus { .. }));
    if report.crowd_accuracy.is_some() {
        assert!(
            !noisy_alerts.is_empty(),
            "crowd verdicts against buses should eventually mark them noisy"
        );
    }
}

#[test]
fn static_and_adaptive_recognition_agree_on_scats_congestion() {
    // The self-adaptive rule-sets only change *bus*-sourced CEs; SCATS
    // congestion must be identical in both modes.
    let scenario = Scenario::generate(ScenarioConfig::small(1800, 13)).unwrap();
    let window = WindowConfig::new(1800, 1800).unwrap();

    let count = |rules: TrafficRulesConfig| {
        let mut rec =
            DistributedRecognizer::from_deployment(rules, window, &scenario.scats).unwrap();
        for s in &scenario.sdes {
            rec.ingest(s).unwrap();
        }
        let (_, end) = scenario.window();
        let result = rec.query(end).unwrap();
        result
            .per_region
            .iter()
            .map(|(_, r)| {
                r.congested_intersections().iter().map(|(_, ivs)| ivs.len()).sum::<usize>()
            })
            .sum::<usize>()
    };

    let static_count = count(TrafficRulesConfig::static_mode());
    let adaptive_count = count(TrafficRulesConfig::self_adaptive(NoisyVariant::Pessimistic));
    assert_eq!(static_count, adaptive_count);
}

#[test]
fn proactive_controller_reacts_to_recognised_congestion() {
    // The quickstart scenario covers the rush peak with an instrumented
    // core, so the controller must issue at least a signal-priority action.
    let mut system = InsightSystem::new(SystemConfig::small(2700, 42)).unwrap();
    let report = system.run().unwrap();
    let congestion_alerts =
        report.alerts_where(|a| matches!(a, OperatorAlert::IntersectionCongestion { .. })).len();
    assert!(congestion_alerts > 0, "rush hour congests the instrumented core");
    assert!(
        report.control_actions.iter().any(|(_, a)| matches!(
            a,
            insight_repro::core::proactive::ControlAction::SignalPriority { .. }
        )),
        "congestion must trigger signal-priority recommendations"
    );
    // Cooldown: no target gets two actions within the cooldown window.
    for (i, (t1, a1)) in report.control_actions.iter().enumerate() {
        for (t2, a2) in &report.control_actions[i + 1..] {
            if a1 == a2 {
                assert!((t2 - t1).abs() >= 900, "cooldown violated: {a1:?} at {t1} and {t2}");
            }
        }
    }
}

#[test]
fn deterministic_end_to_end() {
    let run = |seed: u64| {
        let mut system = InsightSystem::new(SystemConfig::small(1200, seed)).unwrap();
        let report = system.run().unwrap();
        (
            report.alerts.len(),
            report.windows.iter().map(|w| w.sde_count).sum::<usize>(),
            report.crowd_accuracy,
        )
    };
    assert_eq!(run(3), run(3));
    // And different seeds genuinely vary the run.
    let a = run(3);
    let b = run(4);
    assert!(a.1 != b.1 || a.0 != b.0);
}
