//! Integration: the Streams middleware carrying scenario SDEs, including an
//! XML-configured topology — the §3 stream processing component end to end.

use insight_repro::core::items::{item_to_sde, sde_to_item};
use insight_repro::core::pipeline::build_pipeline;
use insight_repro::datagen::scenario::{Scenario, ScenarioConfig};
use insight_repro::rtec::window::WindowConfig;
use insight_repro::streams::item::DataItem;
use insight_repro::streams::processor::default_factories;
use insight_repro::streams::runtime::Runtime;
use insight_repro::streams::sink::{CollectSink, Sink};
use insight_repro::streams::source::VecSource;
use insight_repro::streams::topology::Topology;
use insight_repro::streams::xml::compile_into;
use insight_repro::traffic::TrafficRulesConfig;
use std::collections::HashMap;

#[test]
fn full_streams_pipeline_over_scenario() {
    let scenario = Scenario::generate(ScenarioConfig::small(1500, 31)).unwrap();
    let window = WindowConfig::new(600, 300).unwrap();
    let (topology, sink) =
        build_pipeline(&scenario, TrafficRulesConfig::default(), window).unwrap();
    let stats = Runtime::new(topology).run().unwrap();

    // The bus feed forwarded every bus SDE into the shared `sde` queue.
    let bus_records = scenario.sdes.iter().filter(|s| s.is_bus()).count();
    assert_eq!(stats.per_process["bus-feed"].0 as usize, bus_records);
    assert!(!sink.items().is_empty());
}

#[test]
fn xml_topology_routes_scenario_items() {
    // An XML-declared topology splitting bus from SCATS records.
    let scenario = Scenario::generate(ScenarioConfig::small(900, 32)).unwrap();
    let items: Vec<DataItem> = scenario.sdes.iter().map(sde_to_item).collect();
    let n_bus = scenario.sdes.iter().filter(|s| s.is_bus()).count();

    let doc = r#"
        <container>
            <queue id="buses" capacity="2048"/>
            <process id="filter-bus" input="stream:sde" output="queue:buses">
                <processor class="FilterEquals" key="kind" value="bus"/>
            </process>
            <process id="collect" input="queue:buses" output="sink:out"/>
        </container>
    "#;
    let mut topology = Topology::new();
    topology.add_source("sde", VecSource::new(items));
    let out = CollectSink::shared();
    let mut sinks: HashMap<String, Box<dyn Sink>> = HashMap::new();
    sinks.insert("out".into(), Box::new(out.clone()));
    compile_into(&mut topology, doc, &default_factories(), &mut sinks).unwrap();
    Runtime::new(topology).run().unwrap();

    assert_eq!(out.len(), n_bus);
    // Items survive the trip intact.
    for item in out.items().iter().take(20) {
        let sde = item_to_sde(item).expect("items parse back into SDEs");
        assert!(sde.is_bus());
    }
}
